#!/usr/bin/env python
"""TLR LU on a BEM-like operator — the framework's non-symmetric path.

The HiCMA group's acoustic-scattering solver (the paper's ref. [11])
runs a tile low-rank LU factorization over the same machinery this
repository reproduces for Cholesky.  This example builds a
non-symmetric, diagonally-dominant kernel operator on a scatterer
surface (sphere), compresses it, factorizes A = L U with the trimmed
task graph, and solves a scattering-like right-hand side.

Run:  python examples/acoustic_lu.py
"""

import numpy as np

from repro import fibonacci_sphere
from repro.core.tlr_lu import solve_lu, tlr_lu
from repro.linalg import GeneralTLRMatrix
from repro.utils.hilbert import hilbert_order


def main() -> None:
    # Scatterer surface: a sphere sampled quasi-uniformly, Hilbert-ordered.
    n = 1200
    pts = fibonacci_sphere(n, radius=1.0)
    pts = pts[hilbert_order(pts)]

    # A BEM-flavoured non-symmetric kernel: oscillatory decaying
    # off-diagonal interactions plus a dominant diagonal (collocation
    # self-terms).
    d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
    a = np.exp(-((d / 0.25) ** 2)) * np.cos(4.0 * d)
    a += 0.05 * np.exp(-((d / 0.2) ** 2)) * np.tri(n, k=-1)  # non-symmetric
    a += 6.0 * np.eye(n)
    print(f"operator: {n} x {n}, non-symmetric "
          f"(||A - A^T|| = {np.linalg.norm(a - a.T):.3f})")

    # Compress the full tile grid and factorize A = L U.
    t = GeneralTLRMatrix.from_dense(a, tile_size=150, accuracy=1e-8)
    print(f"compressed: NT={t.n_tiles}, density={t.density():.3f}, "
          f"{t.memory_bytes()/1e6:.2f} MB vs {a.nbytes/1e6:.2f} MB dense")

    result = tlr_lu(t, trim=True)
    counts = result.graph.task_counts()
    print(f"tasks: {len(result.graph)} {counts}")
    print(f"factorization residual ||A - LU||/||A||: "
          f"{result.residual(a):.2e}")

    # Scattering-like right-hand side: an incident plane wave sampled
    # on the surface.
    k_wave = np.array([4.0, 0.0, 0.0])
    b = np.cos(pts @ k_wave)
    x = solve_lu(result.factor, b)
    rel = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    print(f"solve residual ||Ax - b||/||b||       : {rel:.2e}")


if __name__ == "__main__":
    main()
