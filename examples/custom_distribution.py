#!/usr/bin/env python
"""Extending the framework: plug in a custom data distribution.

Implements a snake (boustrophedon) column-cyclic distribution as a
user extension, validates it against the library's invariants, and
compares its load balance and simulated makespan against 2DBCDD and
the paper's rank-aware diamond distribution on a rank-decaying
workload — showing why the diamond wins.

Run:  python examples/custom_distribution.py
"""

import numpy as np

from repro import (
    DiamondDistribution,
    SHAHEEN_II,
    SyntheticRankField,
    TwoDBlockCyclic,
    analyze_ranks,
    DistributedSimulator,
)
from repro.core.rank_model import analyze_mask_fast
from repro.core.trimming import cholesky_tasks
from repro.distribution.base import Distribution, load_per_process
from repro.runtime import build_graph


class SnakeColumnCyclic(Distribution):
    """Columns assigned cyclically, reversing direction every sweep —
    a simple user-defined distribution."""

    def __init__(self, nproc: int) -> None:
        self.nproc = nproc

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        sweep, pos = divmod(k, self.nproc)
        return pos if sweep % 2 == 0 else self.nproc - 1 - pos


def main() -> None:
    nproc, p, q = 16, 4, 4
    field = SyntheticRankField.from_parameters(300_000, 3000, 3.7e-4, 1e-4)
    nt, b = field.nt, field.tile_size
    print(f"workload: NT={nt}, tile {b}, density {field.initial_density():.3f}\n")

    mask = field.initial_mask()
    ranks = field.rank_matrix(mask)
    fm = analyze_mask_fast(mask)["final_mask"]
    for d in range(1, nt):
        idx = np.arange(nt - d)
        sel = fm[idx + d, idx] & (ranks[idx + d, idx] == 0)
        ranks[idx[sel] + d, idx[sel]] = max(2, int(field.rank_by_distance[d]))
    rank_of = lambda m, k: int(ranks[m, k]) if m != k else b
    ana = analyze_ranks(ranks, nt)
    graph = build_graph(cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of))
    print(f"trimmed task graph: {len(graph)} tasks\n")

    # flop-weighted load balance per distribution, over the OFF-BAND
    # tiles the diamond distribution is responsible for (diagonal and
    # subdiagonal balance is the band distribution's job, Sec. VII-A)
    weight = lambda m, k: float(ranks[m, k]) ** 2 if m - k > 1 else 0.0
    dists = {
        "2DBCDD": TwoDBlockCyclic(p, q),
        "snake (custom)": SnakeColumnCyclic(nproc),
        "diamond": DiamondDistribution(p, q),
    }
    print(f"{'distribution':18s} {'imbalance':>10s} {'makespan [s]':>13s}")
    for name, dist in dists.items():
        load = load_per_process(dist, nt, weight)
        imb = load.max() / load.mean()
        sim = DistributedSimulator(SHAHEEN_II, nproc)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(p, q), dist)
        print(f"{name:18s} {imb:10.3f} {res.makespan:13.4f}")

    print("\nThe diamond distribution balances the rank-decaying load "
          "while keeping column broadcasts narrow (Sec. VII-B).")


if __name__ == "__main__":
    main()
