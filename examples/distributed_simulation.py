#!/usr/bin/env python
"""Simulate the paper's at-scale comparison: HiCMA-PaRSEC vs Lorapo.

Uses the calibrated machine models of Shaheen II and Fugaku and the
synthetic rank field of the 3D virus workload to estimate time-to-
solution at paper scale (millions of unknowns, hundreds of nodes) —
the experiment behind Figs. 9 and 10 — and prints the incremental
effect of each optimization (trimming, band, diamond).

Run:  python examples/distributed_simulation.py
"""

from repro import (
    FUGAKU,
    HICMA_PARSEC,
    LORAPO,
    SHAHEEN_II,
    AnalyticModel,
    SyntheticRankField,
)
from repro.core.hicma_parsec import BAND_ONLY, TRIM_ONLY


def main() -> None:
    n = 2_990_000  # 2.99M mesh points (the paper's Fig. 4b size)
    b = 2440
    nodes = 512
    field = SyntheticRankField.from_parameters(
        n, b, shape_parameter=3.7e-4, accuracy=1e-4
    )
    print(f"workload: N={n/1e6:.2f}M, tile {b}, NT={field.nt}, "
          f"density {field.initial_density():.4f}\n")

    for machine in (SHAHEEN_II, FUGAKU):
        print(f"=== {machine.name}, {nodes} nodes ===")
        results = {}
        for cfg in (LORAPO, TRIM_ONLY, BAND_ONLY, HICMA_PARSEC):
            model = AnalyticModel(machine, nodes, cfg)
            r = model.factorization_time(field)
            results[cfg.name] = r
            print(
                f"  {cfg.name:34s} {r.makespan:9.2f} s  "
                f"(cp {r.t_critical_path:7.2f}, work {r.t_work:7.2f}, "
                f"comm {r.t_comm:6.2f}, tasks {r.n_tasks:,})"
            )
        lo = results[LORAPO.name].makespan
        hi = results[HICMA_PARSEC.name].makespan
        eff = results[HICMA_PARSEC.name].cp_efficiency
        print(f"  -> speedup vs Lorapo: {lo/hi:.2f}x ; "
              f"critical-path efficiency {eff:.1%}\n")

    functional_demo()


def functional_demo() -> None:
    """Beyond simulation: actually execute a small factorization
    across OS processes with per-worker tile ownership and real data
    movement, and verify it matches the in-process factor."""
    import numpy as np

    from repro import (
        BandDistribution,
        DiamondDistribution,
        RBFMatrixGenerator,
        TLRMatrix,
        TwoDBlockCyclic,
        analyze_ranks,
        hicma_parsec_factorize,
        min_spacing,
        virus_population,
    )
    from repro.core.trimming import cholesky_tasks
    from repro.runtime import DistributedExecutor, build_graph

    pts = virus_population(3, points_per_virus=300, seed=2)
    gen = RBFMatrixGenerator(
        pts, 0.5 * min_spacing(pts) * 30, tile_size=150, nugget=1e-4
    )
    a = TLRMatrix.compress(gen.tile, gen.n, 150, accuracy=1e-6)
    ana = analyze_ranks(a.rank_array(), a.n_tiles)
    graph = build_graph(cholesky_tasks(a.n_tiles, ana))
    ref = hicma_parsec_factorize(a.copy()).factor

    res = DistributedExecutor(4).run(
        a.copy(),
        graph,
        TwoDBlockCyclic(2, 2),
        BandDistribution(DiamondDistribution(2, 2)),
    )
    drift = np.abs(
        res.factor.to_dense(symmetrize=False)
        - ref.to_dense(symmetrize=False)
    ).max()
    print("=== functional distributed execution (4 OS processes) ===")
    print(f"  tasks: {res.n_tasks} over workers {res.tasks_per_worker}")
    print(f"  tile transfers: {res.n_transfers} "
          f"({res.transfer_bytes/1e6:.2f} MB moved)")
    print(f"  max |distributed - in-process| factor drift: {drift:.1e}")


if __name__ == "__main__":
    main()
