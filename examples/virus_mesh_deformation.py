#!/usr/bin/env python
"""3D unstructured mesh deformation of a moving virus (Sec. IV-C).

The paper's driving application: the boundary nodes of a SARS-CoV-2-
like virion move (here: a rigid rotation plus a radial breathing
mode), and the displacement field is interpolated to the surrounding
volume mesh by Gaussian RBF interpolation — whose dense SPD system is
solved through the TLR Cholesky pipeline.

Run:  python examples/virus_mesh_deformation.py
"""

import numpy as np

from repro import RBFMeshDeformation, random_cloud, synthetic_virus
from repro.apps import quality_report, radial_expansion, rigid_rotation


def main() -> None:
    # Boundary: one virion surface; volume: points in a shell around it.
    boundary = synthetic_virus(n_points=1500, diameter=0.1, seed=0)
    rng = np.random.default_rng(2)
    shell = random_cloud(2000, extent=0.3, seed=3) - 0.15
    # keep volume nodes outside the capsid
    shell = shell[np.linalg.norm(shell, axis=1) > 0.07][:800]
    print(f"boundary nodes : {len(boundary)}")
    print(f"volume nodes   : {len(shell)}")

    # Prescribed boundary motion: rotate 5 degrees and inflate 2%.
    d_b = rigid_rotation(boundary, angle=np.deg2rad(5.0)) + radial_expansion(
        boundary, factor=0.02
    )
    print(f"max boundary displacement: {np.abs(d_b).max():.4e}")

    # The TLR mesh-deformation solver (trimming on).  The shape
    # parameter sets the influence radius of the boundary motion; the
    # paper's half-min-spacing rule targets interpolation conditioning
    # at extreme N — for a visible far-field here we widen it so the
    # displacement reaches ~a body radius into the volume.
    solver = RBFMeshDeformation(
        boundary, shape_parameter=0.01, accuracy=1e-6, tile_size=200
    )
    print(f"shape parameter (1/2 min spacing): {solver.shape_parameter:.3e}")
    result = solver.deform(shell, d_b)

    print(f"operator density after compression: "
          f"{solver.timings['initial_density']:.3f}")
    print(f"boundary interpolation error      : {result.boundary_error:.2e}")
    vol = result.volume_displacements
    print(f"max volume displacement           : {np.abs(vol).max():.4e}")

    # Mesh-quality proxy: displacements decay smoothly with distance
    # from the boundary (no folding of far cells).
    dist = np.array(
        [np.min(np.linalg.norm(boundary - p, axis=1)) for p in shell]
    )
    near = np.abs(vol[dist < 0.02]).max()
    far = np.abs(vol[dist > 0.12]).max() if np.any(dist > 0.12) else 0.0
    print(f"near-field max displacement       : {near:.4e}")
    print(f"far-field  max displacement       : {far:.4e}")
    assert near > far, "displacement field must decay away from the body"

    # Mesh quality: the deformation must not fold any volume cell.
    rep = quality_report(shell, vol)
    print(f"mesh cells / inverted             : {rep.n_cells} / {rep.n_inverted}")
    print(f"cell volume ratio (min..max)      : "
          f"{rep.min_volume_ratio:.3f} .. {rep.max_volume_ratio:.3f}")
    assert rep.valid, "RBF deformation folded the mesh"

    print("\nPhase timings:")
    for key in ("generation+compression", "factorization", "solve",
                "interpolation"):
        print(f"  {key:26s}: {result.timings[key]:.3f} s")


if __name__ == "__main__":
    main()
