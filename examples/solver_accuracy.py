#!/usr/bin/env python
"""Solver accuracy: compression thresholds and iterative refinement.

Shows the practical accuracy story of TLR solvers:

* against the **compressed operator**, the factorization's truncation
  error is recoverable — iterative refinement drives the residual to
  machine-level regardless of the threshold;
* against the **original dense operator**, accuracy is floored by the
  compression threshold itself — no amount of refinement on the
  compressed system can beat the information the compression kept
  (the paper's point that the threshold is chosen to match the
  application's accuracy requirement).

Also demonstrates compressed-matrix persistence (compress once, reuse
across runs).

Run:  python examples/solver_accuracy.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    RBFMatrixGenerator,
    TLRMatrix,
    min_spacing,
    tlr_cholesky,
    virus_population,
)
from repro.linalg import refine_solve, tlr_matvec
from repro.linalg.serialization import load_tlr, save_tlr


def main() -> None:
    pts = virus_population(6, points_per_virus=700, cube_edge=1.7, seed=5)
    s = min_spacing(pts)
    gen = RBFMatrixGenerator(pts, 0.5 * s * 60, tile_size=150, nugget=1e-3)
    dense = gen.dense()
    rng = np.random.default_rng(0)
    b = rng.standard_normal(gen.n)
    norm_b = np.linalg.norm(b)

    print(f"N={gen.n}, NT={-(-gen.n // 150)}, nugget 1e-3 "
          "(must dominate the loosest threshold)\n")
    print(f"{'accuracy':>9s} {'density':>8s} {'vs compressed':>14s} "
          f"{'refined':>9s} {'vs dense A':>11s}")

    for acc in (1e-4, 1e-6, 1e-8):
        a = TLRMatrix.compress(gen.tile, gen.n, 150, accuracy=acc)
        a_op = a.copy()                      # keep the operator
        factor = tlr_cholesky(a).factor      # factorize in place
        direct = refine_solve(a_op, factor, b, max_sweeps=0, rtol=0.0)
        refined = refine_solve(a_op, factor, b, max_sweeps=6, rtol=1e-12)
        vs_dense = np.linalg.norm(dense @ refined.x - b) / norm_b
        print(
            f"{acc:9.0e} {a_op.density():8.3f} {direct.residuals[-1]:14.2e} "
            f"{refined.residuals[-1]:9.2e} {vs_dense:11.2e}"
        )

    print("\n(refinement kills factorization error; the dense-operator "
          "residual stays at the compression floor)")

    # persistence: compress once, reuse
    a = TLRMatrix.compress(gen.tile, gen.n, 150, accuracy=1e-6)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "operator.npz"
        save_tlr(a, path)
        size = path.stat().st_size / 1e6
        again = load_tlr(path)
        x = rng.standard_normal(gen.n)
        drift = np.linalg.norm(tlr_matvec(again, x) - tlr_matvec(a, x))
        print(f"\nsaved compressed operator: {size:.2f} MB "
              f"(dense lower triangle: {a.dense_bytes()/1e6:.1f} MB)")
        print(f"reload matvec drift      : {drift:.2e}")


if __name__ == "__main__":
    main()
