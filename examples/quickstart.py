#!/usr/bin/env python
"""Quickstart: compress, factorize and solve a data-sparse RBF system.

Builds a small synthetic virus population (the paper's workload shape),
assembles its Gaussian RBF operator tile by tile, compresses it to TLR
form, runs the trimmed TLR Cholesky factorization, and solves a linear
system — verifying the residual against the dense operator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    RBFMatrixGenerator,
    TLRMatrix,
    hicma_parsec_factorize,
    min_spacing,
    solve_cholesky,
    virus_population,
)


def main() -> None:
    # 1. Geometry: 4 virions in the paper's 1.7 um cube, Hilbert-ordered.
    points = virus_population(4, points_per_virus=500, cube_edge=1.7, seed=0)
    spacing = min_spacing(points)
    print(f"boundary points : {len(points)}")
    print(f"min spacing     : {spacing:.3e}")

    # 2. The Gaussian RBF operator (Sec. IV-C), generated per tile.
    #    Shape parameter: the paper's rule (half min spacing) scaled up
    #    to make ranks interesting at this tiny size; small nugget for
    #    numerical positive-definiteness under truncation.
    generator = RBFMatrixGenerator(
        points,
        shape_parameter=0.5 * spacing * 30,
        tile_size=250,
        nugget=1e-4,
    )

    # 3. Compress to tile low-rank form at accuracy 1e-6.
    a = TLRMatrix.compress(generator.tile, generator.n, 250, accuracy=1e-6)
    stats = a.off_diagonal_rank_stats()
    print(f"tile grid       : {a.n_tiles} x {a.n_tiles}, tile size 250")
    print(f"density         : {a.density():.3f}  (sparsity {1-a.density():.3f})")
    print(f"ranks (max/avg) : {stats['max']:.0f} / {stats['avg']:.1f}")
    print(
        f"memory          : {a.memory_bytes()/1e6:.2f} MB compressed vs "
        f"{a.dense_bytes()/1e6:.2f} MB dense"
    )

    # 4. Factorize with the full HiCMA-PaRSEC pipeline (DAG trimming on).
    result = hicma_parsec_factorize(a)
    counts = result.graph.task_counts()
    print(f"tasks executed  : {len(result.graph)} {counts}")
    print(f"factorization   : {result.elapsed:.3f} s")

    # 5. Solve A x = b and check against the dense operator.
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(generator.n)
    dense = generator.dense()
    b = dense @ x_true
    x = solve_cholesky(result.factor, b)
    rel_err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    residual = np.linalg.norm(dense @ x - b) / np.linalg.norm(b)
    print(f"solve residual  : {residual:.2e}")
    print(f"solution error  : {rel_err:.2e}")


if __name__ == "__main__":
    main()
