#!/usr/bin/env python
"""Geospatial statistics over the TLR pipeline (the HiCMA heritage).

The paper's framework descends from HiCMA's climate/weather work
(refs. [8]-[10]): maximum-likelihood estimation of a Matern
covariance over 3D observation sites, where every likelihood
evaluation needs a Cholesky factorization of the covariance.  This
example synthesizes observations at a known length scale and shows
the TLR-accelerated likelihood surface peaking near the truth — plus
the tile-size auto-tuner (the paper's "beyond scope" item) picking
the tile size for an at-scale version of the same problem.

Run:  python examples/spatial_statistics.py
"""

import numpy as np

from repro import SHAHEEN_II, HICMA_PARSEC
from repro.apps import GaussianLogLikelihood
from repro.kernels import MaternKernel
from repro.machine import tune_tile_size


def main() -> None:
    rng = np.random.default_rng(7)
    sites = rng.random((600, 3))
    ell_true = 0.2
    nugget = 1e-2

    # synthesize z ~ N(0, Sigma(ell_true))
    d = np.linalg.norm(sites[:, None] - sites[None, :], axis=2)
    sigma = MaternKernel(nu=0.5).scaled(d, ell_true) + nugget * np.eye(len(sites))
    z = np.linalg.cholesky(sigma) @ rng.standard_normal(len(sites))

    gl = GaussianLogLikelihood(
        sites, nu=0.5, accuracy=1e-8, tile_size=150, nugget=nugget
    )
    print(f"{len(sites)} sites, true length scale {ell_true}\n")
    print(f"{'length scale':>12s} {'log-likelihood':>15s} {'logdet':>10s} "
          f"{'seconds':>8s}")
    best = None
    for ell in (0.05, 0.1, 0.2, 0.4, 0.8):
        res = gl.evaluate(z, ell)
        tag = ""
        if best is None or res.log_likelihood > best[1]:
            best = (ell, res.log_likelihood)
        print(f"{ell:12.2f} {res.log_likelihood:15.2f} {res.logdet:10.2f} "
              f"{res.seconds:8.3f}")
    print(f"\nmaximum-likelihood scale among candidates: {best[0]} "
          f"(truth {ell_true})")

    # The paper's 'beyond scope' item: model-driven tile-size tuning
    # for the at-scale version of this workload.
    tuned = tune_tile_size(
        SHAHEEN_II, 64, HICMA_PARSEC,
        n=2_990_000, shape_parameter=3.7e-4, accuracy=1e-4,
    )
    print("\ntile-size auto-tuning at N=2.99M on 64 Shaheen II nodes:")
    for b, t in tuned.evaluations:
        marker = "  <-- best" if b == tuned.best_tile_size else ""
        print(f"  b={b:6d}: {t:9.2f} s{marker}")


if __name__ == "__main__":
    main()
