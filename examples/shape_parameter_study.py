#!/usr/bin/env python
"""Shape-parameter study with real numerics (laptop-scale Fig. 4).

Sweeps the Gaussian shape parameter over two decades on a real virus
population, compressing and factorizing each operator, and reports the
density / rank / time behaviour the paper analyzes in Figs. 1 and 4 —
including the rank rise-and-fall and the trim/no-trim convergence.

Run:  python examples/shape_parameter_study.py
"""

import time

import numpy as np

from repro import (
    RBFMatrixGenerator,
    TLRMatrix,
    min_spacing,
    tlr_cholesky,
    virus_population,
)


def main() -> None:
    points = virus_population(5, points_per_virus=600, cube_edge=1.7, seed=4)
    spacing = min_spacing(points)
    b = 200
    accuracy = 1e-4
    print(f"N={len(points)}, tile {b}, accuracy {accuracy:.0e}, "
          f"min spacing {spacing:.2e}\n")
    header = (f"{'delta':>10s} {'init dens':>9s} {'final dens':>10s} "
              f"{'max rank':>8s} {'avg rank':>8s} {'T trim':>8s} "
              f"{'T full':>8s}")
    print(header)
    print("-" * len(header))

    for mult in (2.0, 5.0, 15.0, 40.0, 90.0):
        delta = 0.5 * spacing * mult
        gen = RBFMatrixGenerator(points, delta, tile_size=b, nugget=1e-2)

        def factorize(trim: bool):
            a = TLRMatrix.compress(gen.tile, gen.n, b, accuracy=accuracy)
            t0 = time.perf_counter()
            res = tlr_cholesky(a, trim=trim)
            return a, res, time.perf_counter() - t0

        a_trim, res_trim, t_trim = factorize(True)
        _, _, t_full = factorize(False)
        stats = res_trim.factor.off_diagonal_rank_stats()
        init_density = res_trim.analysis.initial_density()
        print(
            f"{delta:10.3e} {init_density:9.3f} "
            f"{res_trim.factor.density():10.3f} {stats['max']:8.0f} "
            f"{stats['avg']:8.1f} {t_trim:8.3f} {t_full:8.3f}"
        )

    print("\nObservations (matching the paper):")
    print(" - density grows with the shape parameter;")
    print(" - ranks rise then fall as correlations smooth out;")
    print(" - trim/full times converge once few tiles are null.")


if __name__ == "__main__":
    main()
