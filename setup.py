"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package is unavailable (PEP 517 editable builds need
bdist_wheel).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
