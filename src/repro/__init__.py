"""repro — reproduction of "A Framework to Exploit Data Sparsity in
Tile Low-Rank Cholesky Factorization" (Cao et al., IPDPS 2022).

The package couples a HiCMA-like tile low-rank algebra
(:mod:`repro.linalg`) with a PaRSEC-like task runtime
(:mod:`repro.runtime`) and adds the paper's two contributions: dynamic
DAG trimming (:mod:`repro.core.analysis`, Section VI) and the
rank-aware band/diamond execution mapping (:mod:`repro.distribution`,
Section VII).  Distributed performance at paper scale is reproduced by
the machine models and simulators in :mod:`repro.machine`; the driving
application is 3D unstructured mesh deformation over Gaussian RBF
interpolation (:mod:`repro.apps`).

Quick start
-----------
>>> import numpy as np
>>> from repro import virus_population, RBFMatrixGenerator, TLRMatrix
>>> from repro import hicma_parsec_factorize, solve_cholesky
>>> pts = virus_population(2, points_per_virus=300, seed=0)
>>> gen = RBFMatrixGenerator(pts, shape_parameter=0.02, tile_size=150,
...                          nugget=1e-2)
>>> a = TLRMatrix.compress(gen.tile, gen.n, 150, accuracy=1e-6)
>>> result = hicma_parsec_factorize(a)
>>> x = solve_cholesky(result.factor, np.ones(gen.n))
"""

from repro.config import DEFAULT_ACCURACY, DEFAULT_TILE_SIZE
from repro.geometry import (
    fibonacci_sphere,
    min_spacing,
    random_cloud,
    synthetic_virus,
    virus_population,
)
from repro.kernels import GaussianRBF, RBFMatrixGenerator, dense_rbf_matrix
from repro.linalg import (
    DenseTile,
    GeneralTLRMatrix,
    LowRankFactor,
    LowRankTile,
    NullTile,
    TLRMatrix,
    compress_block,
    refine_solve,
    tlr_matvec,
    truncated_svd,
)
from repro.core import (
    FactorizationResult,
    SyntheticRankField,
    TrimmingAnalysis,
    analyze_ranks,
    calibrate_rank_field,
    hicma_parsec_factorize,
    logdet,
    lorapo_factorize,
    solve_cholesky,
    solve_lu,
    tlr_cholesky,
    tlr_lu,
)
from repro.core.hicma_parsec import BAND_ONLY, HICMA_PARSEC, TRIM_ONLY
from repro.core.lorapo import LORAPO, FrameworkConfig
from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    HybridDistribution,
    OneDBlockCyclic,
    TwoDBlockCyclic,
    square_grid,
)
from repro.machine import (
    FUGAKU,
    SHAHEEN_II,
    AnalyticModel,
    CostModel,
    DistributedSimulator,
    MachineModel,
)
from repro.apps import RBFMeshDeformation
from repro.service import OperatorCache, OperatorSpec, ServiceMetrics, SolveService

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DEFAULT_ACCURACY",
    "DEFAULT_TILE_SIZE",
    "fibonacci_sphere",
    "random_cloud",
    "synthetic_virus",
    "virus_population",
    "min_spacing",
    "GaussianRBF",
    "RBFMatrixGenerator",
    "dense_rbf_matrix",
    "LowRankFactor",
    "truncated_svd",
    "compress_block",
    "DenseTile",
    "LowRankTile",
    "NullTile",
    "TLRMatrix",
    "GeneralTLRMatrix",
    "tlr_matvec",
    "refine_solve",
    "TrimmingAnalysis",
    "analyze_ranks",
    "tlr_cholesky",
    "FactorizationResult",
    "solve_cholesky",
    "logdet",
    "tlr_lu",
    "solve_lu",
    "lorapo_factorize",
    "hicma_parsec_factorize",
    "SyntheticRankField",
    "calibrate_rank_field",
    "FrameworkConfig",
    "LORAPO",
    "TRIM_ONLY",
    "BAND_ONLY",
    "HICMA_PARSEC",
    "TwoDBlockCyclic",
    "OneDBlockCyclic",
    "HybridDistribution",
    "BandDistribution",
    "DiamondDistribution",
    "square_grid",
    "MachineModel",
    "SHAHEEN_II",
    "FUGAKU",
    "CostModel",
    "DistributedSimulator",
    "AnalyticModel",
    "RBFMeshDeformation",
    "OperatorSpec",
    "OperatorCache",
    "SolveService",
    "ServiceMetrics",
]
