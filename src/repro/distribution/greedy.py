"""Greedy rank-aware distribution — an extension beyond the paper.

The diamond distribution (Sec. VII-B) is *statically* rank-aware: it
exploits the average decay of rank with diagonal distance.  When an
actual rank field is available (after compression), one can do
better: assign each tile's execution to the least-loaded process,
sweeping tiles in decreasing-work order, while keeping each panel
column on its 2DBCDD process column so the column-broadcast group
stays bounded — the property the paper insists on.

This is offered as an ablation (`benchmarks/test_ablation_greedy.py`)
quantifying how much headroom is left beyond the static diamond.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.utils.validation import check_positive

__all__ = ["GreedyRankAware"]


class GreedyRankAware(Distribution):
    """Work-balancing assignment built from a per-tile work estimate.

    Parameters
    ----------
    p, q:
        Process grid; tiles in panel column ``k`` may only be assigned
        to processes in grid column ``k mod q`` (preserving the
        column-group bound of at most ``p`` processes).
    weights:
        ``(NT, NT)`` per-tile work estimates (lower triangle read);
        e.g. squared ranks or model flop counts.
    """

    def __init__(self, p: int, q: int, weights: np.ndarray) -> None:
        check_positive("p", p)
        check_positive("q", q)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise ValueError(f"weights must be square, got {weights.shape}")
        self.p = int(p)
        self.q = int(q)
        self.nproc = self.p * self.q
        nt = weights.shape[0]
        self.nt = nt

        load = np.zeros(self.nproc)
        owner = np.full((nt, nt), -1, dtype=np.int64)
        # heaviest tiles first
        order = [
            (m, k)
            for k in range(nt)
            for m in range(k, nt)
        ]
        order.sort(key=lambda mk: -weights[mk[0], mk[1]])
        for m, k in order:
            col = k % self.q
            candidates = [r * self.q + col for r in range(self.p)]
            best = min(candidates, key=lambda pr: load[pr])
            owner[m, k] = best
            load[best] += max(float(weights[m, k]), 0.0)
        self._owner = owner
        self.load = load

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        if m >= self.nt:
            raise IndexError(f"tile ({m}, {k}) outside the {self.nt}-tile grid")
        return int(self._owner[m, k])

    def owner_vec(self, m, k):
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        return self._owner[m, k]

    def __repr__(self) -> str:
        return f"GreedyRankAware(p={self.p}, q={self.q}, nt={self.nt})"
