"""Lorapo's hybrid 1D + 2D block-cyclic distribution (Fig. 3b).

Diagonal tiles — which stay dense and carry most of the flops after
compression — are spread 1D-cyclically over *all* processes, while
off-diagonal tiles use the standard 2DBCDD.  This balances the
dense-diagonal workload without giving up the 2D communication
pattern off the diagonal (Cao et al., PASC'20).
"""

from __future__ import annotations

from repro.distribution.base import Distribution
from repro.distribution.block_cyclic import OneDBlockCyclic, TwoDBlockCyclic

__all__ = ["HybridDistribution"]


class HybridDistribution(Distribution):
    """1DBCDD on the diagonal band, 2DBCDD elsewhere.

    Parameters
    ----------
    p, q:
        Off-diagonal process grid (``nproc = p * q``).
    band_width:
        Tiles with ``m - k < band_width`` use the 1D distribution
        (Lorapo: 1, i.e. the diagonal only).
    """

    def __init__(self, p: int, q: int, band_width: int = 1) -> None:
        if band_width < 1:
            raise ValueError(f"band_width must be >= 1, got {band_width}")
        self._two_d = TwoDBlockCyclic(p, q)
        self._one_d = OneDBlockCyclic(p * q)
        self.p = self._two_d.p
        self.q = self._two_d.q
        self.nproc = self._two_d.nproc
        self.band_width = int(band_width)

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        if m - k < self.band_width:
            return self._one_d.owner(m, k)
        return self._two_d.owner(m, k)

    def owner_vec(self, m, k):
        import numpy as np

        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        two_d = self._two_d.owner_vec(m, k)
        return np.where((m - k) < self.band_width, k % self.nproc, two_d)

    def __repr__(self) -> str:
        return (
            f"HybridDistribution(p={self.p}, q={self.q}, "
            f"band_width={self.band_width})"
        )
