"""Rank-aware diamond-shaped data distribution (Fig. 3d, Sec. VII-B).

For 3D covariance-like operators (and drastically so for RBF), tile
rank — hence computational weight — decays with distance to the
diagonal.  Under 2DBCDD a process row owns a horizontal stripe of the
lower triangle, so stripes near the top of the matrix carry far less
work than stripes near the bottom, and within a stripe the heavy
near-diagonal tiles cluster on a few processes.

The diamond distribution skews the 2DBCDD along the diagonal: the
process *row* index cycles with the distance to the diagonal
``d = m - k``, rotated once per panel sweep so that every distance
band visits every process row:

    owner(m, k) = ((m - k + k // Q) mod P) * Q + (k mod Q)

Every process row therefore samples every rank regime — without the
rotation, the heavy first off-band distance (``d mod P`` fixed) would
pin to a single process row; with it, the band's weight spreads over
all rows as the panel index advances.  The process *column* group of a
panel stays at most ``P`` processes — as optimal as 2DBCDD for the two
column broadcasts (POTRF→TRSMs, TRSM→GEMMs).  Row process groups may
grow (up to ``P*Q``), but the row broadcast moves only a tiny low-rank
tile (Fig. 1), so the trade is favourable — precisely the argument of
Section VII-B.

The constant-owner lines run parallel to the diagonal and shift every
``Q`` columns, which draws the eponymous diamonds on the owner map.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.utils.validation import check_positive

__all__ = ["DiamondDistribution"]


class DiamondDistribution(Distribution):
    """Diagonal-skewed block-cyclic distribution on a ``P x Q`` grid."""

    def __init__(self, p: int, q: int) -> None:
        check_positive("p", p)
        check_positive("q", q)
        self.p = int(p)
        self.q = int(q)
        self.nproc = self.p * self.q

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        return ((m - k + k // self.q) % self.p) * self.q + (k % self.q)

    def owner_vec(self, m, k):
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        return ((m - k + k // self.q) % self.p) * self.q + (k % self.q)

    def balance_ratio(
        self, n_tiles: int, weights: np.ndarray | None = None
    ) -> float:
        """max/mean per-process load; 1.0 is perfect balance.

        ``weights`` is an optional ``(NT, NT)`` per-tile work estimate
        (e.g. from the rank model); defaults to unit tile counts.
        """
        load = np.zeros(self.nproc)
        for k in range(n_tiles):
            for m in range(k, n_tiles):
                w = 1.0 if weights is None else float(weights[m, k])
                load[self.owner(m, k)] += w
        mean = load.mean()
        return float(load.max() / mean) if mean > 0 else 1.0

    def __repr__(self) -> str:
        return f"DiamondDistribution(p={self.p}, q={self.q})"
