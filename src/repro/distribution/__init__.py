"""Tile-to-process data distributions (paper Fig. 3).

* :class:`TwoDBlockCyclic` — ScaLAPACK 2DBCDD (Fig. 3a)
* :class:`OneDBlockCyclic` — 1D cyclic over all processes
* :class:`HybridDistribution` — Lorapo's 1D+2D hybrid (Fig. 3b)
* :class:`BandDistribution` — diagonal + subdiagonal pinned to the
  POTRF owner to localize the critical-path TRSM (Fig. 3c)
* :class:`DiamondDistribution` — rank-aware diamond-shaped skew of
  2DBCDD for off-band load balance (Fig. 3d)
"""

from repro.distribution.base import Distribution, load_per_process, square_grid
from repro.distribution.block_cyclic import OneDBlockCyclic, TwoDBlockCyclic
from repro.distribution.hybrid import HybridDistribution
from repro.distribution.band import BandDistribution
from repro.distribution.diamond import DiamondDistribution
from repro.distribution.greedy import GreedyRankAware
from repro.distribution.ascii_art import owner_map_ascii

__all__ = [
    "Distribution",
    "square_grid",
    "load_per_process",
    "TwoDBlockCyclic",
    "OneDBlockCyclic",
    "HybridDistribution",
    "BandDistribution",
    "DiamondDistribution",
    "GreedyRankAware",
    "owner_map_ascii",
]
