"""Block-cyclic distributions (ScaLAPACK heritage)."""

from __future__ import annotations

from repro.distribution.base import Distribution
from repro.utils.validation import check_positive

__all__ = ["TwoDBlockCyclic", "OneDBlockCyclic"]


class TwoDBlockCyclic(Distribution):
    """Two-dimensional block-cyclic distribution (Fig. 3a).

    Tile ``(m, k)`` is owned by process ``(m mod P) * Q + (k mod Q)``
    on a ``P x Q`` grid.  Column process groups have exactly ``P``
    members; row groups exactly ``Q``.
    """

    def __init__(self, p: int, q: int) -> None:
        check_positive("p", p)
        check_positive("q", q)
        self.p = int(p)
        self.q = int(q)
        self.nproc = self.p * self.q

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        return (m % self.p) * self.q + (k % self.q)

    def owner_vec(self, m, k):
        import numpy as np

        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        return (m % self.p) * self.q + (k % self.q)

    def __repr__(self) -> str:
        return f"TwoDBlockCyclic(p={self.p}, q={self.q})"


class OneDBlockCyclic(Distribution):
    """One-dimensional cyclic distribution over all processes.

    Used for the diagonal band in the hybrid and band distributions:
    tile ``(m, k)`` is owned by ``k mod nproc`` (column-cyclic), so
    consecutive panels rotate over all processes.
    """

    def __init__(self, nproc: int) -> None:
        check_positive("nproc", nproc)
        self.nproc = int(nproc)

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        return k % self.nproc

    def owner_vec(self, m, k):
        import numpy as np

        k = np.asarray(k, dtype=np.int64)
        return k % self.nproc

    def __repr__(self) -> str:
        return f"OneDBlockCyclic(nproc={self.nproc})"
