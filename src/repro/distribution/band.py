"""Band distribution: localize the critical-path TRSM (Fig. 3c).

Section VII-A: the critical path of TLR Cholesky repeats POTRF(k) →
TRSM(k+1, k) → SYRK(k+1, k).  Binding the subdiagonal tile to the
*same process* as the diagonal tile turns the expensive POTRF→TRSM
dependency (a dense-tile transfer between remote nodes) into a local
memory access.  The diagonal and subdiagonal therefore share one
process pattern (1D cyclic by panel); all other tiles fall back to the
wrapped off-band distribution.
"""

from __future__ import annotations

from repro.distribution.base import Distribution
from repro.distribution.block_cyclic import OneDBlockCyclic, TwoDBlockCyclic

__all__ = ["BandDistribution"]


class BandDistribution(Distribution):
    """Diagonal + subdiagonal pinned per-panel; off-band delegated.

    Parameters
    ----------
    off_band:
        Distribution used for tiles with ``m - k > 1`` (typically
        :class:`TwoDBlockCyclic` or :class:`DiamondDistribution`).
    """

    def __init__(self, off_band: Distribution) -> None:
        self.off_band = off_band
        self.nproc = off_band.nproc
        self._one_d = OneDBlockCyclic(self.nproc)

    def owner(self, m: int, k: int) -> int:
        if k > m or k < 0:
            raise IndexError(f"tile ({m}, {k}) outside lower triangle")
        if m - k <= 1:
            # Same affinity for POTRF(k), TRSM(k+1,k) and SYRK -> the
            # critical-path chain of panel k runs on one process.
            return self._one_d.owner(k, k)
        return self.off_band.owner(m, k)

    def owner_vec(self, m, k):
        import numpy as np

        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        out = self.off_band.owner_vec(m, k)
        in_band = (m - k) <= 1
        if np.any(in_band):
            out = np.where(in_band, k % self.nproc, out)
        return out

    @classmethod
    def over_2d(cls, p: int, q: int) -> "BandDistribution":
        """Band over a plain 2DBCDD off-band grid."""
        return cls(TwoDBlockCyclic(p, q))

    def __repr__(self) -> str:
        return f"BandDistribution(off_band={self.off_band!r})"
