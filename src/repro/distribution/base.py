"""Distribution interface and load-analysis helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

__all__ = ["Distribution", "square_grid", "load_per_process"]


class Distribution(ABC):
    """Maps lower-triangle tile coordinates to an owning process.

    Only the lower triangle ``m >= k`` is addressed (symmetric
    storage).  Implementations must be pure functions of ``(m, k)`` so
    every process can evaluate ownership without communication —
    the property PaRSEC relies on to derive communication implicitly.
    """

    #: total number of processes
    nproc: int

    @abstractmethod
    def owner(self, m: int, k: int) -> int:
        """Owning process of tile ``(m, k)``, in ``[0, nproc)``."""

    def owner_vec(self, m: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` (subclasses override with modular
        arithmetic; this fallback loops)."""
        m = np.asarray(m)
        k = np.asarray(k)
        return np.fromiter(
            (self.owner(int(mm), int(kk)) for mm, kk in zip(m, k)),
            dtype=np.int64,
            count=len(m),
        )

    def owner_matrix(self, n_tiles: int) -> np.ndarray:
        """``(NT, NT)`` owner map of the lower triangle (-1 above it)."""
        out = np.full((n_tiles, n_tiles), -1, dtype=np.int64)
        for k in range(n_tiles):
            for m in range(k, n_tiles):
                out[m, k] = self.owner(m, k)
        return out

    def column_group(self, k: int, n_tiles: int) -> set[int]:
        """Processes owning tiles of panel column ``k`` (rows ``>= k``).

        This is the set spanned by the two column broadcasts (POTRF →
        TRSMs and TRSM → GEMMs in a column, Section VII-B).
        """
        return {self.owner(m, k) for m in range(k, n_tiles)}

    def row_group(self, m: int, n_tiles: int) -> set[int]:
        """Processes owning tiles of row ``m`` (columns ``<= m``)."""
        return {self.owner(m, k) for k in range(m + 1)}


def square_grid(nproc: int) -> tuple[int, int]:
    """Process grid ``P x Q = nproc`` "as square as possible", P <= Q.

    The paper's rule for the off-band execution grid (Sec. VIII-A).
    """
    if nproc <= 0:
        raise ValueError(f"nproc must be positive, got {nproc}")
    p = int(np.sqrt(nproc))
    while nproc % p != 0:
        p -= 1
    return p, nproc // p


def load_per_process(
    dist: Distribution,
    n_tiles: int,
    weight: Callable[[int, int], float] | None = None,
) -> np.ndarray:
    """Total (weighted) tile load per process over the lower triangle.

    ``weight(m, k)`` defaults to 1 (tile count); pass a flop or rank
    estimate to measure the computational balance the diamond
    distribution targets.
    """
    load = np.zeros(dist.nproc, dtype=np.float64)
    for k in range(n_tiles):
        for m in range(k, n_tiles):
            w = 1.0 if weight is None else float(weight(m, k))
            load[dist.owner(m, k)] += w
    return load
