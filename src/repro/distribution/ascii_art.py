"""ASCII rendering of tile-owner maps (reproduces the paper's Fig. 3).

Each lower-triangle tile is printed as its owning process id; upper
triangle is blank.  Useful to eyeball the band/diamond shapes and in
the Fig. 3 regeneration benchmark.
"""

from __future__ import annotations

from repro.distribution.base import Distribution

__all__ = ["owner_map_ascii"]


def owner_map_ascii(dist: Distribution, nt: int, cell_width: int = 2) -> str:
    """Render the owner map of the lower triangle as text."""
    if nt < 1:
        raise ValueError(f"nt must be >= 1, got {nt}")
    lines = []
    for m in range(nt):
        cells = []
        for k in range(nt):
            if k > m:
                cells.append(" " * cell_width)
            else:
                cells.append(str(dist.owner(m, k)).rjust(cell_width))
        lines.append(" ".join(cells).rstrip())
    return "\n".join(lines)
