"""Mesh-quality metrics for deformed volume meshes.

The RBF approach is valued because it "produces high-quality
unstructured adaptive meshes" (Sec. IV-C): a good displacement field
deforms volume cells smoothly without inverting or collapsing them.
This module quantifies that: the volume mesh is tetrahedralized
(Delaunay), and cell volumes are compared before and after applying a
displacement field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay

__all__ = ["tetrahedralize", "cell_volumes", "quality_report", "QualityReport"]


def tetrahedralize(points: np.ndarray) -> np.ndarray:
    """Delaunay tetrahedra of a 3D point cloud: ``(m, 4)`` indices."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    if len(points) < 4:
        raise ValueError("need at least 4 points to tetrahedralize")
    return Delaunay(points).simplices


def cell_volumes(points: np.ndarray, simplices: np.ndarray) -> np.ndarray:
    """Signed volumes of tetrahedral cells (vectorized determinant)."""
    points = np.asarray(points, dtype=np.float64)
    simplices = np.asarray(simplices)
    if simplices.ndim != 2 or simplices.shape[1] != 4:
        raise ValueError(f"simplices must have shape (m, 4), got {simplices.shape}")
    a = points[simplices[:, 0]]
    edges = points[simplices[:, 1:]] - a[:, None, :]  # (m, 3, 3)
    return np.linalg.det(edges) / 6.0


@dataclass(frozen=True)
class QualityReport:
    """Before/after deformation quality summary."""

    n_cells: int
    #: cells whose orientation flipped (volume changed sign) — a
    #: folded mesh; must be 0 for a usable deformation
    n_inverted: int
    #: min and max of |V_after| / |V_before|
    min_volume_ratio: float
    max_volume_ratio: float

    @property
    def valid(self) -> bool:
        return self.n_inverted == 0 and self.min_volume_ratio > 0.0


def quality_report(
    points: np.ndarray,
    displacements: np.ndarray,
    simplices: np.ndarray | None = None,
) -> QualityReport:
    """Quality of the mesh after applying ``displacements``.

    The tessellation is built on the *undeformed* points (or supplied
    explicitly) and re-evaluated on the deformed coordinates —
    detecting inversion and extreme compression/expansion of cells.
    """
    points = np.asarray(points, dtype=np.float64)
    d = np.asarray(displacements, dtype=np.float64)
    if d.shape != points.shape:
        raise ValueError(
            f"displacements shape {d.shape} != points shape {points.shape}"
        )
    if simplices is None:
        simplices = tetrahedralize(points)
    v0 = cell_volumes(points, simplices)
    v1 = cell_volumes(points + d, simplices)
    # ignore degenerate (near-zero) cells of the reference tessellation
    keep = np.abs(v0) > 1e-12 * np.abs(v0).max()
    v0, v1 = v0[keep], v1[keep]
    inverted = int(np.count_nonzero(np.sign(v1) != np.sign(v0)))
    ratio = np.abs(v1) / np.abs(v0)
    return QualityReport(
        n_cells=int(len(v0)),
        n_inverted=inverted,
        min_volume_ratio=float(ratio.min()),
        max_volume_ratio=float(ratio.max()),
    )
