"""3D unstructured mesh deformation via Gaussian RBF interpolation.

The end-to-end application of Section IV-C: given displacements of the
boundary nodes of moving 3D bodies, interpolate a smooth displacement
field to the interior volume nodes by

    d(x) = sum_i alpha_i * phi(||x - x_bi|| / delta)

where the coefficients ``alpha`` solve the (formally dense, SPD) RBF
system ``A alpha = d_b``.  The solve is the expensive phase and runs
through the full TLR pipeline: Hilbert reordering → tile-wise
generation → compression → (trimmed) TLR Cholesky → triangular solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_ACCURACY, DTYPE, default_shape_parameter
from repro.core.solver import solve_cholesky
from repro.core.tlr_cholesky import FactorizationResult, tlr_cholesky
from repro.geometry.pointclouds import min_spacing
from repro.kernels.matgen import RBFMatrixGenerator
from repro.kernels.rbf import GaussianRBF, RadialBasisFunction
from repro.linalg.tile_matrix import TLRMatrix
from repro.utils.hilbert import hilbert_order

__all__ = ["RBFMeshDeformation", "MeshDeformationResult"]


@dataclass
class MeshDeformationResult:
    """Outcome of one mesh-deformation solve."""

    #: displacements at the queried volume nodes, shape (nv, 3)
    volume_displacements: np.ndarray
    #: RBF coefficients (in solver ordering), shape (nb, 3)
    coefficients: np.ndarray
    #: interpolation residual at the boundary: max |d(x_b) - d_b|
    boundary_error: float
    #: seconds spent per phase
    timings: dict[str, float]


class RBFMeshDeformation:
    """Mesh-deformation solver over the HiCMA-PaRSEC TLR pipeline.

    Parameters
    ----------
    boundary_points:
        ``(nb, 3)`` coordinates of the boundary (surface) nodes.
    shape_parameter:
        Gaussian shape parameter ``delta``; defaults to the paper's
        rule of half the minimum point spacing (Sec. IV-C).
    accuracy:
        TLR compression threshold (paper default 1e-4).
    tile_size:
        Tile edge ``b``; defaults to ``O(sqrt(nb))`` per the paper's
        tuning strategy (Sec. VIII-C).
    nugget:
        Diagonal regularization; defaults to ``100 * accuracy``, which
        keeps the operator numerically SPD under truncation while
        perturbing displacements well below typical mesh tolerances.
    trim:
        Enable DAG trimming (Section VI).
    reorder:
        Apply Hilbert reordering internally (disable only if the
        points are already space-filling-curve ordered).
    """

    def __init__(
        self,
        boundary_points: np.ndarray,
        shape_parameter: float | None = None,
        accuracy: float = DEFAULT_ACCURACY,
        tile_size: int | None = None,
        kernel: RadialBasisFunction | None = None,
        nugget: float | None = None,
        trim: bool = True,
        reorder: bool = True,
    ) -> None:
        pts = np.asarray(boundary_points, dtype=DTYPE)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(
                f"boundary_points must have shape (n, 3), got {pts.shape}"
            )
        if len(pts) < 4:
            raise ValueError("need at least 4 boundary points")
        self._perm = hilbert_order(pts) if reorder else np.arange(len(pts))
        self._inv_perm = np.argsort(self._perm)
        self.points = pts[self._perm]

        if shape_parameter is None:
            shape_parameter = default_shape_parameter(min_spacing(pts))
        if tile_size is None:
            tile_size = max(32, int(np.sqrt(len(pts)) * 2))
        self.accuracy = float(accuracy)
        self.trim = bool(trim)
        self.generator = RBFMatrixGenerator(
            points=self.points,
            shape_parameter=float(shape_parameter),
            tile_size=int(tile_size),
            kernel=kernel if kernel is not None else GaussianRBF(),
            nugget=100.0 * accuracy if nugget is None else float(nugget),
        )
        self._factor: TLRMatrix | None = None
        self._fact_result: FactorizationResult | None = None
        self.timings: dict[str, float] = {}

    # ------------------------------------------------------------------

    @property
    def n_boundary(self) -> int:
        return len(self.points)

    @property
    def shape_parameter(self) -> float:
        return self.generator.shape_parameter

    @property
    def factorization(self) -> FactorizationResult | None:
        """The factorization result (None before :meth:`factorize`)."""
        return self._fact_result

    def factorize(self) -> FactorizationResult:
        """Generate, compress and factorize the RBF operator."""
        t0 = time.perf_counter()
        a = TLRMatrix.compress(
            self.generator.tile,
            self.generator.n,
            self.generator.tile_size,
            self.accuracy,
        )
        t1 = time.perf_counter()
        self.timings["generation+compression"] = t1 - t0
        self.timings["initial_density"] = a.density()
        result = tlr_cholesky(a, trim=self.trim)
        self.timings["factorization"] = time.perf_counter() - t1
        self._factor = result.factor
        self._fact_result = result
        return result

    def solve_coefficients(self, boundary_displacements: np.ndarray) -> np.ndarray:
        """Solve ``A alpha = d_b`` for the RBF coefficients.

        ``boundary_displacements`` is ``(nb, 3)`` in the *original*
        point order; the returned coefficients are in solver order
        (used by :meth:`interpolate`).
        """
        d = np.asarray(boundary_displacements, dtype=DTYPE)
        if d.shape != (self.n_boundary, 3):
            raise ValueError(
                f"displacements must have shape ({self.n_boundary}, 3), "
                f"got {d.shape}"
            )
        if self._factor is None:
            self.factorize()
        t0 = time.perf_counter()
        alpha = solve_cholesky(self._factor, d[self._perm])
        self.timings["solve"] = time.perf_counter() - t0
        return alpha

    def interpolate(
        self,
        volume_points: np.ndarray,
        coefficients: np.ndarray,
        chunk: int = 2048,
    ) -> np.ndarray:
        """Evaluate the RBF field at volume nodes (chunked GEMV)."""
        v = np.asarray(volume_points, dtype=DTYPE)
        if v.ndim != 2 or v.shape[1] != 3:
            raise ValueError(f"volume_points must have shape (n, 3), got {v.shape}")
        out = np.empty((len(v), 3), dtype=DTYPE)
        delta = self.generator.shape_parameter
        kern = self.generator.kernel
        for lo in range(0, len(v), chunk):
            hi = min(lo + chunk, len(v))
            diff = v[lo:hi, None, :] - self.points[None, :, :]
            dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            out[lo:hi] = kern.scaled(dist, delta) @ coefficients
        return out

    def deform(
        self,
        volume_points: np.ndarray,
        boundary_displacements: np.ndarray,
    ) -> MeshDeformationResult:
        """End-to-end: solve for coefficients and displace the volume.

        Returns the volume displacements plus the boundary
        interpolation error (how well the field reproduces the
        prescribed boundary motion — bounded by the compression
        accuracy and nugget).
        """
        alpha = self.solve_coefficients(boundary_displacements)
        t0 = time.perf_counter()
        vol = self.interpolate(volume_points, alpha)
        self.timings["interpolation"] = time.perf_counter() - t0
        at_boundary = self.interpolate(self.points, alpha)
        d_sorted = np.asarray(boundary_displacements, dtype=DTYPE)[self._perm]
        err = float(np.max(np.abs(at_boundary - d_sorted)))
        return MeshDeformationResult(
            volume_displacements=vol,
            coefficients=alpha,
            boundary_error=err,
            timings=dict(self.timings),
        )
