"""Boundary-displacement scenarios for mesh-deformation experiments.

Each generator maps boundary node coordinates to prescribed
displacements ``d_b`` — the right-hand sides of the RBF interpolation
system (Section IV-C).  They model the motions CFD moving-body
simulations impose: rigid motion, bending of a flexible body, and
radial inflation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rigid_rotation", "translation", "bending", "radial_expansion"]


def _check_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    return points


def rigid_rotation(
    points: np.ndarray,
    angle: float,
    axis: np.ndarray = (0.0, 0.0, 1.0),
    center: np.ndarray | None = None,
) -> np.ndarray:
    """Displacements of a rigid rotation by ``angle`` radians.

    Rodrigues' formula about ``axis`` through ``center`` (defaults to
    the centroid).
    """
    points = _check_points(points)
    axis = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        raise ValueError("rotation axis must be non-zero")
    axis = axis / norm
    c = points.mean(axis=0) if center is None else np.asarray(center, float)
    rel = points - c
    cos, sin = np.cos(angle), np.sin(angle)
    rotated = (
        rel * cos
        + np.cross(axis, rel) * sin
        + np.outer(rel @ axis, axis) * (1.0 - cos)
    )
    return rotated - rel


def translation(points: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Uniform translation by ``vector``."""
    points = _check_points(points)
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (3,):
        raise ValueError(f"vector must have shape (3,), got {vector.shape}")
    return np.broadcast_to(vector, points.shape).copy()


def bending(
    points: np.ndarray, amplitude: float, axis: int = 0, out_axis: int = 2
) -> np.ndarray:
    """Quadratic bending: displacement along ``out_axis`` grows with
    the squared (normalized) coordinate along ``axis`` — a cantilever-
    like deflection."""
    points = _check_points(points)
    if axis == out_axis:
        raise ValueError("bending axis and output axis must differ")
    x = points[:, axis]
    span = x.max() - x.min()
    xi = (x - x.min()) / span if span > 0 else np.zeros_like(x)
    d = np.zeros_like(points)
    d[:, out_axis] = amplitude * xi**2
    return d


def radial_expansion(
    points: np.ndarray, factor: float, center: np.ndarray | None = None
) -> np.ndarray:
    """Radial inflation: each point moves away from ``center`` so that
    distances scale by ``1 + factor``."""
    points = _check_points(points)
    c = points.mean(axis=0) if center is None else np.asarray(center, float)
    return factor * (points - c)
