"""End-user applications built on the TLR Cholesky framework."""

from repro.apps.deformation_field import (
    bending,
    radial_expansion,
    rigid_rotation,
    translation,
)
from repro.apps.mesh_deformation import MeshDeformationResult, RBFMeshDeformation
from repro.apps.mesh_quality import QualityReport, quality_report
from repro.apps.spatial_statistics import GaussianLogLikelihood, LikelihoodResult

__all__ = [
    "RBFMeshDeformation",
    "MeshDeformationResult",
    "rigid_rotation",
    "translation",
    "bending",
    "radial_expansion",
    "QualityReport",
    "quality_report",
    "GaussianLogLikelihood",
    "LikelihoodResult",
]
