"""Gaussian-process log-likelihood over the TLR pipeline.

The HiCMA line the paper extends (refs. [8]-[10], [13]) accelerates
geospatial statistics: evaluating the Gaussian log-likelihood

    l(theta) = -1/2 [ z^T Sigma(theta)^-1 z + log det Sigma(theta)
                      + n log 2 pi ]

for a Matern covariance ``Sigma`` over millions of 3D locations.
Both expensive pieces come straight from the TLR Cholesky factor:
``log det`` from the diagonal (``repro.core.solver.logdet``) and the
quadratic form from a triangular solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import DTYPE
from repro.core.solver import logdet, solve_lower
from repro.core.tlr_cholesky import tlr_cholesky
from repro.kernels.covariance import MaternKernel
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.tile_matrix import TLRMatrix
from repro.utils.hilbert import hilbert_order

__all__ = ["GaussianLogLikelihood", "LikelihoodResult"]


@dataclass
class LikelihoodResult:
    log_likelihood: float
    logdet: float
    quadratic_form: float
    seconds: float


class GaussianLogLikelihood:
    """TLR-accelerated Gaussian log-likelihood evaluation.

    Parameters
    ----------
    locations:
        ``(n, 3)`` observation sites (Hilbert-reordered internally).
    nu:
        Matern smoothness (1/2, 3/2, 5/2 use closed forms).
    accuracy, tile_size, nugget:
        TLR compression controls (nugget doubles as the measurement-
        error variance of the statistical model).
    """

    def __init__(
        self,
        locations: np.ndarray,
        nu: float = 0.5,
        accuracy: float = 1e-8,
        tile_size: int | None = None,
        nugget: float = 1e-4,
    ) -> None:
        pts = np.asarray(locations, dtype=DTYPE)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"locations must have shape (n, 3), got {pts.shape}")
        self._perm = hilbert_order(pts)
        self.points = pts[self._perm]
        self.nu = float(nu)
        self.accuracy = float(accuracy)
        self.tile_size = (
            max(32, int(np.sqrt(len(pts)) * 2)) if tile_size is None else tile_size
        )
        self.nugget = float(nugget)

    def evaluate(
        self, z: np.ndarray, length_scale: float
    ) -> LikelihoodResult:
        """Evaluate ``l(length_scale)`` for observations ``z``."""
        z = np.asarray(z, dtype=DTYPE)
        if z.shape != (len(self.points),):
            raise ValueError(
                f"z must have shape ({len(self.points)},), got {z.shape}"
            )
        if length_scale <= 0:
            raise ValueError(f"length_scale must be positive, got {length_scale}")
        t0 = time.perf_counter()
        gen = RBFMatrixGenerator(
            self.points,
            shape_parameter=length_scale,
            tile_size=self.tile_size,
            kernel=MaternKernel(nu=self.nu),
            nugget=self.nugget,
        )
        sigma = TLRMatrix.compress(
            gen.tile, gen.n, self.tile_size, self.accuracy
        )
        factor = tlr_cholesky(sigma).factor
        ld = logdet(factor)
        y = solve_lower(factor, z[self._perm])
        quad = float(y @ y)  # z^T Sigma^-1 z = ||L^-1 z||^2
        n = len(self.points)
        ll = -0.5 * (quad + ld + n * np.log(2.0 * np.pi))
        return LikelihoodResult(
            log_likelihood=ll,
            logdet=ld,
            quadratic_form=quad,
            seconds=time.perf_counter() - t0,
        )
