"""Functional distributed-memory execution over OS processes.

The simulators in :mod:`repro.machine` model *performance*; this
module executes the factorization *functionally distributed*: each
worker is a separate OS process owning exactly the tiles its data
distribution assigns (genuine memory isolation — no worker ever holds
the whole matrix), and tiles move between workers only along
dependency edges, exactly like MPI ranks under PaRSEC.

The coordinator walks the task graph in topological order, moving
operand tiles to the executing worker on demand (with a simple
ownership/copy coherence: a write invalidates remote copies) and
recording the traffic.  Scheduling is sequential by design — the goal
is *distribution correctness*, not speed: the distributed factor must
be bit-identical to the single-process one, which the tests assert.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field

import numpy as np

from repro.distribution.base import Distribution
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.dag import TaskGraph

__all__ = ["DistributedExecutor", "DistributedRunResult"]


# ----------------------------------------------------------------------
# tile (de)serialization — explicit, no pickling of library classes
# ----------------------------------------------------------------------


def _pack_tile(tile: Tile):
    if isinstance(tile, NullTile):
        return ("null", tile.shape)
    if isinstance(tile, LowRankTile):
        return ("lr", tile.u, tile.v)
    return ("dense", tile.data)


def _unpack_tile(payload) -> Tile:
    kind = payload[0]
    if kind == "null":
        return NullTile(payload[1])
    if kind == "lr":
        return LowRankTile(LowRankFactor(payload[1], payload[2]))
    return DenseTile(payload[1])


def _payload_bytes(payload) -> int:
    return sum(p.nbytes for p in payload[1:] if isinstance(p, np.ndarray))


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _worker_main(cmd_conn, res_conn, accuracy: float, max_rank) -> None:
    """Worker loop: owns a local tile store, executes kernels on it."""
    from repro.linalg.kernels_tlr import (
        gemm_tile,
        potrf_tile,
        syrk_tile,
        trsm_tile,
    )

    store: dict[tuple[int, int], Tile] = {}
    while True:
        msg = cmd_conn.recv()
        op = msg[0]
        if op == "stop":
            res_conn.send(("bye",))
            return
        if op == "put":
            _, key, payload = msg
            store[key] = _unpack_tile(payload)
            res_conn.send(("ok",))
        elif op == "get":
            _, key = msg
            res_conn.send(("tile", _pack_tile(store[key])))
        elif op == "drop":
            _, key = msg
            store.pop(key, None)
            res_conn.send(("ok",))
        elif op == "exec":
            _, klass, params = msg
            try:
                if klass == "POTRF":
                    (k,) = params
                    store[(k, k)] = potrf_tile(store[(k, k)])
                elif klass == "TRSM":
                    m, k = params
                    store[(m, k)] = trsm_tile(store[(k, k)], store[(m, k)])
                elif klass == "SYRK":
                    m, k = params
                    store[(m, m)] = syrk_tile(store[(m, m)], store[(m, k)])
                elif klass == "GEMM":
                    m, n, k = params
                    store[(m, n)] = gemm_tile(
                        store[(m, n)], store[(m, k)], store[(n, k)],
                        tol=accuracy, max_rank=max_rank,
                    )
                else:
                    raise ValueError(f"unknown task class {klass!r}")
                res_conn.send(("ok",))
            except Exception as exc:  # surface worker failures
                res_conn.send(("error", repr(exc)))
        else:
            res_conn.send(("error", f"unknown op {op!r}"))


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------


@dataclass
class DistributedRunResult:
    """Outcome of a functional distributed factorization."""

    factor: TLRMatrix
    n_tasks: int
    #: tiles moved between workers (dedup-coherent transfers)
    n_transfers: int
    transfer_bytes: int
    #: tasks executed per worker
    tasks_per_worker: list[int] = field(default_factory=list)


class DistributedExecutor:
    """Coordinator for functionally-distributed TLR Cholesky."""

    def __init__(self, n_processes: int) -> None:
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.nproc = int(n_processes)

    def run(
        self,
        a: TLRMatrix,
        graph: TaskGraph,
        data_dist: Distribution,
        exec_dist: Distribution | None = None,
    ) -> DistributedRunResult:
        """Execute ``graph`` on ``a`` across worker processes.

        ``a`` is consumed: its tiles are scattered to the workers and
        the gathered factor is returned as a fresh matrix.
        """
        if data_dist.nproc != self.nproc:
            raise ValueError("distribution nproc != executor nproc")
        xd = exec_dist if exec_dist is not None else data_dist
        ctx = mp.get_context("fork")
        cmd_pipes = [ctx.Pipe() for _ in range(self.nproc)]
        res_pipes = [ctx.Pipe() for _ in range(self.nproc)]
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(cmd_pipes[p][1], res_pipes[p][0], a.accuracy, a.max_rank),
                daemon=True,
            )
            for p in range(self.nproc)
        ]
        for w in workers:
            w.start()
        cmd = [c[0] for c in cmd_pipes]
        res = [r[1] for r in res_pipes]

        def ask(p: int, *msg):
            cmd[p].send(msg)
            reply = res[p].recv()
            if reply[0] == "error":
                raise RuntimeError(f"worker {p}: {reply[1]}")
            return reply

        try:
            # ---- scatter: each worker gets its owned tiles ----------
            home: dict[tuple[int, int], int] = {}
            for (m, k), tile in a:
                p = data_dist.owner(m, k)
                home[(m, k)] = p
                ask(p, "put", (m, k), _pack_tile(tile))
            # copies[d] = set of workers holding a current copy
            copies = {d: {p} for d, p in home.items()}

            n_transfers = 0
            transfer_bytes = 0
            tasks_per_worker = [0] * self.nproc

            def ensure_at(d: tuple[int, int], p: int) -> None:
                nonlocal n_transfers, transfer_bytes
                if p in copies[d]:
                    return
                src = next(iter(copies[d]))
                _, payload = ask(src, "get", d)
                ask(p, "put", d, payload)
                copies[d].add(p)
                n_transfers += 1
                transfer_bytes += _payload_bytes(payload)

            # ---- execute in topological order -----------------------
            order = graph.topological_order()
            for i in order:
                task = graph.tasks[i]
                out = task.writes[0]
                p = xd.owner(*out)
                for d in task.reads:
                    ensure_at(d, p)
                ask(p, "exec", task.klass, task.params)
                tasks_per_worker[p] += 1
                # the write invalidates every other copy
                stale = copies[out] - {p}
                for q in stale:
                    ask(q, "drop", out)
                copies[out] = {p}

            # ---- gather the factor ----------------------------------
            tiles: dict[tuple[int, int], Tile] = {}
            for d in home:
                src = next(iter(copies[d]))
                _, payload = ask(src, "get", d)
                tiles[d] = _unpack_tile(payload)
            factor = TLRMatrix(
                a.n, a.tile_size, tiles, a.accuracy, a.max_rank
            )
            return DistributedRunResult(
                factor=factor,
                n_tasks=len(graph),
                n_transfers=n_transfers,
                transfer_bytes=transfer_bytes,
                tasks_per_worker=tasks_per_worker,
            )
        finally:
            for p in range(self.nproc):
                try:
                    cmd[p].send(("stop",))
                    res[p].recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            for w in workers:
                w.join(timeout=10)
                if w.is_alive():
                    w.terminate()
