"""DAG construction from a sequential task enumeration.

Tasks are inserted in the canonical sequential order of the algorithm
(like PaRSEC unrolling a PTG); edges are derived from data versions:

* a task reading tile ``d`` depends on the last writer of ``d``;
* a task writing tile ``d`` depends on the last writer *and* on every
  reader since that writer (write-after-read), which serializes
  conflicting updates exactly like PaRSEC's data-version tracking.

Because edges come only from the declared accesses, the same builder
produces the full dense DAG or the trimmed DAG — the trimming
procedure simply enumerates fewer tasks (Section VI).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.runtime.task import Task

__all__ = ["TaskGraph", "build_graph"]


class TaskGraph:
    """An immutable DAG of tasks with helper analytics."""

    def __init__(self, tasks: list[Task], edges: dict[int, set[int]]) -> None:
        self.tasks = tasks
        #: successor indices per task index
        self.successors: dict[int, tuple[int, ...]] = {
            i: tuple(sorted(s)) for i, s in edges.items()
        }
        preds: dict[int, set[int]] = defaultdict(set)
        for src, dsts in edges.items():
            for dst in dsts:
                preds[dst].add(src)
        #: predecessor indices per task index
        self.predecessors: dict[int, tuple[int, ...]] = {
            i: tuple(sorted(p)) for i, p in preds.items()
        }
        self._by_uid = {t.uid: i for i, t in enumerate(tasks)}
        if len(self._by_uid) != len(tasks):
            raise ValueError("duplicate task uid in graph")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def index_of(self, task: Task) -> int:
        return self._by_uid[task.uid]

    def find(self, klass: str, params: tuple[int, ...]) -> Task | None:
        """Look up a task instance by class name and parameters."""
        i = self._by_uid.get((klass, tuple(params)))
        return None if i is None else self.tasks[i]

    def in_degree(self, i: int) -> int:
        return len(self.predecessors.get(i, ()))

    def n_edges(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def task_counts(self) -> dict[str, int]:
        """Number of task instances per task class."""
        counts: dict[str, int] = defaultdict(int)
        for t in self.tasks:
            counts[t.klass] += 1
        return dict(counts)

    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    # ------------------------------------------------------------------

    def topological_order(self) -> list[int]:
        """Kahn topological order (raises on cycles)."""
        indeg = {i: self.in_degree(i) for i in range(len(self.tasks))}
        stack = [i for i, d in indeg.items() if d == 0]
        order: list[int] = []
        while stack:
            i = stack.pop()
            order.append(i)
            for j in self.successors.get(i, ()):
                indeg[j] -= 1
                if indeg[j] == 0:
                    stack.append(j)
        if len(order) != len(self.tasks):
            raise ValueError("task graph contains a cycle")
        return order

    def critical_path(
        self, weight: callable = None
    ) -> tuple[float, list[int]]:
        """Longest path through the DAG.

        ``weight(task) -> float`` defaults to the task's ``flops``
        attribute.  Returns ``(length, path_indices)``.
        """
        if weight is None:
            weight = lambda t: t.flops
        dist = [0.0] * len(self.tasks)
        parent = [-1] * len(self.tasks)
        for i in self.topological_order():
            w = weight(self.tasks[i])
            di = dist[i] + w
            for j in self.successors.get(i, ()):
                if di > dist[j]:
                    dist[j] = di
                    parent[j] = i
        if not dist:
            return 0.0, []
        end = max(range(len(dist)), key=lambda i: dist[i] + weight(self.tasks[i]))
        length = dist[end] + weight(self.tasks[end])
        path = [end]
        while parent[path[-1]] != -1:
            path.append(parent[path[-1]])
        return length, path[::-1]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (nodes keyed by task uid)."""
        import networkx as nx

        g = nx.DiGraph()
        for t in self.tasks:
            g.add_node(t.uid, flops=t.flops, klass=t.klass)
        for i, succs in self.successors.items():
            for j in succs:
                g.add_edge(self.tasks[i].uid, self.tasks[j].uid)
        return g


def build_graph(tasks: Iterable[Task]) -> TaskGraph:
    """Derive the dependency DAG from a sequential task enumeration."""
    tasks = list(tasks)
    last_writer: dict[tuple[int, int], int] = {}
    readers_since: dict[tuple[int, int], list[int]] = defaultdict(list)
    edges: dict[int, set[int]] = defaultdict(set)

    for i, t in enumerate(tasks):
        reads = set(t.reads)
        writes = set(t.writes)
        for d in reads:
            w = last_writer.get(d)
            if w is not None and w != i:
                edges[w].add(i)
            if d not in writes:
                readers_since[d].append(i)
        for d in writes:
            w = last_writer.get(d)
            if w is not None and w != i:
                edges[w].add(i)
            for r in readers_since[d]:
                if r != i:
                    edges[r].add(i)
            readers_since[d] = []
            last_writer[d] = i
    return TaskGraph(tasks, edges)
