"""Deterministic fault injection and per-task retry/rollback.

Production task runtimes cannot assume every kernel invocation
succeeds: transient allocator hiccups, flaky accelerators and hung
workers are routine at serving scale.  This module provides the three
pieces the execution engines need to recover *locally* (the
asynchronous-runtime lesson: a failed task is re-run against its
rolled-back inputs, not the whole factorization):

``FaultPlan`` / ``FaultInjector``
    A seeded, deterministic description of which task invocations
    fail, how (transient exception, injected delay, corrupted tile
    write), and at what rate.  Decisions are pure functions of
    ``(seed, rule, task, attempt)`` — independent of thread timing,
    scheduler policy and worker count — so an injected run is exactly
    reproducible.

``RetryPolicy``
    Capped exponential backoff over a tuple of transient exception
    types.  The engines snapshot the tiles a task writes before every
    attempt (the DAG declares them), roll back on a transient failure
    and re-run, so a retried run is bitwise identical to a fault-free
    one.  Exhausted retries surface as :class:`TaskFailedError`.

``snapshot_writes`` / ``restore_writes``
    The rollback primitive.  Tile kernels never mutate operand arrays
    in place (they build new tiles and ``set_tile`` them), so a
    snapshot is a dict of tile *references* — O(writes) bookkeeping,
    no copies.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass

from repro.runtime.task import Task

__all__ = [
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "TransientKernelError",
    "TileCorruptionError",
    "InjectedCrashError",
    "TaskFailedError",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "snapshot_writes",
    "restore_writes",
]

#: Supported injected failure modes.
FAULT_KINDS = (
    "transient",
    "delay",
    "corrupt",
    "crash",
    "bitflip",
    "worker_kill",
    "worker_hang",
)

#: Kinds that end (or wedge) the executing *process* rather than fail
#: the task.  Their decisions are re-drawn with the dispatch epoch (see
#: :attr:`FaultInjector.epoch`), so a supervised replacement worker is
#: not doomed to die on the same task forever.
PROCESS_FAULT_KINDS = ("crash", "worker_kill", "worker_hang")


class TransientKernelError(RuntimeError):
    """A kernel failure that is expected to succeed on re-execution.

    The fault injector raises it for both injected transient faults
    and (after the fact) injected corrupted writes; real kernels may
    raise it for genuinely retryable conditions.
    """


class TileCorruptionError(TransientKernelError):
    """A tile failed checksum verification at a kernel read.

    Subclassing :class:`TransientKernelError` routes detection through
    the engines' existing retry/rollback path: a corrupted *write*
    heals on re-execution, and an unhealable at-rest corruption
    exhausts the budget and surfaces as :class:`TaskFailedError` — in
    no case does the corrupt value flow onward silently.
    """


class InjectedCrashError(RuntimeError):
    """Process death injected mid-factorization (soft form).

    Deliberately *not* a :class:`TransientKernelError`: a crash is not
    retryable in-process, so it bypasses the retry policy, fails the
    engine fast, and unit tests can catch it where a real SIGKILL
    (``hard_crash=True``) would leave only the on-disk checkpoints.
    """


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget (or had none).

    Carries the task identity, the number of attempts made, and the
    underlying cause so callers can log, alert, or re-queue precisely.
    """

    def __init__(self, task: Task, attempts: int, cause: BaseException) -> None:
        self.task = str(task)
        self.klass = task.klass
        self.params = tuple(task.params)
        self.attempts = int(attempts)
        self.cause = cause
        super().__init__(
            f"task {task} failed after {attempts} attempt(s): {cause}"
        )

    def __reduce__(self):
        # __init__ takes a Task but the instance keeps only its string
        # form, so the default exception reduce (cls, self.args) cannot
        # reconstruct one.  The process-pool engine ships these through
        # a result queue, so pickling must round-trip with `.cause`
        # intact (the coordinator's heal path inspects it).
        return (
            _rebuild_task_failed,
            (self.task, self.klass, self.params, self.attempts, self.cause),
        )


def _rebuild_task_failed(task, klass, params, attempts, cause):
    exc = TaskFailedError.__new__(TaskFailedError)
    exc.task = task
    exc.klass = klass
    exc.params = tuple(params)
    exc.attempts = attempts
    exc.cause = cause
    RuntimeError.__init__(
        exc, f"task {task} failed after {attempts} attempt(s): {cause}"
    )
    return exc


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fault ``kind`` at ``rate`` for task ``klass``.

    ``klass`` is an upper-cased task-class name or ``"*"`` for every
    class; ``rate`` is the per-attempt injection probability in
    ``[0, 1]``; ``delay_seconds`` only applies to ``kind="delay"``.
    """

    klass: str
    kind: str
    rate: float
    delay_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_seconds < 0.0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, task: Task) -> bool:
        return self.klass == "*" or self.klass == task.klass.upper()


def _fraction(key: str) -> float:
    """Deterministic uniform draw in [0, 1) from a string key.

    Uses BLAKE2b rather than ``hash()`` so decisions are stable across
    processes and interpreter runs (``PYTHONHASHSEED`` salts ``hash``).
    """
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s.

    ``decide(task, attempt)`` is a pure function: the same plan makes
    the same per-attempt decisions regardless of execution order, so
    serial and parallel runs see identical fault sequences.
    """

    rules: tuple[FaultRule, ...]
    seed: int = 0

    def decide(self, task: Task, attempt: int) -> tuple[FaultRule, ...]:
        """The rules that fire for this (task, attempt) invocation."""
        hit = []
        for rule in self.rules:
            if not rule.matches(task):
                continue
            key = (
                f"{self.seed}|{rule.klass}|{rule.kind}|"
                f"{task.klass}|{task.params}|{attempt}"
            )
            if _fraction(key) < rule.rate:
                hit.append(rule)
        return tuple(hit)

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, delay_seconds: float = 0.001
    ) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        The spec is a comma-separated list of ``CLASS:RATE`` (a
        transient fault) or ``CLASS:KIND:RATE`` entries, where
        ``CLASS`` is a task-class name or ``all``/``*``::

            all:0.1                     # 10% transient faults everywhere
            GEMM:0.2,TRSM:delay:0.05    # per-class, mixed kinds
        """
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) == 2:
                klass, kind, rate = fields[0], "transient", fields[1]
            elif len(fields) == 3:
                klass, kind, rate = fields
            else:
                raise ValueError(
                    f"bad fault spec entry {part!r}; expected "
                    "CLASS:RATE or CLASS:KIND:RATE"
                )
            klass = klass.strip().upper()
            if klass == "ALL":
                klass = "*"
            rules.append(
                FaultRule(
                    klass=klass,
                    kind=kind.strip().lower(),
                    rate=float(rate),
                    delay_seconds=delay_seconds,
                )
            )
        if not rules:
            raise ValueError(f"fault spec {spec!r} contains no rules")
        return cls(rules=tuple(rules), seed=seed)


class FaultInjector:
    """Wraps kernel dispatch, applying a :class:`FaultPlan`.

    Thread-safe: the engines call :meth:`invoke` concurrently from
    worker threads.  ``counters`` tallies injected faults by kind and
    by ``kind:CLASS`` for observability and tests.

    Injection points:

    * ``delay`` — sleeps before the kernel runs (models a slow task);
    * ``transient`` — raises :class:`TransientKernelError` *instead of*
      running the kernel (models failure at dispatch);
    * ``corrupt`` — runs the kernel, overwrites one of the task's
      output tiles with NaNs, then raises
      :class:`TransientKernelError` (models a detected corrupted
      write) — exercising the engines' rollback path for real;
    * ``crash`` — the process dies at dispatch: with
      ``hard_crash=True`` the interpreter exits immediately via
      ``os._exit(137)`` (SIGKILL semantics — no cleanup, no atexit,
      torn temp files stay behind), otherwise
      :class:`InjectedCrashError` propagates uncaught through the
      engine (soft form for in-process tests) — either way, recovery
      is only possible through the checkpoint/restart layer;
    * ``bitflip`` — runs the kernel, then *silently* flips one bit of
      one element in a tile the task read (at-rest corruption of an
      already-produced tile: a memory bit flip).  Nothing is raised —
      without checksum verification (``REPRO_VERIFY_TILES=1``) the
      corruption flows undetected into the factor.
    * ``worker_kill`` — the executing *worker process* dies by real
      ``SIGKILL`` (negative exit code, exactly what the OOM killer
      produces) at dispatch, before the kernel runs.  Only acts when
      ``in_worker`` is set (the process-pool engine's forked workers);
      in-process engines ignore it — killing the caller would model
      nothing.  Recovery is the supervisor's job: requeue, restore,
      respawn.
    * ``worker_hang`` — the worker wedges at dispatch (sleeps
      indefinitely), modeling a livelocked kernel or a lost worker.
      Detected by the supervisor's per-task hang budget and resolved
      with a real ``SIGKILL``.  Like ``worker_kill``, a no-op outside
      forked workers.
    """

    def __init__(self, plan: FaultPlan, hard_crash: bool = False) -> None:
        self.plan = plan
        self.hard_crash = bool(hard_crash)
        #: set by the process-pool engine inside each forked worker —
        #: gates the whole-worker fault kinds (worker_kill/worker_hang)
        #: that make no sense in the coordinator or in-process engines.
        self.in_worker = False
        #: dispatch epoch of the task being invoked (the coordinator's
        #: redispatch count, carried on the task message).  Process-fate
        #: kinds re-draw their decision at ``attempt + epoch``: without
        #: the shift, a deterministic plan would kill every respawned
        #: replacement on the same task and supervision could never
        #: converge.  Epoch 0 leaves every decision bitwise-unchanged.
        self.epoch = 0
        self.counters: Counter[str] = Counter()
        #: tile keys the most recent ``invoke`` bitflipped — consumers
        #: (the mp engine's post-kernel operand re-check) use it to
        #: tell the task's *own* post-kernel at-rest flips (outputs
        #: valid, later readers' problem) from a concurrent task's
        #: flip that may have raced the kernel's reads.  Meaningful
        #: only where one invoke runs at a time per injector copy
        #: (forked workers); the threaded engine never reads it.
        self.flipped_reads: list[tuple[int, int]] = []
        self._lock = threading.Lock()

    def _count(self, kind: str, klass: str) -> None:
        with self._lock:
            self.counters[kind] += 1
            self.counters[f"{kind}:{klass}"] += 1
            self.counters["total"] += 1

    def invoke(
        self,
        kernel: Callable[[Task, object], None],
        task: Task,
        data: object,
        attempt: int = 0,
    ) -> None:
        faults = self.plan.decide(task, attempt)
        if self.epoch:
            # Re-draw only the process-fate kinds at the shifted
            # attempt; every task-level decision (transient, corrupt,
            # bitflip, delay) keeps its original, engine-independent
            # sequence so retried runs stay bitwise-reproducible.
            shifted = self.plan.decide(task, attempt + self.epoch)
            faults = tuple(
                r for r in faults if r.kind not in PROCESS_FAULT_KINDS
            ) + tuple(r for r in shifted if r.kind in PROCESS_FAULT_KINDS)
        self.flipped_reads = []
        for rule in faults:
            if rule.kind == "delay":
                self._count("delay", task.klass)
                time.sleep(rule.delay_seconds)
        for rule in faults:
            if rule.kind == "crash":
                self._count("crash", task.klass)
                if self.hard_crash:
                    import os

                    os._exit(137)  # SIGKILL semantics: no cleanup at all
                raise InjectedCrashError(
                    f"injected process crash at {task} (attempt {attempt})"
                )
        if self.in_worker:
            for rule in faults:
                if rule.kind == "worker_kill":
                    import os
                    import signal

                    self._count("worker_kill", task.klass)
                    os.kill(os.getpid(), signal.SIGKILL)
                if rule.kind == "worker_hang":
                    self._count("worker_hang", task.klass)
                    while True:  # wedge until the supervisor SIGKILLs us
                        time.sleep(60.0)
        for rule in faults:
            if rule.kind == "transient":
                self._count("transient", task.klass)
                raise TransientKernelError(
                    f"injected transient fault in {task} (attempt {attempt})"
                )
        kernel(task, data)
        for rule in faults:
            if rule.kind == "corrupt" and self._corrupt_one_write(task, data):
                self._count("corrupt", task.klass)
                raise TransientKernelError(
                    f"injected corrupted write in {task} (attempt {attempt})"
                )
        for rule in faults:
            # deliberately silent on success: the whole point of the
            # bitflip kind is that only checksum verification sees it
            if rule.kind == "bitflip":
                flipped = self._bitflip_one_read(task, data, attempt)
                if flipped is not None:
                    self.flipped_reads.append(flipped)
                    self._count("bitflip", task.klass)

    @staticmethod
    def _corrupt_one_write(task: Task, data: object) -> bool:
        """NaN-fill the task's first output tile (if the store has tiles)."""
        writes = task.writes
        if not writes or not hasattr(data, "tile") or not hasattr(data, "set_tile"):
            return False
        import numpy as np

        from repro.linalg.tile import DenseTile

        m, k = writes[0]
        shape = data.tile(m, k).shape
        data.set_tile(m, k, DenseTile(np.full(shape, np.nan)))
        return True

    def _bitflip_one_read(
        self, task: Task, data: object, attempt: int
    ) -> tuple[int, int] | None:
        """Flip one bit in one element of a tile the task only reads.

        Pure-read tiles are already-finalized outputs of earlier tasks
        (their checksums, if a ledger is active, were recorded when
        they were produced), so flipping a bit here models at-rest
        corruption: a later reader's pre-kernel verification — or the
        end-of-run sweep — is the only defense.  The perturbed tile is
        *republished* via ``set_tile`` (a fresh array), honoring the
        kernels' no-in-place-mutation convention; deterministic in
        ``(seed, task, attempt)`` like every other decision.  Returns
        the flipped tile's key, or ``None`` if nothing was flipped.
        """
        if not hasattr(data, "tile") or not hasattr(data, "set_tile"):
            return None
        written = set(task.writes)
        read_only = sorted(set(task.reads) - written)
        if not read_only:
            return None
        import numpy as np

        from repro.linalg.lowrank import LowRankFactor
        from repro.linalg.tile import DenseTile, LowRankTile

        salt = f"{self.plan.seed}|bitflip|{task.klass}|{task.params}|{attempt}"
        m, k = read_only[
            int(_fraction(salt + "|tile") * len(read_only)) % len(read_only)
        ]
        tile = data.tile(m, k)
        if isinstance(tile, LowRankTile):
            u = tile.u.copy()
            flat = u.reshape(-1).view(np.uint64)
            flat[int(_fraction(salt + "|elem") * flat.size) % flat.size] ^= (
                np.uint64(1) << np.uint64(40)
            )
            data.set_tile(m, k, LowRankTile(LowRankFactor(u, tile.v.copy())))
        elif isinstance(tile, DenseTile):
            d = tile.data.copy()
            flat = d.reshape(-1).view(np.uint64)
            flat[int(_fraction(salt + "|elem") * flat.size) % flat.size] ^= (
                np.uint64(1) << np.uint64(40)
            )
            data.set_tile(m, k, DenseTile(d))
        else:  # null tiles store no payload to corrupt
            return None
        return (m, k)


# ----------------------------------------------------------------------
# retry policy + rollback
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over transient kernel failures.

    ``max_retries`` is the number of *re*-executions after the first
    attempt (0 disables retry: a transient failure immediately becomes
    :class:`TaskFailedError`).  ``retry_on`` is the tuple of exception
    types treated as transient; anything else propagates unchanged,
    preserving the engines' fail-fast behavior for real bugs.
    """

    max_retries: int = 3
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.1
    retry_on: tuple[type[BaseException], ...] = (TransientKernelError,)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0.0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        if self.backoff_seconds <= 0.0:
            return 0.0
        return min(
            self.backoff_seconds * self.backoff_multiplier**attempt,
            self.max_backoff_seconds,
        )


def snapshot_writes(task: Task, data: object) -> dict | None:
    """References to the tiles ``task`` writes, keyed by tile index.

    Returns ``None`` for data stores without tile accessors (rollback
    is then unavailable; retry still works for kernels that fail
    before publishing output).  Tiles are immutable by convention —
    kernels build new tiles rather than mutating operands — so
    references are a complete snapshot.
    """
    tile = getattr(data, "tile", None)
    set_tile = getattr(data, "set_tile", None)
    if tile is None or set_tile is None:
        return None
    return {key: tile(*key) for key in set(task.writes)}


def restore_writes(task: Task, data: object, snapshot: dict | None) -> None:
    """Roll the tiles ``task`` writes back to their snapshot state."""
    if not snapshot:
        return
    for (m, k), t in snapshot.items():
        data.set_tile(m, k, t)
