"""Checkpoint/restart and tile-integrity bookkeeping for DAG runs.

A process crash mid-factorization loses hours of work at the paper's
scale; a silently corrupted tile poisons the factor and every solve
served from it.  This module supplies the recovery layer both
execution engines plug into:

``ChecksumLedger``
    Thread-safe map of tile index → BLAKE2b content checksum
    (:func:`repro.linalg.integrity.tile_checksum`).  Engines record a
    checksum whenever a kernel publishes a tile and — under
    ``REPRO_VERIFY_TILES=1`` — re-verify every operand tile before a
    kernel consumes it, plus one full sweep at run end.

``CheckpointManager``
    Periodically persists the *completed-task frontier* plus the tiles
    those tasks wrote.  Consistency does not need a stop-the-world
    pause: a task's output tiles cannot be touched by any other task
    until the engine publishes its successors, so capturing the tile
    *references* at retirement (tiles are immutable by convention)
    yields a frontier-consistent snapshot even under the parallel
    engine.  Checkpoints are written atomically (temp + fsync +
    rename) as an ``.npz`` payload plus a JSON sidecar manifest
    carrying the payload digest, per-tile checksums, the completed
    task list, and a graph signature; torn or tampered checkpoints are
    detected at load and quarantined, falling back to the previous
    one.

``load_checkpoint`` / resume
    A restarted run rebuilds its pristine operator (the spec is
    deterministic), overlays the checkpoint's tiles, and the engines
    replay only tasks outside the frontier — the resumed factor is
    bitwise identical to an uninterrupted run, because every remaining
    task reads exactly the values it would have read.

The manager also retains a reference map of the last-known-good tile
per index, which lets a verification failure *heal* in place (restore
the clean tile, re-verify, re-run) instead of aborting — the recovery
path exercised by the ``bitflip`` fault kind.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.linalg.integrity import tile_checksum
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile
from repro.utils.atomic import atomic_write_bytes

__all__ = [
    "VERIFY_TILES_ENV",
    "verify_tiles_from_env",
    "ChecksumLedger",
    "Checkpoint",
    "CheckpointManager",
    "graph_signature",
    "load_checkpoint",
]

#: Environment variable switching on per-kernel checksum verification.
VERIFY_TILES_ENV = "REPRO_VERIFY_TILES"

_MANIFEST_VERSION = 1
_CKPT_PREFIX = "ckpt-"

#: task uid as stored in the manifest: (klass, params tuple)
TaskUid = tuple[str, tuple[int, ...]]


def verify_tiles_from_env() -> bool:
    """Whether $REPRO_VERIFY_TILES requests per-kernel verification."""
    return os.environ.get(VERIFY_TILES_ENV, "").strip() not in ("", "0")


def graph_signature(graph) -> str:
    """Stable digest of a task graph's identity (class + params set).

    Guards resume: a checkpoint taken against one factorization must
    not be replayed into a different one (another matrix size, a
    different trimming outcome, an LU graph...).
    """
    h = hashlib.blake2b(digest_size=16)
    for uid in sorted(t.uid for t in graph.tasks):
        h.update(f"{uid[0]}{uid[1]};".encode())
    return h.hexdigest()


class ChecksumLedger:
    """Thread-safe tile-index → content-checksum map."""

    def __init__(self) -> None:
        self._sums: dict[tuple[int, int], str] = {}
        self._lock = threading.Lock()

    def record(self, key: tuple[int, int], tile: Tile) -> str:
        checksum = tile_checksum(tile)
        with self._lock:
            self._sums[key] = checksum
        return checksum

    def expected(self, key: tuple[int, int]) -> str | None:
        with self._lock:
            return self._sums.get(key)

    def matches(self, key: tuple[int, int], tile: Tile) -> bool:
        """True when no checksum is recorded for ``key`` (nothing to
        verify against) or the tile hashes to the recorded value."""
        expected = self.expected(key)
        return expected is None or tile_checksum(tile) == expected

    def seed(self, data) -> None:
        """Record every stored tile of a tile matrix."""
        for key, tile in data:
            self.record(key, tile)

    def keys(self) -> list[tuple[int, int]]:
        with self._lock:
            return list(self._sums)

    def snapshot(self) -> dict[tuple[int, int], str]:
        with self._lock:
            return dict(self._sums)


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------


@dataclass
class Checkpoint:
    """One loaded, validated checkpoint."""

    seq: int
    completed: frozenset[TaskUid]
    tiles: dict[tuple[int, int], Tile]
    checksums: dict[tuple[int, int], str]
    graph_signature: str
    matrix_meta: dict
    manifest_path: Path

    def __repr__(self) -> str:
        return (
            f"Checkpoint(seq={self.seq}, completed={len(self.completed)} "
            f"tasks, dirty={len(self.tiles)} tiles)"
        )


def _tiles_to_npz_bytes(tiles: dict[tuple[int, int], Tile]) -> bytes:
    arrays: dict[str, np.ndarray] = {}
    kinds = []
    for (m, k), tile in sorted(tiles.items()):
        key = f"{m}_{k}"
        if isinstance(tile, NullTile):
            kinds.append((m, k, 0, tile.shape[0], tile.shape[1]))
        elif isinstance(tile, LowRankTile):
            kinds.append((m, k, 1, tile.shape[0], tile.shape[1]))
            arrays[f"u_{key}"] = tile.u
            arrays[f"v_{key}"] = tile.v
        else:
            kinds.append((m, k, 2, tile.shape[0], tile.shape[1]))
            arrays[f"d_{key}"] = tile.data
    arrays["kinds"] = np.array(kinds, dtype=np.int64).reshape(-1, 5)
    buf = io.BytesIO()
    np.savez(buf, **arrays)  # uncompressed: checkpoints are hot-path
    return buf.getvalue()


def _tiles_from_npz_bytes(payload: bytes) -> dict[tuple[int, int], Tile]:
    tiles: dict[tuple[int, int], Tile] = {}
    with np.load(io.BytesIO(payload)) as data:
        for m, k, kind, rows, cols in data["kinds"]:
            m, k, kind = int(m), int(k), int(kind)
            key = f"{m}_{k}"
            if kind == 0:
                tiles[(m, k)] = NullTile((int(rows), int(cols)))
            elif kind == 1:
                # np.asarray (not ascontiguousarray): the npy format
                # preserves Fortran order and the stored dtype, and
                # both must survive the round-trip — BLAS picks
                # different kernel paths (and rounds differently) for
                # C- vs F-ordered operands, and a dtype cast would
                # break the manifest checksum of fp32-stored tiles.
                tiles[(m, k)] = LowRankTile(
                    LowRankFactor(
                        np.asarray(data[f"u_{key}"]),
                        np.asarray(data[f"v_{key}"]),
                    )
                )
            elif kind == 2:
                tiles[(m, k)] = DenseTile(data[f"d_{key}"])
            else:
                raise ValueError(f"corrupt tile kind {kind} at ({m}, {k})")
    return tiles


def _payload_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _quarantine(path: Path) -> None:
    """Move a corrupt file out of the way (best effort, never raises)."""
    try:
        path.rename(path.with_name(path.name + ".corrupt"))
    except OSError:
        pass


def _load_one(manifest_path: Path) -> Checkpoint:
    """Load + validate one checkpoint; raises on any inconsistency."""
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ValueError(
            f"unsupported checkpoint manifest version "
            f"{manifest.get('version')!r}"
        )
    payload_path = manifest_path.parent / manifest["payload"]
    payload = payload_path.read_bytes()
    digest = _payload_digest(payload)
    if digest != manifest["payload_blake2b"]:
        raise ValueError(
            f"checkpoint payload {payload_path.name} digest mismatch "
            f"(manifest {manifest['payload_blake2b']}, file {digest}) — "
            "torn or tampered write"
        )
    tiles = _tiles_from_npz_bytes(payload)
    checksums: dict[tuple[int, int], str] = {}
    for key_str, expected in manifest["tile_checksums"].items():
        m_str, k_str = key_str.split("_")
        key = (int(m_str), int(k_str))
        if key not in tiles:
            raise ValueError(f"manifest names tile {key} absent from payload")
        actual = tile_checksum(tiles[key])
        if actual != expected:
            raise ValueError(
                f"checkpoint tile {key} checksum mismatch "
                f"(expected {expected}, got {actual})"
            )
        checksums[key] = expected
    if set(checksums) != set(tiles):
        raise ValueError("payload holds tiles the manifest does not cover")
    completed = frozenset(
        (str(klass), tuple(int(p) for p in params))
        for klass, params in manifest["completed"]
    )
    return Checkpoint(
        seq=int(manifest["seq"]),
        completed=completed,
        tiles=tiles,
        checksums=checksums,
        graph_signature=str(manifest["graph_signature"]),
        matrix_meta=dict(manifest["matrix"]),
        manifest_path=manifest_path,
    )


def load_checkpoint(path: str | os.PathLike) -> Checkpoint | None:
    """Load the newest valid checkpoint under ``path``.

    ``path`` may be a checkpoint directory (newest-first scan over
    ``ckpt-*.json``; corrupt candidates are quarantined and the scan
    falls back to the previous one) or one specific manifest file
    (corruption then raises instead of silently starting over).
    Returns ``None`` when the directory holds no usable checkpoint.
    """
    path = Path(path)
    if path.is_file():
        return _load_one(path)
    if not path.is_dir():
        return None
    candidates = sorted(path.glob(f"{_CKPT_PREFIX}*.json"), reverse=True)
    for manifest_path in candidates:
        try:
            return _load_one(manifest_path)
        except (ValueError, OSError, KeyError, json.JSONDecodeError):
            _quarantine(manifest_path.parent / (manifest_path.stem + ".npz"))
            _quarantine(manifest_path)
    return None


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


class CheckpointManager:
    """Cadence-driven checkpointing + in-memory tile recovery.

    Parameters
    ----------
    directory:
        Where checkpoint payloads and manifests live (created on
        demand).
    every_tasks:
        Write a checkpoint after this many retired tasks (``None``
        disables the task-count trigger).
    every_seconds:
        ... or after this much wall-clock time since the last write
        (``None`` disables the timer trigger).  Either trigger firing
        marks a checkpoint due; the worker that notices writes it
        outside the engine's scheduling lock.
    keep:
        Retained checkpoint generations; older ones are pruned after a
        successful write (the newest is only ever deleted *after* its
        replacement is durably on disk).

    One manager instance serves one factorization at a time
    (:meth:`bind` resets per-run state); the engines call
    :meth:`task_retired` after every task and :meth:`flush` when a
    write is due.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        every_tasks: int | None = 50,
        every_seconds: float | None = None,
        keep: int = 2,
    ) -> None:
        if every_tasks is not None and every_tasks < 1:
            raise ValueError(f"every_tasks must be >= 1, got {every_tasks}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be positive, got {every_seconds}"
            )
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        if every_tasks is None and every_seconds is None:
            raise ValueError(
                "at least one of every_tasks / every_seconds must be set"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_tasks = every_tasks
        self.every_seconds = every_seconds
        self.keep = int(keep)
        self.ledger = ChecksumLedger()
        self._lock = threading.Lock()
        self._signature: str | None = None
        self._matrix_meta: dict = {}
        self._completed: set[TaskUid] = set()
        #: tile index -> (reference, checksum) captured at retirement
        self._dirty: dict[tuple[int, int], tuple[Tile, str]] = {}
        #: last-known-good tile reference per index (healing source)
        self._refs: dict[tuple[int, int], Tile] = {}
        self._seq = self._existing_seq()
        self._tasks_since = 0
        self._last_write = time.monotonic()
        self._due = False
        self._writing = False
        #: observability counters
        self.checkpoints_written = 0
        self.tiles_healed = 0
        self.resumed_tasks = 0

    # ------------------------------------------------------------------
    # binding / resume
    # ------------------------------------------------------------------

    def _existing_seq(self) -> int:
        seqs = []
        for p in self.directory.glob(f"{_CKPT_PREFIX}*.json"):
            try:
                seqs.append(int(p.stem[len(_CKPT_PREFIX):]))
            except ValueError:
                continue
        return max(seqs, default=0)

    def bind(self, graph, data, resume: Checkpoint | None = None) -> int:
        """Attach to one run: reset state, optionally apply a resume.

        With ``resume``, the checkpoint is validated against this graph
        and matrix, its tiles are applied onto ``data`` (which must be
        the *pristine* operator, rebuilt exactly as the original run
        built it), and the completed frontier is adopted so the engines
        replay only unfinished tasks.  Returns the number of tasks the
        frontier skips.  Idempotent for the same graph: engines may
        re-call it without clobbering an earlier bind.
        """
        signature = graph_signature(graph)
        with self._lock:
            if self._signature == signature:
                return self.resumed_tasks
            self._signature = signature
            self._matrix_meta = {
                "n": int(data.n),
                "tile_size": int(data.tile_size),
                "accuracy": float(data.accuracy),
                "max_rank": (
                    None if data.max_rank is None else int(data.max_rank)
                ),
            }
            self._completed = set()
            self._dirty = {}
            self._refs = {}
            self.ledger = ChecksumLedger()
            self._tasks_since = 0
            self._last_write = time.monotonic()
            self._due = False
            self.resumed_tasks = 0

        if resume is not None:
            if resume.graph_signature != signature:
                raise ValueError(
                    "checkpoint does not match this factorization "
                    f"(graph signature {resume.graph_signature} vs "
                    f"{signature}); refusing to resume"
                )
            for field_name in ("n", "tile_size"):
                if resume.matrix_meta.get(field_name) != self._matrix_meta[
                    field_name
                ]:
                    raise ValueError(
                        f"checkpoint matrix {field_name}="
                        f"{resume.matrix_meta.get(field_name)} does not "
                        f"match operator {field_name}="
                        f"{self._matrix_meta[field_name]}"
                    )
            for (m, k), tile in resume.tiles.items():
                data.set_tile(m, k, tile)
            with self._lock:
                self._completed = set(resume.completed)
                self._dirty = {
                    key: (tile, resume.checksums[key])
                    for key, tile in resume.tiles.items()
                }
                self._seq = max(self._seq, resume.seq)
                self.resumed_tasks = len(self._completed)

        # Seed the ledger and healing references from the (possibly
        # just-restored) matrix: every later verification has a
        # baseline, and every tile has a known-good reference.
        for key, tile in data:
            self.ledger.record(key, tile)
            with self._lock:
                self._refs[key] = tile
        return self.resumed_tasks

    @property
    def completed_uids(self) -> frozenset[TaskUid]:
        with self._lock:
            return frozenset(self._completed)

    # ------------------------------------------------------------------
    # per-task hooks (called by the engines)
    # ------------------------------------------------------------------

    def task_retired(self, task, data) -> bool:
        """Record a completed task; True when a checkpoint is now due.

        Must be called after the task's kernel finished and *before*
        the engine publishes its successors — at that point the tiles
        the task wrote cannot be concurrently replaced, so the
        captured references are exactly the task's outputs.
        """
        captured = {key: data.tile(*key) for key in set(task.writes)}
        with self._lock:
            self._completed.add(task.uid)
            for key, tile in captured.items():
                checksum = self.ledger.expected(key)
                if checksum is None:
                    checksum = tile_checksum(tile)
                self._dirty[key] = (tile, checksum)
                self._refs[key] = tile
            self._tasks_since += 1
            if not self._due:
                if (
                    self.every_tasks is not None
                    and self._tasks_since >= self.every_tasks
                ):
                    self._due = True
                elif (
                    self.every_seconds is not None
                    and time.monotonic() - self._last_write
                    >= self.every_seconds
                ):
                    self._due = True
            return self._due and not self._writing

    def heal(self, data, key: tuple[int, int]) -> bool:
        """Restore a corrupted tile from its last-known-good reference.

        Succeeds only when the retained reference still matches the
        ledger checksum (i.e. the reference itself was not the victim);
        then the clean tile is republished and the kernel can retry.
        """
        with self._lock:
            clean = self._refs.get(key)
        if clean is None:
            return False
        expected = self.ledger.expected(key)
        if expected is None or tile_checksum(clean) != expected:
            return False
        data.set_tile(*key, clean)
        with self._lock:
            self.tiles_healed += 1
        return True

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def flush(self, data=None, force: bool = False) -> Path | None:
        """Write a checkpoint if one is due (or ``force=True``).

        Safe to call from any worker thread; a single writer proceeds,
        concurrent callers return immediately (the due flag stays set,
        so a skipped flush is retried at the next retirement).
        """
        with self._lock:
            if self._writing or not (self._due or force):
                return None
            if self._signature is None:
                raise RuntimeError("flush() before bind()")
            self._writing = True
            seq = self._seq + 1
            completed = sorted(self._completed)
            dirty = dict(self._dirty)
            signature = self._signature
            matrix_meta = dict(self._matrix_meta)
        try:
            path = self._write(seq, completed, dirty, signature, matrix_meta)
        finally:
            with self._lock:
                self._writing = False
        with self._lock:
            self._seq = seq
            self._tasks_since = 0
            self._last_write = time.monotonic()
            self._due = False
            self.checkpoints_written += 1
        self._prune()
        return path

    def _write(
        self,
        seq: int,
        completed: list[TaskUid],
        dirty: dict[tuple[int, int], tuple[Tile, str]],
        signature: str,
        matrix_meta: dict,
    ) -> Path:
        stem = f"{_CKPT_PREFIX}{seq:06d}"
        payload = _tiles_to_npz_bytes(
            {key: tile for key, (tile, _) in dirty.items()}
        )
        manifest = {
            "version": _MANIFEST_VERSION,
            "seq": seq,
            "payload": f"{stem}.npz",
            "payload_blake2b": _payload_digest(payload),
            "graph_signature": signature,
            "matrix": matrix_meta,
            "completed": [[klass, list(params)] for klass, params in completed],
            "tile_checksums": {
                f"{m}_{k}": checksum
                for (m, k), (_, checksum) in sorted(dirty.items())
            },
            "created_at": time.time(),
        }
        # Payload first, manifest last: a manifest on disk implies its
        # payload is complete, so readers trust manifest-then-payload.
        atomic_write_bytes(self.directory / f"{stem}.npz", payload)
        return atomic_write_bytes(
            self.directory / f"{stem}.json",
            json.dumps(manifest, indent=1).encode(),
        )

    def _prune(self) -> None:
        manifests = sorted(self.directory.glob(f"{_CKPT_PREFIX}*.json"))
        for manifest_path in manifests[: -self.keep or None]:
            (self.directory / (manifest_path.stem + ".npz")).unlink(
                missing_ok=True
            )
            manifest_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "checkpoints_written": self.checkpoints_written,
                "tiles_healed": self.tiles_healed,
                "resumed_tasks": self.resumed_tasks,
                "completed_tasks": len(self._completed),
                "dirty_tiles": len(self._dirty),
                "seq": self._seq,
            }
