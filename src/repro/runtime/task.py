"""Tasks and data accesses — the vertices of the DAG.

A task is an instance of a *task class* (POTRF, TRSM, SYRK, GEMM, ...)
identified by its class name and integer parameters, exactly like a
PaRSEC PTG task ``TRSM(k, m)``.  Each task declares which data items
(tiles) it reads and writes; the DAG builder derives edges from these
declarations, so communication in the distributed simulator is
implicit — derived from dependencies — as in PaRSEC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessMode", "DataAccess", "Task"]

#: Data items are tiles addressed by (row, col) tile coordinates.
DataKey = tuple[int, int]


class AccessMode(enum.Enum):
    """Direction of a task's access to a data item."""

    READ = "R"
    WRITE = "W"
    RW = "RW"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.RW)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.RW)


@dataclass(frozen=True)
class DataAccess:
    """One declared access of a task to one tile."""

    key: DataKey
    mode: AccessMode


@dataclass(frozen=True)
class Task:
    """An instance of a parameterized task class.

    Attributes
    ----------
    klass:
        Task-class name, e.g. ``"POTRF"``.
    params:
        Class parameters, e.g. ``(k,)`` for POTRF or ``(m, n, k)`` for
        GEMM — together with ``klass`` they uniquely identify the task.
    accesses:
        Declared tile accesses; order is meaningful only for display.
    priority:
        Larger runs earlier under the priority scheduler.
    flops:
        Estimated floating-point work (cost-model input); 0 if unknown.
    """

    klass: str
    params: tuple[int, ...]
    accesses: tuple[DataAccess, ...]
    priority: float = 0.0
    flops: float = 0.0

    @property
    def uid(self) -> tuple[str, tuple[int, ...]]:
        """Unique identifier within a graph."""
        return (self.klass, self.params)

    @property
    def reads(self) -> tuple[DataKey, ...]:
        return tuple(a.key for a in self.accesses if a.mode.reads)

    @property
    def writes(self) -> tuple[DataKey, ...]:
        return tuple(a.key for a in self.accesses if a.mode.writes)

    def __str__(self) -> str:
        args = ", ".join(map(str, self.params))
        return f"{self.klass}({args})"


def make_task(
    klass: str,
    params: tuple[int, ...],
    reads: list[DataKey] = (),
    rw: list[DataKey] = (),
    writes: list[DataKey] = (),
    priority: float = 0.0,
    flops: float = 0.0,
) -> Task:
    """Convenience constructor assembling the access tuple."""
    accesses = tuple(
        [DataAccess(k, AccessMode.READ) for k in reads]
        + [DataAccess(k, AccessMode.RW) for k in rw]
        + [DataAccess(k, AccessMode.WRITE) for k in writes]
    )
    return Task(klass, tuple(params), accesses, priority, flops)
