"""Execution tracing: per-task events and per-kernel aggregation.

Mirrors the PaRSEC instrumentation used in the paper's companion
analysis work (ProTools'19): start/stop timestamps, kernel class,
flops, and the process/worker that ran the task.  Traces export to
the Chrome trace-event JSON format (view in ``chrome://tracing`` or
Perfetto), the modern equivalent of PaRSEC's .prof visualization.
"""

from __future__ import annotations

import json
import threading
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed task."""

    klass: str
    params: tuple[int, ...]
    start: float
    end: float
    flops: float = 0.0
    worker: int = 0
    #: OS process id of the executing worker; 0 = in-process engines.
    #: Process-pool runs set it so the Chrome export can give every
    #: worker process its own lane group.
    pid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """An append-only log of task executions.

    ``record`` is thread-safe: the parallel execution engine's workers
    and the serving subsystem's worker pool append concurrently to one
    trace.
    """

    events: list[TraceEvent] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def worker_lanes(self) -> dict[int, int]:
        """Events per worker lane, keyed by worker id (sorted).

        One key per lane that executed at least one task — the rows a
        Chrome-trace render of this trace will show.
        """
        lanes: dict[int, int] = defaultdict(int)
        for e in self.events:
            lanes[e.worker] += 1
        return dict(sorted(lanes.items()))

    @property
    def makespan(self) -> float:
        """Span from the first task start to the last task end."""
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def time_by_class(self) -> dict[str, float]:
        """Total busy time per task class."""
        agg: dict[str, float] = defaultdict(float)
        for e in self.events:
            agg[e.klass] += e.duration
        return dict(agg)

    def count_by_class(self) -> dict[str, int]:
        agg: dict[str, int] = defaultdict(int)
        for e in self.events:
            agg[e.klass] += 1
        return dict(agg)

    def total_flops(self) -> float:
        return sum(e.flops for e in self.events)

    def busy_time(self) -> float:
        return sum(e.duration for e in self.events)

    def to_chrome_trace(
        self,
        process_name: str | None = None,
        thread_names: dict[int, str] | None = None,
        label_worker_lanes: bool = False,
    ) -> str:
        """Serialize as Chrome trace-event JSON (complete events).

        Workers map to thread ids; durations are microseconds, as the
        format requires.  ``process_name`` and ``thread_names`` (worker
        id -> label) emit metadata events so consumers other than the
        factorization engine — e.g. the serving subsystem's dispatcher
        and solver workers — appear with readable lane names in
        ``chrome://tracing`` / Perfetto.  ``label_worker_lanes=True``
        derives default ``worker-N`` labels for every lane present in
        the trace (parallel-engine runs), without having to know the
        worker count up front.
        """
        if label_worker_lanes:
            derived = {w: f"worker-{w}" for w in self.worker_lanes()}
            derived.update(thread_names or {})
            thread_names = derived
        # Lane topology: in-process engines leave every event at pid 0
        # (one process row, workers as threads); the process-pool engine
        # stamps each event with the worker's OS pid, so each worker
        # process gets its own row group in chrome://tracing.
        lanes = sorted({(e.pid, e.worker) for e in self.events})
        pids = sorted({pid for pid, _ in lanes}) or [0]
        meta: list[dict] = []
        for pid in pids:
            if pid == 0:
                if process_name is not None:
                    label = process_name
                else:
                    continue
            else:
                base = f" ({process_name})" if process_name is not None else ""
                label = f"worker pid {pid}{base}"
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": label},
                }
            )
        for tid, label in (thread_names or {}).items():
            # pid 0 keeps the pre-mp behavior (labels may name lanes
            # that ran no tasks); nonzero pids label only lanes seen.
            targets = [p for p in pids if p != 0 and (p, tid) in lanes]
            if 0 in pids or not lanes:
                targets.insert(0, 0)
            for pid in targets:
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": label},
                    }
                )
        events = meta + [
            {
                "name": f"{e.klass}{e.params}",
                "cat": e.klass,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": e.pid,
                "tid": e.worker,
                "args": {"flops": e.flops},
            }
            for e in self.events
        ]
        return json.dumps({"traceEvents": events}, indent=None)

    def save_chrome_trace(self, path, **kwargs) -> None:
        """Write :meth:`to_chrome_trace` output to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_chrome_trace(**kwargs))
