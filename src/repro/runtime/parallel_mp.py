"""True-parallel process-pool execution of a task graph.

``ParallelExecutionEngine`` (threads) loses most of the hardware on
real numerics: the Python glue between BLAS calls — tile dispatch,
recompression bookkeeping, trace records — serializes on the GIL
(BENCH_parallel.json: 5.8x replayed vs 1.3x real at 8 workers).  This
module replaces threads with *processes*, the asynchronous-runtime
model of the fan-both Cholesky solvers: one-sided, message-driven task
execution with no global lock.

Architecture
------------

* **Tile arena** — all tile payloads live in
  :class:`~repro.linalg.arena.TileArena` shared-memory segments,
  created by the coordinator before forking.  Workers map the same
  physical pages; task messages carry ``(task index, expected operand
  checksums, dispatch epoch)`` — kernel id and tile keys, never tile
  payloads.
* **Workers** — forked processes inheriting the registered kernels and
  the task graph (closures need no pickling under ``fork``).  Each
  loops: pull a task from its *own* lane queue, run the kernel against
  arena-backed tile views (fault injection, retry with arena-byte
  rollback, and operand checksum verification all happen *in the
  worker*), and send a small retirement message back.
* **Coordinator** — keeps the exact CV-driven ready-pool discipline of
  the threaded engine: the scheduler policy orders the ready pool, and
  at most one task per idle worker is in flight, so priority order is
  respected.  On retirement it materializes the task's written tiles
  out of the arena into the caller's matrix (a private copy, immune to
  later in-place slot rewrites), records checksums, feeds the
  checkpoint manager, releases successors, and dispatches.
* **Supervisor** — per-lane task queues make the coordinator's view of
  worker state exact: it always knows which task each worker holds.
  :class:`~repro.runtime.supervisor.WorkerSupervisor` watches pid
  liveness and per-task hang budgets; a worker lost to a real
  ``SIGKILL`` (or wedged past the hang budget, which earns it one) is
  *recovered*, not fatal: its in-flight task is requeued, the task's
  write slots are rewound from the coordinator's private tiles (an
  in-place kernel may have torn them), and a replacement process is
  forked onto the existing arena segments.  The factor stays bitwise
  identical because replayed tasks see exactly the operands the dead
  worker saw.

Invariants preserved from the threaded engine:

* **bitwise-identical factors** at any worker count — arena copy-in /
  views / copy-out all preserve memory order (C vs Fortran), so every
  kernel sees byte- and layout-identical operands to the serial run;
* **per-task retry with tile-snapshot rollback** — worker-side, as
  byte snapshots of the slots a task writes (arena slots are rewritten
  in place, so reference snapshots would alias);
* **fault injection** — the plan is a pure function of
  ``(seed, rule, task, attempt)``, so worker-side decisions replay the
  serial sequence exactly; counters are merged back per retirement.
  Process-fate kinds additionally shift by the dispatch epoch, so a
  respawned replacement is not doomed to re-die on the same task;
* **checkpoint capture** and **ABFT checksum verification** — operand
  digests ride along with the task message; a corrupt operand fails
  the task in the worker, and the coordinator heals the arena from the
  checkpoint's last-known-good tile and re-dispatches;
* a worker hard-crash (``os._exit(137)`` fault kind) still takes the
  coordinator down with the same exit code — SIGKILL semantics — after
  unlinking the shared segments, so recovery flows through the
  checkpoint/restart layer just like the in-process engines.  Only
  *real* signal deaths (negative exit codes) and hangs are supervised.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import deque
from multiprocessing import connection as mp_connection

from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.dag import TaskGraph
from repro.runtime.engine import ExecutionEngine, _NO_RETRY
from repro.runtime.faults import (
    FaultInjector,
    RetryPolicy,
    TaskFailedError,
    TileCorruptionError,
    restore_writes,
    snapshot_writes,
)
from repro.runtime.parallel import scaled_stall_timeout
from repro.runtime.scheduler import Scheduler
from repro.runtime.supervisor import WorkerSupervisor
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["MultiprocessExecutionEngine", "WorkerCrashError"]

#: coordinator poll granularity while waiting on retirements
_POLL_SECONDS = 0.05

#: heal-and-redispatch budget per task (checksum-verified runs)
_MAX_HEALS_PER_TASK = 2


class WorkerCrashError(RuntimeError):
    """A worker process died and supervision could not (or may not)
    recover it — respawn budget exhausted or supervision disabled."""


def _picklable(exc: BaseException) -> BaseException:
    """``exc`` if it round-trips through pickle, else a summary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


class MultiprocessExecutionEngine(ExecutionEngine):
    """Executes a task graph with ``workers`` forked processes.

    Requires the ``fork`` start method (POSIX): kernels are inherited,
    not pickled, and the tile arena's handles ride through the fork.
    Construction raises :class:`RuntimeError` elsewhere — callers can
    fall back to the threaded engine.

    Data stores with tile accessors (``tile``/``set_tile``/iteration —
    :class:`~repro.linalg.tile_matrix.TLRMatrix` and friends) are
    shared through the arena and written back tile-by-tile as tasks
    retire.  Stores without them (e.g. ``None`` for replay benchmarks)
    are simply inherited by each worker: kernels run true-parallel but
    worker-side writes to such a store stay process-local.

    Parameters mirror :class:`~repro.runtime.parallel.
    ParallelExecutionEngine`, plus:

    spill_factor:
        Scales the arena's over-cap spill region (default
        ``$REPRO_ARENA_SPILL`` or 1.5x the all-dense payload size).
    supervise:
        Recover from real worker deaths (``SIGKILL``, OOM kills) and
        hangs by requeueing the lost task, rewinding its write slots,
        and re-forking a replacement onto the existing arena.  Injected
        hard crashes (exit 137) are still mirrored — that is the
        checkpoint/restart contract.  ``False`` restores the fail-fast
        behavior (:class:`WorkerCrashError` on any silent death).
    max_respawns:
        Total replacement workers per run (default ``2 * workers + 2``)
        — a crash loop surfaces instead of respawning forever.
    hang_timeout:
        Seconds one task may hold a worker before the supervisor
        declares it hung and SIGKILLs it into the recovery path.
        Default: 80% of the (cost-model-scaled) stall timeout when one
        is configured, else disabled.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        workers: int = 2,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        stall_timeout: float | None = None,
        verify_tiles: bool | None = None,
        spill_factor: float | None = None,
        supervise: bool = True,
        max_respawns: int | None = None,
        hang_timeout: float | None = None,
    ) -> None:
        super().__init__(
            scheduler,
            fault_injector=fault_injector,
            retry=retry,
            verify_tiles=verify_tiles,
        )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if stall_timeout is not None and stall_timeout <= 0.0:
            raise ValueError(
                f"stall_timeout must be positive or None, got {stall_timeout}"
            )
        if max_respawns is not None and max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0 or None, got {max_respawns}"
            )
        if hang_timeout is not None and hang_timeout <= 0.0:
            raise ValueError(
                f"hang_timeout must be positive or None, got {hang_timeout}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "MultiprocessExecutionEngine needs the 'fork' start method "
                "(POSIX); use the threaded ParallelExecutionEngine here"
            )
        self.workers = int(workers)
        self.stall_timeout = stall_timeout
        self.spill_factor = spill_factor
        self.supervise = bool(supervise)
        self.max_respawns = max_respawns
        self.hang_timeout = hang_timeout
        #: lane -> OS pid of the worker that ran it (filled per run,
        #: updated when a lane is respawned)
        self.worker_pids: dict[int, int] = {}
        #: supervision counters of the most recent run (respawns,
        #: hung_killed, tasks_requeued, tiles_restored, stale_results)
        self.last_run_supervision: dict[str, int] = {}

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _verify_reads_worker(
        self,
        task: Task,
        store,
        expected: dict,
        read_only: bool = False,
        skip: set | None = None,
    ) -> None:
        """Operand checksum verification against coordinator digests.

        ``read_only`` restricts the sweep to pure-read tiles — the
        post-kernel re-check must skip read-write slots, which
        legitimately hold the kernel's new bytes.  ``skip`` drops
        specific keys (the task's own injected at-rest flips).
        """
        from repro.linalg.integrity import tile_checksum

        keys = set(task.reads)
        if read_only:
            keys -= set(task.writes)
        if skip:
            keys -= skip
        for key in sorted(keys):
            want = expected.get(key)
            if want is None:
                continue
            if tile_checksum(store.tile(*key)) != want:
                raise TileCorruptionError(
                    f"{task}: operand tile {key} failed checksum "
                    "verification in worker — silent data corruption "
                    "detected before the kernel consumed it"
                )

    def _dispatch_worker(
        self, task: Task, kernel, store, arena, expected: dict | None
    ) -> int:
        """Worker-side analogue of :meth:`ExecutionEngine._dispatch`.

        Differs in two ways: rollback snapshots are *byte* snapshots of
        the arena slots the task writes (slots are rewritten in place,
        so tile references would alias the very bytes a retry must
        restore), and operand verification compares against the digests
        the coordinator attached to the task message (healing is the
        coordinator's job, on re-dispatch).
        """
        injector = self.fault_injector
        verify = expected is not None
        if injector is None and self.retry is None and not verify:
            kernel(task, store)
            return 0
        retry = self.retry if self.retry is not None else _NO_RETRY
        rollback = retry.max_retries > 0
        attempt = 0
        while True:
            if rollback:
                snapshot = (
                    arena.snapshot(task.writes)
                    if arena is not None
                    else snapshot_writes(task, store)
                )
            else:
                snapshot = None
            try:
                if verify:
                    self._verify_reads_worker(task, store, expected)
                if injector is not None:
                    injector.invoke(kernel, task, store, attempt)
                else:
                    kernel(task, store)
                if verify:
                    # Arena slots are rewritten in place, so an at-rest
                    # flip landing *during* the kernel mutates bytes a
                    # view-holding kernel may already have consumed —
                    # unlike the in-process engines, where concurrent
                    # readers keep the old tile object.  Re-verifying
                    # after the kernel closes that window: any flip
                    # that could have reached the kernel's reads
                    # happened before this check and fails the task,
                    # so retirement certifies clean operands end to
                    # end.  Skipped: read-write slots (they hold the
                    # kernel's new bytes by design) and the task's own
                    # injected flips (applied after the kernel
                    # returned — the outputs are valid, and a later
                    # reader's pre-check is the intended detector;
                    # re-failing here would re-inject on every
                    # redispatch and starve the heal budget).
                    own_flips = (
                        set(injector.flipped_reads) if injector else None
                    )
                    self._verify_reads_worker(
                        task, store, expected, read_only=True, skip=own_flips
                    )
                return attempt
            except retry.retry_on as exc:
                if snapshot is not None:
                    if arena is not None:
                        arena.restore(snapshot)
                    else:
                        restore_writes(task, store, snapshot)
                if attempt >= retry.max_retries:
                    raise TaskFailedError(task, attempt + 1, exc) from exc
                pause = retry.delay(attempt)
                if pause > 0.0:
                    time.sleep(pause)
                attempt += 1

    def _worker_main(self, lane, graph, data, arena, task_q, result_conn) -> None:
        """Worker process body: serve tasks until the ``None`` sentinel.

        Results travel on a per-lane pipe whose write end only this
        process holds.  A shared ``mp.Queue`` would do, except its
        feeder thread takes a cross-process write lock around every
        put — a SIGKILL landing inside that window (exactly what the
        worker_kill fault injects) leaves the lock held forever and
        deadlocks every surviving worker's results.  A single-writer
        pipe has no lock to orphan.
        """
        store = arena if arena is not None else data
        injector = self.fault_injector
        if injector is not None:
            # Arms the whole-worker fault kinds (worker_kill /
            # worker_hang): only a forked worker may act on them.
            injector.in_worker = True
        while True:
            msg = task_q.get()
            if msg is None:
                return
            idx, expected, epoch = msg
            task = graph.tasks[idx]
            kernel = self._kernels[task.klass]
            if injector is not None:
                injector.epoch = epoch
            counter_base = dict(injector.counters) if injector else None
            report_base = [set(r) for r in self._reports]
            start = time.perf_counter()
            try:
                attempts = self._dispatch_worker(
                    task, kernel, store, arena, expected
                )
            except BaseException as exc:
                try:
                    result_conn.send(
                        (lane, idx, epoch, None, _picklable(exc), None, None,
                         0.0, 0.0)
                    )
                except (BrokenPipeError, OSError):  # coordinator is gone
                    return
                continue
            end = time.perf_counter()
            counters = None
            if injector is not None:
                counters = {
                    key: count - counter_base.get(key, 0)
                    for key, count in injector.counters.items()
                    if count != counter_base.get(key, 0)
                }
            reports = [
                {key: r[key] for key in r.keys() - base} or None
                for r, base in zip(self._reports, report_base)
            ]
            try:
                result_conn.send(
                    (lane, idx, epoch, attempts, None, counters, reports,
                     start, end)
                )
            except (BrokenPipeError, OSError):  # coordinator is gone
                return

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    def _expected_for(self, task: Task, ledger) -> dict | None:
        if ledger is None:
            return None
        expected = {}
        for key in set(task.reads):
            digest = ledger.expected(key)
            if digest is not None:
                expected[key] = digest
        return expected

    def _retire_writes(self, task: Task, arena, data, ledger) -> None:
        """Materialize a retired task's outputs out of the arena.

        The copies are private heap tiles: later in-place rewrites of
        the arena slots cannot touch them, so they are safe references
        for the checkpoint manager, the ledger, and the final factor.
        """
        if arena is None:
            return
        for key in set(task.writes):
            tile = arena.materialize(*key)
            data.set_tile(*key, tile)
            if ledger is not None:
                ledger.record(key, tile)

    def _heal_operands(
        self, task: Task, arena, data, ledger, checkpoint
    ) -> int:
        """Restore corrupt operand slots from last-known-good tiles.

        Returns the number of tiles healed; 0 means the corruption is
        unhealable and the failure must surface.
        """
        if arena is None or ledger is None or checkpoint is None:
            return 0
        healed = 0
        for key in sorted(set(task.reads)):
            if ledger.matches(key, arena.tile(*key)):
                continue
            if not checkpoint.heal(data, key):
                return 0
            good = data.tile(*key)
            if not ledger.matches(key, good):
                return 0
            arena.set_tile(*key, good)
            healed += 1
        return healed

    def _rewind_writes(self, task: Task, arena, data, supervisor) -> None:
        """Restore the pre-task bytes of a lost task's write slots.

        ``data`` always holds the last *retired* value of every tile
        (retirement materializes arena -> data, and the DAG's WAW/RAW
        edges guarantee the previous writer retired before this task
        dispatched), so republishing ``data``'s tiles rewinds any
        partial in-place write the dead worker left in the arena.
        Read-only operands need no rewind: kernels never mutate them.
        """
        if arena is None:
            return
        for key in sorted(set(task.writes)):
            arena.set_tile(*key, data.tile(*key))
            supervisor.tiles_restored += 1

    def run(
        self,
        graph: TaskGraph,
        data: object,
        trace: Trace | None = None,
        checkpoint: CheckpointManager | None = None,
    ) -> Trace:
        """Execute every task across the worker processes.

        Same contract as the threaded engine: fail-fast on the first
        kernel exception, ``KeyError`` for unregistered task classes,
        diagnostic ``ValueError`` on stalls, checkpoint frontiers
        skipped and flushed on cadence.  A worker killed by a real
        signal (or hung past ``hang_timeout``) is supervised back to
        health — task requeued, torn tiles rewound, replacement forked
        — up to ``max_respawns`` times, after which (or with
        ``supervise=False``) :class:`WorkerCrashError` surfaces.  Exit
        code 137 (the injected hard crash) is still mirrored.
        """
        if trace is None:
            trace = Trace()
        self.last_run_retries = 0
        self.last_run_resumed = 0
        self.last_run_supervision = {}
        self.worker_pids = {}
        n = len(graph)
        if n == 0:
            return trace
        missing = {t.klass for t in graph.tasks} - set(self._kernels)
        if missing:
            raise KeyError(
                f"no kernel registered for task class(es) {sorted(missing)}"
            )

        indegree = [graph.in_degree(i) for i in range(n)]
        skipped = self._frontier(graph, data, indegree, checkpoint)
        target = n - len(skipped)
        ledger, verify = self._setup_integrity(data, checkpoint)
        if target == 0:
            if verify and ledger is not None:
                self._final_verify(data, ledger, checkpoint)
            return trace

        from repro.linalg.arena import TileArena

        arena_mode = (
            hasattr(data, "tile")
            and hasattr(data, "set_tile")
            and hasattr(data, "__iter__")
        )
        arena = (
            TileArena.from_store(data, spill_factor=self.spill_factor)
            if arena_mode
            else None
        )

        stall_timeout = scaled_stall_timeout(self.stall_timeout, graph)
        hang_timeout = self.hang_timeout
        if hang_timeout is None and self.supervise and stall_timeout is not None:
            # Fire before the run-level stall watchdog would: a single
            # wedged worker should be recovered, not abort the run.
            hang_timeout = 0.8 * stall_timeout

        ctx = multiprocessing.get_context("fork")
        num_workers = min(self.workers, target)
        budget = (
            self.max_respawns
            if self.max_respawns is not None
            else 2 * num_workers + 2
        ) if self.supervise else 0
        supervisor = WorkerSupervisor(
            max_respawns=budget, hang_timeout=hang_timeout
        )
        lane_queues: dict[int, object] = {}
        #: lane -> read end of that lane's single-writer result pipe
        result_conns: dict[int, object] = {}
        procs: dict[int, object] = {}

        def spawn(lane: int) -> None:
            # A fresh lane queue per (re)spawn: a task message the dead
            # worker never pulled must not reach its replacement — the
            # coordinator requeues it explicitly, exactly once.  The
            # result pipe is fresh too; its write end lives only in the
            # new child (the parent drops its copy right after the
            # fork), so worker death reads as EOF, never a stuck lock.
            q = ctx.SimpleQueue()
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            p = ctx.Process(
                target=self._worker_main,
                args=(lane, graph, data, arena, q, send_conn),
                name=f"tlr-mp-worker-{lane}",
                daemon=True,
            )
            lane_queues[lane] = q
            procs[lane] = p
            p.start()
            send_conn.close()
            result_conns[lane] = recv_conn
            self.worker_pids[lane] = p.pid
            supervisor.attach(lane, p)

        for lane in range(num_workers):
            spawn(lane)

        scheduler = self.scheduler
        for i in range(n):
            if indegree[i] == 0 and graph.tasks[i].uid not in skipped:
                scheduler.push(i, graph.tasks[i])

        completed = 0
        retries = 0
        outstanding: dict[int, Task] = {}
        #: lane -> task index currently dispatched to it
        lane_task: dict[int, int] = {}
        #: task index -> dispatch epoch (bumped per supervised requeue;
        #: a stale retirement from a killed worker carries the old
        #: epoch and is dropped instead of double-retiring the task)
        task_epoch: dict[int, int] = {}
        idle: set[int] = set(range(num_workers))
        #: results received but not yet processed (drained per wait())
        inbox: deque = deque()
        heals: dict[int, int] = {}
        failure: BaseException | None = None
        mirror_hard_crash = False
        t0 = time.perf_counter()
        last_progress = time.monotonic()

        def dispatch() -> None:
            nonlocal last_progress
            while scheduler and idle:
                i = scheduler.pop()
                lane = min(idle)
                idle.remove(lane)
                task = graph.tasks[i]
                outstanding[i] = task
                lane_task[lane] = i
                supervisor.task_dispatched(lane, i)
                lane_queues[lane].put(
                    (
                        i,
                        self._expected_for(task, ledger) if verify else None,
                        task_epoch.get(i, 0),
                    )
                )
                last_progress = time.monotonic()

        def recover(f) -> None:
            """Supervised recovery of one dead/hung lane."""
            nonlocal last_progress
            dead_conn = result_conns.pop(f.lane, None)
            if dead_conn is not None:
                # Complete frames the dying worker raced out still sit
                # in the pipe buffer; pull them through the normal
                # stale-result path (the epoch bump below drops them)
                # rather than losing their accounting.
                try:
                    while dead_conn.poll(0):
                        inbox.append(dead_conn.recv())
                except (EOFError, OSError):
                    pass  # torn trailing frame from mid-send death
                dead_conn.close()
            idx = lane_task.pop(f.lane, None)
            idle.discard(f.lane)
            if idx is not None:
                task = outstanding.pop(idx, None)
                if task is not None:
                    self._rewind_writes(task, arena, data, supervisor)
                    task_epoch[idx] = task_epoch.get(idx, 0) + 1
                    scheduler.push(idx, task)
                    supervisor.tasks_requeued += 1
            if arena is not None:
                # The dead worker may have held the spill-allocator
                # lock (a microseconds-wide window, but a SIGKILL can
                # land anywhere); break it rather than deadlock every
                # surviving worker's next spill allocation.
                arena.break_lock()
            old = procs[f.lane]
            old.join(timeout=1.0)
            spawn(f.lane)
            supervisor.record_respawn(f.lane)
            idle.add(f.lane)
            last_progress = time.monotonic()

        try:
            dispatch()
            while completed < target and failure is None:
                if not outstanding:
                    if scheduler:
                        dispatch()
                        continue
                    failure = ValueError(
                        f"execution stalled with {target - completed} of "
                        f"{target} tasks blocked (cycle or unsatisfiable "
                        f"dependencies)"
                    )
                    break
                if not inbox:
                    lanes = {conn: ln for ln, conn in result_conns.items()}
                    ready = mp_connection.wait(
                        list(lanes), timeout=_POLL_SECONDS
                    )
                    for conn in ready:
                        try:
                            inbox.append(conn.recv())
                            while conn.poll(0):
                                inbox.append(conn.recv())
                        except (EOFError, OSError):
                            # The writer died.  Stop waiting on this
                            # pipe — an EOF conn is permanently
                            # "ready" and would starve the supervisor
                            # poll below; supervisor.poll() recovers
                            # the lane and spawn() replaces the pipe.
                            result_conns.pop(lanes[conn], None)
                            conn.close()
                if not inbox:
                    failures = supervisor.poll()
                    for f in failures:
                        if f.injected_hard_crash:
                            mirror_hard_crash = True
                            return trace  # finally-block handles teardown
                        if not supervisor.can_respawn():
                            detail = (
                                "hung past the "
                                f"{hang_timeout:.3g}s hang budget"
                                if f.hung
                                else f"died (exit {f.exitcode})"
                            )
                            failure = WorkerCrashError(
                                f"worker lane {f.lane} (pid {f.pid}) {detail}"
                                + (
                                    f"; respawn budget "
                                    f"({supervisor.max_respawns}) exhausted"
                                    if self.supervise
                                    else "; supervision disabled"
                                )
                                + (
                                    "; in flight: "
                                    + ", ".join(map(str, outstanding.values()))
                                    if outstanding
                                    else ""
                                )
                            )
                            break
                        recover(f)
                    if failure is not None:
                        break
                    if failures:
                        dispatch()
                        continue
                    if (
                        stall_timeout is not None
                        and time.monotonic() - last_progress >= stall_timeout
                    ):
                        failure = ValueError(
                            f"execution stalled: no task dispatched or "
                            f"retired in {time.monotonic() - last_progress:.3g}s "
                            f"(stall_timeout={stall_timeout:.3g}s) with "
                            f"{target - completed} of {target} tasks "
                            f"outstanding; in flight: "
                            + ", ".join(map(str, outstanding.values()))
                        )
                        break
                    continue

                msg = inbox.popleft()
                lane, idx, epoch, attempts, exc, counters, reports, start, end = msg
                if (
                    idx not in outstanding
                    or epoch != task_epoch.get(idx, 0)
                    or lane_task.get(lane) != idx
                ):
                    # Stale retirement: a worker we already declared
                    # dead/hung (and whose task we requeued) raced its
                    # own result out before the SIGKILL landed.  The
                    # replay owns the task now — dropping the stale
                    # message is what keeps exactly-once retirement.
                    supervisor.stale_results += 1
                    continue
                task = outstanding.pop(idx)
                lane_task.pop(lane, None)
                idle.add(lane)
                supervisor.task_retired(lane)
                last_progress = time.monotonic()

                if exc is not None:
                    if (
                        isinstance(exc, TaskFailedError)
                        and isinstance(exc.cause, TileCorruptionError)
                        and heals.get(idx, 0) < _MAX_HEALS_PER_TASK
                        and self._heal_operands(
                            task, arena, data, ledger, checkpoint
                        )
                    ):
                        heals[idx] = heals.get(idx, 0) + 1
                        retries += exc.attempts
                        scheduler.push(idx, task)
                        dispatch()
                        continue
                    failure = exc
                    break

                retries += attempts
                completed += 1
                if counters:
                    injector = self.fault_injector
                    with injector._lock:
                        for key, delta in counters.items():
                            injector.counters[key] += delta
                if reports:
                    for report, delta in zip(self._reports, reports):
                        if delta:
                            report.update(delta)
                self._retire_writes(task, arena, data, ledger)
                trace.record(
                    TraceEvent(
                        task.klass,
                        task.params,
                        start - t0,
                        end - t0,
                        flops=task.flops,
                        worker=lane,
                        pid=self.worker_pids.get(lane, 0),
                    )
                )
                if checkpoint is not None and checkpoint.task_retired(task, data):
                    checkpoint.flush(data)
                for j in graph.successors.get(idx, ()):
                    indegree[j] -= 1
                    if indegree[j] == 0:
                        scheduler.push(j, graph.tasks[j])
                dispatch()
        finally:
            for q in lane_queues.values():
                q.put(None)
            deadline = time.monotonic() + 5.0
            for p in procs.values():
                p.join(timeout=max(0.1, deadline - time.monotonic()))
            for p in procs.values():
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            supervisor.detach_all()
            for q in lane_queues.values():
                q.close()
            for conn in result_conns.values():
                conn.close()
            if arena is not None:
                # Written tiles were already copied out per retirement;
                # the segments hold nothing the caller still needs.
                arena.close()
                arena.unlink()
            if mirror_hard_crash:
                # A worker took the injected SIGKILL; mirror its exit
                # code so the process-level crash semantics (and the
                # checkpoint/restart recovery story) match the
                # in-process engines.  Segments were just unlinked.
                os._exit(137)

        self.last_run_retries = retries
        self.last_run_supervision = supervisor.report()
        if failure is not None:
            while scheduler:
                scheduler.pop()
            raise failure
        if completed != target:  # pragma: no cover - defensive
            raise ValueError(
                f"executed {completed} of {target} tasks; "
                "graph has unsatisfiable dependencies"
            )
        if verify and ledger is not None:
            self._final_verify(data, ledger, checkpoint)
        return trace
