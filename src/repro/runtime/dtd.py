"""Dynamic Task Discovery — the task-insertion DSL (Section IV-A).

PaRSEC exposes two front-ends: the Parameterized Task Graph used
throughout the paper, and Dynamic Task Discovery (Hoque et al.,
ScalA'17), a StarPU-style sequential ``insert_task`` API where the DAG
is discovered from the insertion order.  This module provides the DTD
front-end over the same engine: users insert tasks with data access
modes, and the builder derives exactly the same dependence structure
as the PTG path — the paper's observation that DTD "may suffer from
the sequential discovery of tasks" shows up as graph-construction
cost, not as a different DAG.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.runtime.dag import TaskGraph, build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import DataAccess, AccessMode, Task
from repro.runtime.tracing import Trace

__all__ = ["TaskPool"]


class TaskPool:
    """Sequential task-insertion front-end (DTD).

    Example
    -------
    >>> pool = TaskPool()
    >>> _ = pool.insert_task("INIT", (0,), lambda t, d: d.append("init"),
    ...                      write=[(0, 0)])
    >>> _ = pool.insert_task("USE", (0,), lambda t, d: d.append("use"),
    ...                      read=[(0, 0)])
    >>> log = []
    >>> _ = pool.run(log)
    >>> log
    ['init', 'use']
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._kernels: dict[tuple[str, tuple[int, ...]], Callable] = {}
        self._class_kernels: dict[str, Callable] = {}
        self._graph: TaskGraph | None = None

    def insert_task(
        self,
        klass: str,
        params: tuple[int, ...],
        kernel: Callable[[Task, object], None],
        read: list[tuple[int, int]] = (),
        write: list[tuple[int, int]] = (),
        rw: list[tuple[int, int]] = (),
        priority: float = 0.0,
        flops: float = 0.0,
    ) -> Task:
        """Insert one task; dependencies follow from data accesses in
        insertion order (sequential discovery)."""
        if self._graph is not None:
            raise RuntimeError("pool already finalized; create a new TaskPool")
        accesses = tuple(
            [DataAccess(tuple(k), AccessMode.READ) for k in read]
            + [DataAccess(tuple(k), AccessMode.RW) for k in rw]
            + [DataAccess(tuple(k), AccessMode.WRITE) for k in write]
        )
        task = Task(klass, tuple(params), accesses, priority, flops)
        if task.uid in self._kernels:
            raise ValueError(f"task {task} already inserted")
        self._tasks.append(task)
        self._kernels[task.uid] = kernel
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def finalize(self) -> TaskGraph:
        """Freeze the pool and build the DAG (idempotent)."""
        if self._graph is None:
            self._graph = build_graph(self._tasks)
        return self._graph

    def run(
        self, data: object, scheduler: Scheduler | None = None
    ) -> Trace:
        """Build the DAG and execute every inserted task."""
        graph = self.finalize()
        engine = ExecutionEngine(scheduler) if scheduler else ExecutionEngine()

        def dispatch(task: Task, store: object) -> None:
            self._kernels[task.uid](task, store)

        for klass in {t.klass for t in self._tasks}:
            engine.register(klass, dispatch)
        return engine.run(graph, data)
