"""Multi-worker parallel execution of a task graph.

The paper's runtime (PaRSEC) extracts the concurrency of the tile
Cholesky DAG across worker threads; this module is the in-process
analogue.  ``ParallelExecutionEngine`` runs a
:class:`~repro.runtime.dag.TaskGraph` with N worker threads sharing a
condition-variable-protected ready pool:

* readiness is driven by indegree decrements under the pool lock, so a
  task enters the ready pool the moment its last predecessor retires;
* the pluggable :class:`~repro.runtime.scheduler.Scheduler` policies
  (FIFO / LIFO / priority) order the ready pool exactly as they order
  the serial engine's traversal — dispatch pops under the lock;
* the first kernel exception *fails fast*: queued tasks are abandoned,
  idle workers wake and exit, and the exception is re-raised in the
  calling thread once in-flight kernels retire;
* starvation is detected, not hung on: if every worker is idle, the
  ready pool is empty, and unfinished tasks remain, the run aborts
  with a diagnostic ``ValueError`` naming the stuck tasks.

Correctness leans on :func:`~repro.runtime.dag.build_graph`'s
RAW/WAR/WAW edges: two concurrently running tasks never touch the same
tile, so kernels need no per-tile locks.  ``debug=True`` *asserts*
that invariant at runtime with a per-tile ownership table instead of
trusting it silently.

The NumPy/SciPy tile kernels release the GIL inside BLAS/LAPACK, so
worker threads genuinely overlap on multicore hardware with no
pickling or shared-memory machinery.
"""

from __future__ import annotations

import os
import threading
import time

from repro.runtime.dag import TaskGraph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["ParallelExecutionEngine", "resolve_workers", "engine_for"]

#: Environment variable supplying the default worker count (used by the
#: CI smoke job to sweep the whole core suite through the parallel
#: engine without touching call sites).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable switching on the per-tile ownership assertion.
DEBUG_ENV = "REPRO_ENGINE_DEBUG"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value > $REPRO_WORKERS > 1.

    ``workers <= 0`` (explicit or from the environment) means "one per
    CPU core".
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = int(env)
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def debug_from_env() -> bool:
    """Whether $REPRO_ENGINE_DEBUG requests the ownership assertion."""
    return os.environ.get(DEBUG_ENV, "").strip() not in ("", "0")


def engine_for(
    workers: int | None, scheduler: Scheduler | None = None
) -> ExecutionEngine:
    """The cheapest engine that honours ``workers``.

    One worker gets the serial :class:`ExecutionEngine` (no locks, no
    threads); more get a :class:`ParallelExecutionEngine`.
    """
    n = resolve_workers(workers)
    if n <= 1:
        return ExecutionEngine(scheduler)
    return ParallelExecutionEngine(
        scheduler, workers=n, debug=debug_from_env()
    )


class _RunState:
    """Shared mutable state of one ``run`` call (lives under the lock)."""

    __slots__ = (
        "indegree",
        "completed",
        "running",
        "failure",
        "started",
        "owners",
    )

    def __init__(self, graph: TaskGraph) -> None:
        self.indegree = [graph.in_degree(i) for i in range(len(graph))]
        self.completed = 0
        #: tasks popped from the ready pool and not yet retired
        self.running = 0
        self.failure: BaseException | None = None
        #: task indices ever dispatched (diagnoses stuck tasks)
        self.started: set[int] = set()
        #: debug-mode tile ownership: key -> [writer_index | None, n_readers]
        self.owners: dict[tuple[int, int], list] = {}


class ParallelExecutionEngine(ExecutionEngine):
    """Executes a task graph with ``workers`` threads.

    Kernel registration and scheduler policy are inherited from
    :class:`ExecutionEngine`; only the traversal is replaced.  A run
    produces the same per-tile arithmetic as the serial engine — every
    write sequence to a tile is ordered by the graph's edges — so
    factors are bitwise-reproducible across worker counts.

    Parameters
    ----------
    scheduler:
        Ready-pool ordering policy (default: priority).
    workers:
        Worker thread count (>= 1).
    debug:
        Verify the no-concurrent-tile-access invariant on every
        dispatch/retire (cheap: two dict passes per task under the
        already-held lock).  A violation aborts the run with
        ``ValueError`` — it means the graph builder under-constrained
        the DAG, and the factorization cannot be trusted.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        workers: int = 2,
        debug: bool = False,
    ) -> None:
        super().__init__(scheduler)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.debug = bool(debug)

    # ------------------------------------------------------------------
    # debug-mode tile ownership
    # ------------------------------------------------------------------

    def _claim(self, state: _RunState, task: Task) -> None:
        """Register ``task``'s tile accesses; raise on any overlap."""
        for acc in task.accesses:
            slot = state.owners.setdefault(acc.key, [None, 0])
            writer, readers = slot
            if acc.mode.writes:
                if writer is not None or readers:
                    raise ValueError(
                        f"tile ownership violation: {task} writes tile "
                        f"{acc.key} while it is held by "
                        f"{'a writer' if writer is not None else f'{readers} reader(s)'}"
                        " — the task graph under-constrains the DAG"
                    )
                slot[0] = task
            else:
                if writer is not None:
                    raise ValueError(
                        f"tile ownership violation: {task} reads tile "
                        f"{acc.key} while {writer} is writing it — the "
                        "task graph under-constrains the DAG"
                    )
                slot[1] += 1

    def _release(self, state: _RunState, task: Task) -> None:
        for acc in task.accesses:
            slot = state.owners[acc.key]
            if acc.mode.writes:
                slot[0] = None
            else:
                slot[1] -= 1

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self, graph: TaskGraph, data: object, trace: Trace | None = None) -> Trace:
        """Execute every task; returns the (thread-safely filled) trace.

        Raises the first kernel exception (fail-fast), ``KeyError`` for
        an unregistered task class, and ``ValueError`` when the graph
        stalls (cycle / unsatisfiable dependencies) or — in debug mode
        — when two concurrent tasks touch one tile.
        """
        if trace is None:
            trace = Trace()
        n = len(graph)
        if n == 0:
            return trace
        # Fail before spawning threads, like the serial engine does on
        # its first pop.
        missing = {t.klass for t in graph.tasks} - set(self._kernels)
        if missing:
            raise KeyError(
                f"no kernel registered for task class(es) {sorted(missing)}"
            )

        state = _RunState(graph)
        cond = threading.Condition()
        scheduler = self.scheduler
        for i in range(n):
            if state.indegree[i] == 0:
                scheduler.push(i, graph.tasks[i])

        t0 = time.perf_counter()

        def worker(lane: int) -> None:
            while True:
                with cond:
                    while True:
                        if state.failure is not None or state.completed == n:
                            return
                        if scheduler:
                            i = scheduler.pop()
                            state.running += 1
                            state.started.add(i)
                            break
                        if state.running == 0:
                            # Nothing ready, nothing in flight, tasks
                            # remain: the graph can never finish.
                            stuck = [
                                str(graph.tasks[j])
                                for j in range(n)
                                if j not in state.started
                            ]
                            shown = ", ".join(stuck[:8])
                            if len(stuck) > 8:
                                shown += f", ... ({len(stuck) - 8} more)"
                            state.failure = ValueError(
                                f"execution stalled with {len(stuck)} of {n} "
                                f"tasks blocked (cycle or unsatisfiable "
                                f"dependencies): {shown}"
                            )
                            cond.notify_all()
                            return
                        cond.wait()
                    task = graph.tasks[i]
                    if self.debug:
                        try:
                            self._claim(state, task)
                        except ValueError as exc:
                            state.failure = exc
                            state.running -= 1
                            cond.notify_all()
                            return
                kernel = self._kernels[task.klass]
                start = time.perf_counter() - t0
                try:
                    kernel(task, data)
                except BaseException as exc:
                    with cond:
                        state.running -= 1
                        if state.failure is None:
                            state.failure = exc
                        cond.notify_all()
                    return
                end = time.perf_counter() - t0
                trace.record(
                    TraceEvent(
                        task.klass,
                        task.params,
                        start,
                        end,
                        flops=task.flops,
                        worker=lane,
                    )
                )
                with cond:
                    if self.debug:
                        self._release(state, task)
                    state.running -= 1
                    state.completed += 1
                    for j in graph.successors.get(i, ()):
                        state.indegree[j] -= 1
                        if state.indegree[j] == 0:
                            scheduler.push(j, graph.tasks[j])
                    cond.notify_all()

        threads = [
            threading.Thread(
                target=worker, args=(lane,), name=f"tlr-worker-{lane}"
            )
            for lane in range(min(self.workers, n))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if state.failure is not None:
            # Drain the ready pool so a reused scheduler starts clean.
            while scheduler:
                scheduler.pop()
            raise state.failure
        if state.completed != n:  # pragma: no cover - defensive
            raise ValueError(
                f"executed {state.completed} of {n} tasks; "
                "graph has unsatisfiable dependencies"
            )
        return trace
