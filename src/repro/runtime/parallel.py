"""Multi-worker parallel execution of a task graph.

The paper's runtime (PaRSEC) extracts the concurrency of the tile
Cholesky DAG across worker threads; this module is the in-process
analogue.  ``ParallelExecutionEngine`` runs a
:class:`~repro.runtime.dag.TaskGraph` with N worker threads sharing a
condition-variable-protected ready pool:

* readiness is driven by indegree decrements under the pool lock, so a
  task enters the ready pool the moment its last predecessor retires;
* the pluggable :class:`~repro.runtime.scheduler.Scheduler` policies
  (FIFO / LIFO / priority) order the ready pool exactly as they order
  the serial engine's traversal — dispatch pops under the lock;
* the first kernel exception *fails fast*: queued tasks are abandoned,
  idle workers wake and exit, and the exception is re-raised in the
  calling thread once in-flight kernels retire;
* starvation is detected, not hung on: if every worker is idle, the
  ready pool is empty, and unfinished tasks remain, the run aborts
  with a diagnostic ``ValueError`` naming the stuck tasks.

Correctness leans on :func:`~repro.runtime.dag.build_graph`'s
RAW/WAR/WAW edges: two concurrently running tasks never touch the same
tile, so kernels need no per-tile locks.  ``debug=True`` *asserts*
that invariant at runtime with a per-tile ownership table instead of
trusting it silently.

The NumPy/SciPy tile kernels release the GIL inside BLAS/LAPACK, so
worker threads genuinely overlap on multicore hardware with no
pickling or shared-memory machinery.
"""

from __future__ import annotations

import os
import threading
import time

from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.dag import TaskGraph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.faults import FaultInjector, RetryPolicy
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = [
    "ParallelExecutionEngine",
    "resolve_workers",
    "resolve_engine",
    "engine_for",
    "stall_timeout_from_env",
    "scaled_stall_timeout",
]

#: Environment variable supplying the default worker count (used by the
#: CI smoke job to sweep the whole core suite through the parallel
#: engine without touching call sites).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable switching on the per-tile ownership assertion.
DEBUG_ENV = "REPRO_ENGINE_DEBUG"

#: Environment variable supplying the default stall-watchdog timeout in
#: seconds (unset / empty / 0 disables the watchdog).
STALL_TIMEOUT_ENV = "REPRO_STALL_TIMEOUT"

#: Environment variable selecting the execution backend ("threads",
#: "mp", or "serial"); the CI mp smoke job sweeps the core suite with
#: REPRO_ENGINE=mp without touching call sites.
ENGINE_ENV = "REPRO_ENGINE"

#: Accepted backend names (with aliases) -> canonical form.
_ENGINE_ALIASES = {
    "threads": "threads",
    "thread": "threads",
    "threaded": "threads",
    "mp": "mp",
    "process": "mp",
    "processes": "mp",
    "multiprocess": "mp",
    "serial": "serial",
}


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value > $REPRO_WORKERS > 1.

    ``workers <= 0`` (explicit or from the environment) means "one per
    CPU core".
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = int(env)
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def debug_from_env() -> bool:
    """Whether $REPRO_ENGINE_DEBUG requests the ownership assertion."""
    return os.environ.get(DEBUG_ENV, "").strip() not in ("", "0")


def stall_timeout_from_env() -> float | None:
    """The stall-watchdog timeout requested by $REPRO_STALL_TIMEOUT.

    Returns ``None`` (watchdog disabled) when unset, empty, or
    non-positive.
    """
    env = os.environ.get(STALL_TIMEOUT_ENV, "").strip()
    if not env:
        return None
    timeout = float(env)
    return timeout if timeout > 0.0 else None


#: Safety multiplier applied to the cost model's longest-kernel
#: estimate when scaling the stall timeout.  Generous on purpose: the
#: model is a compute-bound floor calibrated for Shaheen-II cores, and
#: CI machines are slower and noisier.
_STALL_SAFETY = 25.0


def scaled_stall_timeout(base: float | None, graph) -> float | None:
    """Scale a stall timeout by the predicted longest kernel in ``graph``.

    A fixed ``$REPRO_STALL_TIMEOUT`` tuned on small tiles false-fires
    on large-tile POTRF/GEMM tasks that are still making progress —
    the watchdog only sees "no retirement in T seconds", and a single
    8192-tile POTRF legitimately takes that long.  The fix: never let
    the effective timeout drop below ``_STALL_SAFETY`` times the cost
    model's estimate for the most expensive single task in the graph.

    ``base is None`` (watchdog disabled) stays ``None``; the scaled
    value is never *smaller* than ``base``, so tightening is
    impossible — only false-positive relief.
    """
    if base is None:
        return None
    base = float(base)
    tasks = getattr(graph, "tasks", None)
    if not tasks:
        return base
    from repro.machine.costmodel import CostModel
    from repro.machine.models import SHAHEEN_II

    model = CostModel(SHAHEEN_II)
    longest = max(model.kernel_seconds(t.flops) for t in tasks)
    return max(base, _STALL_SAFETY * longest)


def resolve_engine(engine: str | None = None) -> str:
    """Resolve a backend name: explicit value > $REPRO_ENGINE > threads.

    Returns one of ``"threads"``, ``"mp"``, ``"serial"`` (aliases like
    ``"process"`` normalize); raises ``ValueError`` on anything else.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip() or "threads"
    canonical = _ENGINE_ALIASES.get(str(engine).strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown execution backend {engine!r}; expected one of "
            f"{sorted(set(_ENGINE_ALIASES.values()))} "
            f"(aliases: {sorted(_ENGINE_ALIASES)})"
        )
    return canonical


def engine_for(
    workers: int | None,
    scheduler: Scheduler | None = None,
    fault_injector: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    verify_tiles: bool | None = None,
    engine: str | None = None,
) -> ExecutionEngine:
    """The cheapest engine that honours ``workers`` and ``engine``.

    One worker gets the serial :class:`ExecutionEngine` (no locks, no
    threads); more get a :class:`ParallelExecutionEngine` (GIL-bound
    Python glue, BLAS overlaps) or, with ``engine="mp"`` /
    ``$REPRO_ENGINE=mp``, the shared-memory
    :class:`~repro.runtime.parallel_mp.MultiprocessExecutionEngine`.
    ``engine="serial"`` forces the serial engine at any worker count.
    Fault injection, retry policy, and checksum verification are
    threaded into all of them.
    """
    n = resolve_workers(workers)
    backend = resolve_engine(engine)
    if n <= 1 or backend == "serial":
        return ExecutionEngine(
            scheduler,
            fault_injector=fault_injector,
            retry=retry,
            verify_tiles=verify_tiles,
        )
    if backend == "mp":
        # Imported lazily: parallel_mp pulls in multiprocessing and
        # the arena, neither of which the threaded path needs.
        from repro.runtime.parallel_mp import MultiprocessExecutionEngine

        return MultiprocessExecutionEngine(
            scheduler,
            workers=n,
            fault_injector=fault_injector,
            retry=retry,
            stall_timeout=stall_timeout_from_env(),
            verify_tiles=verify_tiles,
        )
    return ParallelExecutionEngine(
        scheduler,
        workers=n,
        debug=debug_from_env(),
        fault_injector=fault_injector,
        retry=retry,
        stall_timeout=stall_timeout_from_env(),
        verify_tiles=verify_tiles,
    )


class _RunState:
    """Shared mutable state of one ``run`` call (lives under the lock)."""

    __slots__ = (
        "indegree",
        "completed",
        "target",
        "skipped",
        "running",
        "failure",
        "started",
        "owners",
        "lanes",
        "last_progress",
        "retries",
    )

    def __init__(self, graph: TaskGraph) -> None:
        self.indegree = [graph.in_degree(i) for i in range(len(graph))]
        self.completed = 0
        #: tasks that must retire this run (graph size minus the
        #: checkpoint frontier)
        self.target = len(graph)
        #: task uids pre-retired by a resumed checkpoint frontier
        self.skipped: frozenset = frozenset()
        #: tasks popped from the ready pool and not yet retired
        self.running = 0
        self.failure: BaseException | None = None
        #: task indices ever dispatched (diagnoses stuck tasks)
        self.started: set[int] = set()
        #: debug-mode tile ownership: key -> [writer_index | None, n_readers]
        self.owners: dict[tuple[int, int], list] = {}
        #: per-worker lane state: lane -> str(task) in flight (None = idle)
        self.lanes: dict[int, str | None] = {}
        #: monotonic timestamp of the last dispatch/retire (watchdog input)
        self.last_progress = time.monotonic()
        #: retried attempts accumulated across all workers
        self.retries = 0


class ParallelExecutionEngine(ExecutionEngine):
    """Executes a task graph with ``workers`` threads.

    Kernel registration and scheduler policy are inherited from
    :class:`ExecutionEngine`; only the traversal is replaced.  A run
    produces the same per-tile arithmetic as the serial engine — every
    write sequence to a tile is ordered by the graph's edges — so
    factors are bitwise-reproducible across worker counts.

    Parameters
    ----------
    scheduler:
        Ready-pool ordering policy (default: priority).
    workers:
        Worker thread count (>= 1).
    debug:
        Verify the no-concurrent-tile-access invariant on every
        dispatch/retire (cheap: two dict passes per task under the
        already-held lock).  A violation aborts the run with
        ``ValueError`` — it means the graph builder under-constrained
        the DAG, and the factorization cannot be trusted.
    fault_injector / retry:
        Fault injection and transient-failure retry/rollback (see
        :class:`ExecutionEngine`).  Retry backoff sleeps happen in the
        worker thread, outside the pool lock.
    stall_timeout:
        Watchdog timeout in seconds (default: ``$REPRO_STALL_TIMEOUT``
        via :func:`engine_for`, else disabled).  If no task is
        dispatched or retired for this long while tasks remain, the
        run is aborted with a diagnostic ``ValueError`` reporting
        per-worker lane state — catching hung kernels that the logical
        starvation check (which needs every worker idle) cannot see.
        In-flight kernels cannot be interrupted; the error surfaces
        once they return.  Choose a timeout well above the slowest
        expected kernel (and above any retry backoff).
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        workers: int = 2,
        debug: bool = False,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        stall_timeout: float | None = None,
        verify_tiles: bool | None = None,
    ) -> None:
        super().__init__(
            scheduler,
            fault_injector=fault_injector,
            retry=retry,
            verify_tiles=verify_tiles,
        )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if stall_timeout is not None and stall_timeout <= 0.0:
            raise ValueError(
                f"stall_timeout must be positive or None, got {stall_timeout}"
            )
        self.workers = int(workers)
        self.debug = bool(debug)
        self.stall_timeout = stall_timeout

    # ------------------------------------------------------------------
    # debug-mode tile ownership
    # ------------------------------------------------------------------

    def _claim(self, state: _RunState, task: Task) -> None:
        """Register ``task``'s tile accesses; raise on any overlap."""
        for acc in task.accesses:
            slot = state.owners.setdefault(acc.key, [None, 0])
            writer, readers = slot
            if acc.mode.writes:
                if writer is not None or readers:
                    raise ValueError(
                        f"tile ownership violation: {task} writes tile "
                        f"{acc.key} while it is held by "
                        f"{'a writer' if writer is not None else f'{readers} reader(s)'}"
                        " — the task graph under-constrains the DAG"
                    )
                slot[0] = task
            else:
                if writer is not None:
                    raise ValueError(
                        f"tile ownership violation: {task} reads tile "
                        f"{acc.key} while {writer} is writing it — the "
                        "task graph under-constrains the DAG"
                    )
                slot[1] += 1

    def _release(self, state: _RunState, task: Task) -> None:
        for acc in task.accesses:
            slot = state.owners[acc.key]
            if acc.mode.writes:
                slot[0] = None
            else:
                slot[1] -= 1

    # ------------------------------------------------------------------
    # stall diagnostics
    # ------------------------------------------------------------------

    @staticmethod
    def _lane_report(state: _RunState) -> str:
        """Per-worker lane state for stall diagnostics."""
        if not state.lanes:
            return "no lanes dispatched yet"
        return "; ".join(
            f"lane {lane}: {'running ' + task if task else 'idle'}"
            for lane, task in sorted(state.lanes.items())
        )

    def _starvation_failure(
        self, state: _RunState, graph: TaskGraph, n: int
    ) -> ValueError:
        stuck = [
            str(graph.tasks[j])
            for j in range(n)
            if j not in state.started and graph.tasks[j].uid not in state.skipped
        ]
        shown = ", ".join(stuck[:8])
        if len(stuck) > 8:
            shown += f", ... ({len(stuck) - 8} more)"
        return ValueError(
            f"execution stalled with {len(stuck)} of {state.target} "
            f"tasks blocked (cycle or unsatisfiable "
            f"dependencies): {shown} [{self._lane_report(state)}]"
        )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        data: object,
        trace: Trace | None = None,
        checkpoint: CheckpointManager | None = None,
    ) -> Trace:
        """Execute every task; returns the (thread-safely filled) trace.

        Raises the first kernel exception (fail-fast), ``KeyError`` for
        an unregistered task class, and ``ValueError`` when the graph
        stalls (cycle / unsatisfiable dependencies) or — in debug mode
        — when two concurrent tasks touch one tile.  With
        ``checkpoint``, the manager's completed frontier is skipped and
        due checkpoints are flushed by whichever worker notices,
        outside the pool lock.
        """
        if trace is None:
            trace = Trace()
        self.last_run_retries = 0
        self.last_run_resumed = 0
        n = len(graph)
        if n == 0:
            return trace
        # Fail before spawning threads, like the serial engine does on
        # its first pop.
        missing = {t.klass for t in graph.tasks} - set(self._kernels)
        if missing:
            raise KeyError(
                f"no kernel registered for task class(es) {sorted(missing)}"
            )

        state = _RunState(graph)
        state.skipped = self._frontier(graph, data, state.indegree, checkpoint)
        state.target = n - len(state.skipped)
        ledger, verify = self._setup_integrity(data, checkpoint)
        if state.target == 0:
            if verify and ledger is not None:
                self._final_verify(data, ledger, checkpoint)
            return trace
        cond = threading.Condition()
        scheduler = self.scheduler
        for i in range(n):
            if state.indegree[i] == 0 and graph.tasks[i].uid not in state.skipped:
                scheduler.push(i, graph.tasks[i])

        t0 = time.perf_counter()

        def worker(lane: int) -> None:
            while True:
                with cond:
                    while True:
                        if (
                            state.failure is not None
                            or state.completed == state.target
                        ):
                            return
                        if scheduler:
                            i = scheduler.pop()
                            state.running += 1
                            state.started.add(i)
                            break
                        if state.running == 0:
                            # Nothing ready, nothing in flight, tasks
                            # remain: the graph can never finish.
                            state.failure = self._starvation_failure(
                                state, graph, n
                            )
                            cond.notify_all()
                            return
                        cond.wait()
                    task = graph.tasks[i]
                    state.lanes[lane] = str(task)
                    state.last_progress = time.monotonic()
                    if self.debug:
                        try:
                            self._claim(state, task)
                        except ValueError as exc:
                            state.failure = exc
                            state.running -= 1
                            state.lanes[lane] = None
                            cond.notify_all()
                            return
                kernel = self._kernels[task.klass]
                start = time.perf_counter() - t0
                try:
                    attempts = self._dispatch(
                        task,
                        kernel,
                        data,
                        ledger=ledger,
                        verify=verify,
                        checkpoint=checkpoint,
                    )
                except BaseException as exc:
                    with cond:
                        state.running -= 1
                        state.lanes[lane] = None
                        if state.failure is None:
                            state.failure = exc
                        cond.notify_all()
                    return
                end = time.perf_counter() - t0
                trace.record(
                    TraceEvent(
                        task.klass,
                        task.params,
                        start,
                        end,
                        flops=task.flops,
                        worker=lane,
                    )
                )
                # Capture the retirement in the checkpoint manager NOW,
                # before successors are published under the pool lock:
                # until then no other task can replace the tiles this
                # task wrote, so the captured references are exactly
                # its outputs.
                flush_due = checkpoint is not None and checkpoint.task_retired(
                    task, data
                )
                with cond:
                    if self.debug:
                        self._release(state, task)
                    state.running -= 1
                    state.completed += 1
                    state.retries += attempts
                    state.lanes[lane] = None
                    state.last_progress = time.monotonic()
                    for j in graph.successors.get(i, ()):
                        state.indegree[j] -= 1
                        if state.indegree[j] == 0:
                            scheduler.push(j, graph.tasks[j])
                    cond.notify_all()
                if flush_due:
                    # Single-writer inside flush(); concurrent callers
                    # return immediately and the due flag persists, so
                    # a skipped flush happens at the next retirement.
                    checkpoint.flush(data)

        stop_watchdog = threading.Event()

        def watchdog(timeout: float) -> None:
            poll = max(min(timeout / 5.0, 0.25), 0.005)
            while not stop_watchdog.wait(poll):
                with cond:
                    if (
                        state.failure is not None
                        or state.completed == state.target
                    ):
                        return
                    idle = time.monotonic() - state.last_progress
                    if idle >= timeout:
                        state.failure = ValueError(
                            f"execution stalled: no task dispatched or "
                            f"retired in {idle:.3g}s "
                            f"(stall_timeout={timeout:.3g}s) with "
                            f"{state.target - state.completed} of "
                            f"{state.target} tasks "
                            f"outstanding [{self._lane_report(state)}]"
                        )
                        cond.notify_all()
                        return

        threads = [
            threading.Thread(
                target=worker, args=(lane,), name=f"tlr-worker-{lane}"
            )
            for lane in range(min(self.workers, n))
        ]
        monitor = None
        if self.stall_timeout is not None:
            monitor = threading.Thread(
                target=watchdog,
                args=(scaled_stall_timeout(self.stall_timeout, graph),),
                name="tlr-stall-watchdog",
                daemon=True,
            )
            monitor.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if monitor is not None:
            stop_watchdog.set()
            monitor.join()
        self.last_run_retries = state.retries

        if state.failure is not None:
            # Drain the ready pool so a reused scheduler starts clean.
            while scheduler:
                scheduler.pop()
            raise state.failure
        if state.completed != state.target:  # pragma: no cover - defensive
            raise ValueError(
                f"executed {state.completed} of {state.target} tasks; "
                "graph has unsatisfiable dependencies"
            )
        if verify and ledger is not None:
            self._final_verify(data, ledger, checkpoint)
        return trace
