"""Ready-queue scheduling policies.

The engine asks the scheduler for the next ready task; the policy
determines the traversal of the DAG.  PaRSEC's default behaviour of
advancing the panel factorization eagerly is captured by the priority
scheduler with the Cholesky priority function (smaller panel index
= deeper on the critical path = runs first).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Callable

from repro.runtime.task import Task

__all__ = [
    "Scheduler",
    "FIFOScheduler",
    "LIFOScheduler",
    "PriorityScheduler",
    "cholesky_priority",
]


class Scheduler(ABC):
    """A mutable queue of ready tasks."""

    @abstractmethod
    def push(self, index: int, task: Task) -> None:
        """Add a ready task (graph index + task object)."""

    @abstractmethod
    def pop(self) -> int:
        """Remove and return the index of the next task to run."""

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0


class FIFOScheduler(Scheduler):
    """First-in first-out: breadth-first DAG traversal."""

    def __init__(self) -> None:
        self._q: deque[int] = deque()

    def push(self, index: int, task: Task) -> None:
        self._q.append(index)

    def pop(self) -> int:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class LIFOScheduler(Scheduler):
    """Last-in first-out: depth-first traversal (cache-friendly)."""

    def __init__(self) -> None:
        self._q: list[int] = []

    def push(self, index: int, task: Task) -> None:
        self._q.append(index)

    def pop(self) -> int:
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)


class PriorityScheduler(Scheduler):
    """Highest-priority-first with FIFO tie-breaking.

    ``priority(task)`` defaults to the task's own ``priority``
    attribute (set by the graph builder).
    """

    def __init__(self, priority: Callable[[Task], float] | None = None) -> None:
        self._priority = priority
        self._heap: list[tuple[float, int, int]] = []
        self._counter = 0

    def push(self, index: int, task: Task) -> None:
        p = task.priority if self._priority is None else self._priority(task)
        heapq.heappush(self._heap, (-p, self._counter, index))
        self._counter += 1

    def pop(self) -> int:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


def cholesky_priority(task: Task, n_tiles: int) -> float:
    """PaRSEC-style priority for tile Cholesky.

    Tasks of earlier panels are deeper on the critical path and must
    run first; within a panel, POTRF > TRSM > SYRK > GEMM, and the
    critical-path TRSM/SYRK (first subdiagonal) outrank the rest.
    """
    k = task.params[-1] if task.klass != "POTRF" else task.params[0]
    base = float((n_tiles - k) * 10)
    if task.klass == "POTRF":
        return base + 9.0
    if task.klass == "TRSM":
        m = task.params[0]
        return base + (8.0 if m == k + 1 else 6.0)
    if task.klass == "SYRK":
        m = task.params[0]
        return base + (7.0 if m == k + 1 else 4.0)
    return base + 2.0  # GEMM
