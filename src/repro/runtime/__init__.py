"""PaRSEC-like task runtime substrate.

Tasks are instances of parameterized task classes (the PTG model of
Section IV-A); dependencies are inferred from declared data accesses;
an execution engine runs the graph under a pluggable scheduler while a
tracer records per-task timing/flops.  Distributed execution is
modeled by the discrete-event simulator in :mod:`repro.machine`.
"""

from repro.runtime.task import AccessMode, DataAccess, Task
from repro.runtime.dag import TaskGraph, build_graph
from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointManager,
    ChecksumLedger,
    graph_signature,
    load_checkpoint,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedCrashError,
    RetryPolicy,
    TaskFailedError,
    TileCorruptionError,
    TransientKernelError,
)
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
    Scheduler,
)
from repro.runtime.engine import ExecutionEngine
from repro.runtime.parallel import (
    ParallelExecutionEngine,
    engine_for,
    resolve_workers,
)
from repro.runtime.dtd import TaskPool
from repro.runtime.distributed_exec import DistributedExecutor, DistributedRunResult
from repro.runtime.tracing import Trace, TraceEvent

__all__ = [
    "AccessMode",
    "DataAccess",
    "Task",
    "TaskGraph",
    "build_graph",
    "Scheduler",
    "FIFOScheduler",
    "LIFOScheduler",
    "PriorityScheduler",
    "ExecutionEngine",
    "ParallelExecutionEngine",
    "engine_for",
    "resolve_workers",
    "Checkpoint",
    "CheckpointManager",
    "ChecksumLedger",
    "graph_signature",
    "load_checkpoint",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedCrashError",
    "RetryPolicy",
    "TaskFailedError",
    "TileCorruptionError",
    "TransientKernelError",
    "TaskPool",
    "DistributedExecutor",
    "DistributedRunResult",
    "Trace",
    "TraceEvent",
]
