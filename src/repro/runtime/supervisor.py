"""Process supervision: liveness, hang-kill, and respawn budgets.

The mp engine's original failure model was fail-fast: any worker death
killed the whole run (mirroring exit 137 for the injected hard-crash
kind, raising ``WorkerCrashError`` otherwise).  That is the wrong
default on the road to a long-lived serving fleet — the distributed
runtimes this project models (PaRSEC, the fan-both solvers) treat node
loss as an operating condition, not an exception.

Two supervised process populations share the same skeleton:

* **kernel workers** (:class:`WorkerSupervisor`, used by the
  process-pool execution engine) — hang detection keys off *dispatch
  state*: a lane that has held one task too long is wedged;
* **service shards** (:class:`repro.service.health.ShardSupervisor`) —
  hang detection keys off *heartbeats*: a shard that stops beating is
  wedged even when it holds no request at all.

:class:`ProcessSupervisor` is the shared core: a keyed registry of
process handles, exit-code liveness polling, SIGKILL delivery, and the
respawn budget.  Subclasses own their population's hang semantics and
failure records; the engines/fleets keep the recovery *mechanics*
(re-forking, queue plumbing, state restoration) because those need
internals — the supervisor owns the *policy*.

Worker lifecycle state machine (one lane)::

    spawned --dispatch--> busy --retire--> idle --dispatch--> busy ...
       |                   |  \\
       |                   |   +--hang_timeout--> killed (SIGKILL)
       |                   |                          |
       +---exit/killed-----+--------------------------+
                           |
                respawn (budget left)  -> spawned (task requeued,
                           |               torn tiles restored)
                budget exhausted       -> WorkerCrashError
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = ["ProcessSupervisor", "WorkerFailure", "WorkerSupervisor"]


class ProcessSupervisor:
    """Keyed process registry + liveness polling + respawn budget.

    Parameters
    ----------
    max_respawns:
        Total replacement processes allowed over this supervisor's
        lifetime.  0 disables recovery (every failure is fatal).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, max_respawns: int = 0, clock=time.monotonic) -> None:
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.max_respawns = int(max_respawns)
        self._clock = clock
        self._procs: dict = {}
        self.respawns = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def attach(self, key, process) -> None:
        """Register (or replace, after a respawn) a key's process."""
        self._procs[key] = process

    def detach(self, key) -> None:
        self._procs.pop(key, None)

    def detach_all(self) -> None:
        self._procs.clear()

    def process_of(self, key):
        return self._procs.get(key)

    def keys(self) -> list:
        return sorted(self._procs)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def poll_exits(self) -> list[tuple[object, object, int]]:
        """``(key, process, exitcode)`` for every registered process
        that has exited (negative exit code = died by signal)."""
        dead = []
        for key in sorted(self._procs):
            proc = self._procs[key]
            code = proc.exitcode
            if code is not None:
                dead.append((key, proc, code))
        return dead

    @staticmethod
    def _kill(proc) -> None:
        """Deliver SIGKILL and reap (idempotent, race-tolerant)."""
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):  # already gone
            pass
        proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    # respawn budget
    # ------------------------------------------------------------------

    def can_respawn(self) -> bool:
        return self.respawns < self.max_respawns

    def record_respawn(self, key) -> None:
        self.respawns += 1


@dataclass(frozen=True)
class WorkerFailure:
    """One detected worker failure, as the engine consumes it."""

    #: worker lane index
    lane: int
    #: OS pid of the failed process
    pid: int
    #: process exit code (negative = died by signal); for a hung worker
    #: this is the post-SIGKILL code (or ``None`` if it refused to die)
    exitcode: int | None
    #: True when the failure is a hang the supervisor resolved by kill
    hung: bool
    #: task index the lane held when it failed (``None`` = idle lane)
    task_index: int | None

    @property
    def injected_hard_crash(self) -> bool:
        """Exit 137 — the fault injector's ``os._exit(137)``.  The
        engine mirrors it instead of recovering, preserving the
        checkpoint/restart SIGKILL semantics tests rely on."""
        return self.exitcode == 137


class WorkerSupervisor(ProcessSupervisor):
    """Liveness + hang detection + respawn budget over worker lanes.

    Parameters
    ----------
    max_respawns:
        Total replacement workers allowed per run.  0 disables
        recovery (every failure is fatal, the pre-supervision
        behavior).
    hang_timeout:
        Seconds a lane may hold one task before it is declared hung
        and killed.  ``None`` disables hang detection (kernel runtimes
        are unbounded in general; the engine wires this to the scaled
        stall timeout when one is configured).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_respawns: int = 0,
        hang_timeout: float | None = None,
        clock=time.monotonic,
    ) -> None:
        super().__init__(max_respawns=max_respawns, clock=clock)
        if hang_timeout is not None and hang_timeout <= 0.0:
            raise ValueError(
                f"hang_timeout must be positive or None, got {hang_timeout}"
            )
        self.hang_timeout = hang_timeout
        #: lane -> (task index, dispatch timestamp) while busy
        self._busy: dict[int, tuple[int, float]] = {}
        self.hung_killed = 0
        self.tasks_requeued = 0
        self.tiles_restored = 0
        self.stale_results = 0

    # ------------------------------------------------------------------
    # engine-facing bookkeeping
    # ------------------------------------------------------------------

    def attach(self, lane: int, process) -> None:
        """Register (or replace, after a respawn) a lane's process."""
        super().attach(lane, process)
        self._busy.pop(lane, None)

    def detach_all(self) -> None:
        super().detach_all()
        self._busy.clear()

    def task_dispatched(self, lane: int, task_index: int) -> None:
        self._busy[lane] = (task_index, self._clock())

    def task_retired(self, lane: int) -> None:
        self._busy.pop(lane, None)

    def task_of(self, lane: int) -> int | None:
        entry = self._busy.get(lane)
        return None if entry is None else entry[0]

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def poll(self) -> list[WorkerFailure]:
        """Detect dead and hung lanes (hung lanes are killed here).

        Each failure is reported exactly once: the engine either
        respawns the lane (re-attaching a fresh process) or aborts the
        run, so a reported lane never re-enters the scan as the same
        corpse.
        """
        failures: list[WorkerFailure] = []
        now = self._clock()
        dead_lanes = set()
        for lane, proc, code in self.poll_exits():
            dead_lanes.add(lane)
            failures.append(
                WorkerFailure(
                    lane=lane,
                    pid=proc.pid,
                    exitcode=code,
                    hung=False,
                    task_index=self.task_of(lane),
                )
            )
        for lane in sorted(self._procs):
            if lane in dead_lanes:
                continue
            proc = self._procs[lane]
            entry = self._busy.get(lane)
            if (
                self.hang_timeout is not None
                and entry is not None
                and now - entry[1] >= self.hang_timeout
            ):
                self.hung_killed += 1
                self._kill(proc)
                failures.append(
                    WorkerFailure(
                        lane=lane,
                        pid=proc.pid,
                        exitcode=proc.exitcode,
                        hung=True,
                        task_index=entry[0],
                    )
                )
        return failures

    # ------------------------------------------------------------------
    # respawn budget
    # ------------------------------------------------------------------

    def record_respawn(self, lane: int) -> None:
        super().record_respawn(lane)
        self._busy.pop(lane, None)

    def report(self) -> dict[str, int]:
        """Counters for this run (merged into engine/run reports)."""
        return {
            "respawns": self.respawns,
            "hung_killed": self.hung_killed,
            "tasks_requeued": self.tasks_requeued,
            "tiles_restored": self.tiles_restored,
            "stale_results": self.stale_results,
        }
