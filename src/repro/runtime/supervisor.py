"""Worker supervision for the process-pool execution engine.

The mp engine's original failure model was fail-fast: any worker death
killed the whole run (mirroring exit 137 for the injected hard-crash
kind, raising ``WorkerCrashError`` otherwise).  That is the wrong
default on the road to a long-lived serving fleet — the distributed
runtimes this project models (PaRSEC, the fan-both solvers) treat node
loss as an operating condition, not an exception.

:class:`WorkerSupervisor` is the coordinator-side bookkeeping for that
standard: it watches each worker lane's process handle and dispatch
state, classifies failures, and enforces the respawn budget.  The
engine keeps the mechanics (re-forking, queue plumbing, tile
restoration) because they need engine internals; the supervisor owns
the *policy*:

* **liveness** — a lane whose process has an exit code is dead.  Exit
  137 is the injected ``hard_crash`` (``os._exit(137)``), which the
  engine still mirrors for checkpoint/restart semantics; anything else
  (a real ``SIGKILL`` shows as -9) is a supervised failure.
* **hangs** — a lane that has held one task longer than
  ``hang_timeout`` seconds is wedged (livelocked kernel, lost worker).
  The supervisor delivers a real ``SIGKILL`` and reports it like a
  death, so one recovery path serves both.
* **budget** — ``max_respawns`` bounds total replacements per run; a
  crash loop surfaces as :class:`~repro.runtime.parallel_mp.
  WorkerCrashError` instead of respawning forever.

Worker lifecycle state machine (one lane)::

    spawned --dispatch--> busy --retire--> idle --dispatch--> busy ...
       |                   |  \\
       |                   |   +--hang_timeout--> killed (SIGKILL)
       |                   |                          |
       +---exit/killed-----+--------------------------+
                           |
                respawn (budget left)  -> spawned (task requeued,
                           |               torn tiles restored)
                budget exhausted       -> WorkerCrashError
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = ["WorkerFailure", "WorkerSupervisor"]


@dataclass(frozen=True)
class WorkerFailure:
    """One detected worker failure, as the engine consumes it."""

    #: worker lane index
    lane: int
    #: OS pid of the failed process
    pid: int
    #: process exit code (negative = died by signal); for a hung worker
    #: this is the post-SIGKILL code (or ``None`` if it refused to die)
    exitcode: int | None
    #: True when the failure is a hang the supervisor resolved by kill
    hung: bool
    #: task index the lane held when it failed (``None`` = idle lane)
    task_index: int | None

    @property
    def injected_hard_crash(self) -> bool:
        """Exit 137 — the fault injector's ``os._exit(137)``.  The
        engine mirrors it instead of recovering, preserving the
        checkpoint/restart SIGKILL semantics tests rely on."""
        return self.exitcode == 137


class WorkerSupervisor:
    """Liveness + hang detection + respawn budget over worker lanes.

    Parameters
    ----------
    max_respawns:
        Total replacement workers allowed per run.  0 disables
        recovery (every failure is fatal, the pre-supervision
        behavior).
    hang_timeout:
        Seconds a lane may hold one task before it is declared hung
        and killed.  ``None`` disables hang detection (kernel runtimes
        are unbounded in general; the engine wires this to the scaled
        stall timeout when one is configured).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_respawns: int = 0,
        hang_timeout: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        if hang_timeout is not None and hang_timeout <= 0.0:
            raise ValueError(
                f"hang_timeout must be positive or None, got {hang_timeout}"
            )
        self.max_respawns = int(max_respawns)
        self.hang_timeout = hang_timeout
        self._clock = clock
        self._procs: dict[int, object] = {}
        #: lane -> (task index, dispatch timestamp) while busy
        self._busy: dict[int, tuple[int, float]] = {}
        self.respawns = 0
        self.hung_killed = 0
        self.tasks_requeued = 0
        self.tiles_restored = 0
        self.stale_results = 0

    # ------------------------------------------------------------------
    # engine-facing bookkeeping
    # ------------------------------------------------------------------

    def attach(self, lane: int, process) -> None:
        """Register (or replace, after a respawn) a lane's process."""
        self._procs[lane] = process
        self._busy.pop(lane, None)

    def detach_all(self) -> None:
        self._procs.clear()
        self._busy.clear()

    def task_dispatched(self, lane: int, task_index: int) -> None:
        self._busy[lane] = (task_index, self._clock())

    def task_retired(self, lane: int) -> None:
        self._busy.pop(lane, None)

    def task_of(self, lane: int) -> int | None:
        entry = self._busy.get(lane)
        return None if entry is None else entry[0]

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def poll(self) -> list[WorkerFailure]:
        """Detect dead and hung lanes (hung lanes are killed here).

        Each failure is reported exactly once: the engine either
        respawns the lane (re-attaching a fresh process) or aborts the
        run, so a reported lane never re-enters the scan as the same
        corpse.
        """
        failures: list[WorkerFailure] = []
        now = self._clock()
        for lane, proc in sorted(self._procs.items()):
            code = proc.exitcode
            if code is not None:
                failures.append(
                    WorkerFailure(
                        lane=lane,
                        pid=proc.pid,
                        exitcode=code,
                        hung=False,
                        task_index=self.task_of(lane),
                    )
                )
                continue
            entry = self._busy.get(lane)
            if (
                self.hang_timeout is not None
                and entry is not None
                and now - entry[1] >= self.hang_timeout
            ):
                self.hung_killed += 1
                self._kill(proc)
                failures.append(
                    WorkerFailure(
                        lane=lane,
                        pid=proc.pid,
                        exitcode=proc.exitcode,
                        hung=True,
                        task_index=entry[0],
                    )
                )
        return failures

    @staticmethod
    def _kill(proc) -> None:
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):  # already gone
            pass
        proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    # respawn budget
    # ------------------------------------------------------------------

    def can_respawn(self) -> bool:
        return self.respawns < self.max_respawns

    def record_respawn(self, lane: int) -> None:
        self.respawns += 1
        self._busy.pop(lane, None)

    def report(self) -> dict[str, int]:
        """Counters for this run (merged into engine/run reports)."""
        return {
            "respawns": self.respawns,
            "hung_killed": self.hung_killed,
            "tasks_requeued": self.tasks_requeued,
            "tiles_restored": self.tiles_restored,
            "stale_results": self.stale_results,
        }
