"""In-process execution engine.

Runs a :class:`~repro.runtime.dag.TaskGraph` to completion: tasks
become ready when all predecessors finish, the scheduler picks among
ready tasks, and the registered kernel for the task's class is invoked
against the shared data store (a :class:`~repro.linalg.TLRMatrix`).

On one node this is a faithful (serialized) PaRSEC analogue: the DAG
traversal order is exactly what a single-worker PaRSEC instance would
execute, and the trace records real kernel durations that calibrate
the distributed simulator's cost model.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.runtime.dag import TaskGraph
from repro.runtime.faults import (
    FaultInjector,
    RetryPolicy,
    TaskFailedError,
    restore_writes,
    snapshot_writes,
)
from repro.runtime.scheduler import Scheduler, PriorityScheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["ExecutionEngine"]

#: A kernel takes (task, data_store) and mutates the store.
Kernel = Callable[[Task, object], None]

#: Retry disabled: a transient failure immediately becomes TaskFailedError.
_NO_RETRY = RetryPolicy(max_retries=0)


class ExecutionEngine:
    """Schedules and executes a task graph with registered kernels.

    Parameters
    ----------
    scheduler:
        Ready-queue ordering policy (default: priority).
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` wrapping
        every kernel dispatch (testing / chaos engineering).
    retry:
        Optional :class:`~repro.runtime.faults.RetryPolicy`.  When
        set, a transient kernel failure rolls the task's output tiles
        back to their pre-attempt state and re-runs with backoff, so a
        retried run is bitwise identical to a fault-free one.
        Exhausted retries (and, with no policy, any transient failure)
        raise :class:`~repro.runtime.faults.TaskFailedError`.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else PriorityScheduler()
        self.fault_injector = fault_injector
        self.retry = retry
        #: retried attempts accumulated over the most recent run
        self.last_run_retries = 0
        self._kernels: dict[str, Kernel] = {}

    def register(self, klass: str, kernel: Kernel) -> None:
        """Bind a task class name to its computational kernel."""
        if klass in self._kernels:
            raise ValueError(f"kernel for task class {klass!r} already registered")
        self._kernels[klass] = kernel

    def _dispatch(self, task: Task, kernel: Kernel, data: object) -> int:
        """Run one task through fault injection and retry/rollback.

        Returns the number of retries performed.  Exceptions outside
        the retry policy's transient set propagate unchanged
        (fail-fast); transient ones that exhaust the budget are
        wrapped in :class:`TaskFailedError`.
        """
        injector = self.fault_injector
        if injector is None and self.retry is None:
            kernel(task, data)
            return 0
        retry = self.retry if self.retry is not None else _NO_RETRY
        attempt = 0
        while True:
            snapshot = snapshot_writes(task, data)
            try:
                if injector is not None:
                    injector.invoke(kernel, task, data, attempt)
                else:
                    kernel(task, data)
                return attempt
            except retry.retry_on as exc:
                restore_writes(task, data, snapshot)
                if attempt >= retry.max_retries:
                    raise TaskFailedError(task, attempt + 1, exc) from exc
                pause = retry.delay(attempt)
                if pause > 0.0:
                    time.sleep(pause)
                attempt += 1

    def run(self, graph: TaskGraph, data: object, trace: Trace | None = None) -> Trace:
        """Execute every task in dependency order.

        Returns the trace (a fresh one unless ``trace`` is supplied).
        Raises ``KeyError`` if a task class has no registered kernel
        and ``ValueError`` if the graph cannot be fully executed
        (cycle / inconsistent dependencies).
        """
        if trace is None:
            trace = Trace()
        self.last_run_retries = 0
        n = len(graph)
        indegree = [graph.in_degree(i) for i in range(n)]
        for i in range(n):
            if indegree[i] == 0:
                self.scheduler.push(i, graph.tasks[i])

        t0 = time.perf_counter()
        done = 0
        while self.scheduler:
            i = self.scheduler.pop()
            task = graph.tasks[i]
            kernel = self._kernels.get(task.klass)
            if kernel is None:
                raise KeyError(f"no kernel registered for task class {task.klass!r}")
            start = time.perf_counter() - t0
            self.last_run_retries += self._dispatch(task, kernel, data)
            end = time.perf_counter() - t0
            trace.record(
                TraceEvent(task.klass, task.params, start, end, flops=task.flops)
            )
            done += 1
            for j in graph.successors.get(i, ()):
                indegree[j] -= 1
                if indegree[j] == 0:
                    self.scheduler.push(j, graph.tasks[j])
        if done != n:
            raise ValueError(
                f"executed {done} of {n} tasks; graph has unsatisfiable dependencies"
            )
        return trace
