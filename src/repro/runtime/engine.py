"""In-process execution engine.

Runs a :class:`~repro.runtime.dag.TaskGraph` to completion: tasks
become ready when all predecessors finish, the scheduler picks among
ready tasks, and the registered kernel for the task's class is invoked
against the shared data store (a :class:`~repro.linalg.TLRMatrix`).

On one node this is a faithful (serialized) PaRSEC analogue: the DAG
traversal order is exactly what a single-worker PaRSEC instance would
execute, and the trace records real kernel durations that calibrate
the distributed simulator's cost model.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.runtime.checkpoint import (
    CheckpointManager,
    ChecksumLedger,
    verify_tiles_from_env,
)
from repro.runtime.dag import TaskGraph
from repro.runtime.faults import (
    FaultInjector,
    RetryPolicy,
    TaskFailedError,
    TileCorruptionError,
    restore_writes,
    snapshot_writes,
)
from repro.runtime.scheduler import Scheduler, PriorityScheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["ExecutionEngine"]

#: A kernel takes (task, data_store) and mutates the store.
Kernel = Callable[[Task, object], None]

#: Retry disabled: a transient failure immediately becomes TaskFailedError.
_NO_RETRY = RetryPolicy(max_retries=0)


class ExecutionEngine:
    """Schedules and executes a task graph with registered kernels.

    Parameters
    ----------
    scheduler:
        Ready-queue ordering policy (default: priority).
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` wrapping
        every kernel dispatch (testing / chaos engineering).
    retry:
        Optional :class:`~repro.runtime.faults.RetryPolicy`.  When
        set, a transient kernel failure rolls the task's output tiles
        back to their pre-attempt state and re-runs with backoff, so a
        retried run is bitwise identical to a fault-free one.
        Exhausted retries (and, with no policy, any transient failure)
        raise :class:`~repro.runtime.faults.TaskFailedError`.
    verify_tiles:
        Verify every operand tile's BLAKE2b checksum before each
        kernel consumes it, and sweep every tile once at run end —
        ABFT-style silent-data-corruption detection.  ``None``
        (default) defers to ``$REPRO_VERIFY_TILES``.  A mismatch first
        tries to heal from the checkpoint manager's last-known-good
        reference, then raises
        :class:`~repro.runtime.faults.TileCorruptionError` (a
        transient, so the retry policy applies).
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        verify_tiles: bool | None = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else PriorityScheduler()
        self.fault_injector = fault_injector
        self.retry = retry
        self.verify_tiles = verify_tiles
        #: retried attempts accumulated over the most recent run
        self.last_run_retries = 0
        #: tasks skipped by the checkpoint frontier on the last run
        self.last_run_resumed = 0
        self._kernels: dict[str, Kernel] = {}
        #: out-of-band result dicts (see :meth:`report_dict`)
        self._reports: list[dict] = []

    def report_dict(self) -> dict:
        """A dict kernels may write side-channel results into.

        On the in-process engines this is a plain dict (kernels mutate
        it directly, e.g. the POTRF diagonal-shift report).  The
        process-pool engine overrides nothing here but *mirrors*
        worker-side writes back into the same registered dict, so
        drivers can stay engine-agnostic: always obtain report dicts
        through this method instead of creating literals.
        """
        d: dict = {}
        self._reports.append(d)
        return d

    def register(self, klass: str, kernel: Kernel) -> None:
        """Bind a task class name to its computational kernel."""
        if klass in self._kernels:
            raise ValueError(f"kernel for task class {klass!r} already registered")
        self._kernels[klass] = kernel

    def _verify_enabled(self) -> bool:
        if self.verify_tiles is not None:
            return bool(self.verify_tiles)
        return verify_tiles_from_env()

    def _setup_integrity(
        self, data: object, checkpoint: CheckpointManager | None
    ) -> tuple[ChecksumLedger | None, bool]:
        """The (ledger, verify-reads?) pair for one run.

        A checkpoint manager always brings its ledger (its manifests
        embed the checksums); verification without checkpointing gets
        a run-local ledger seeded from the operator's initial tiles.
        """
        verify = self._verify_enabled()
        if checkpoint is not None:
            return checkpoint.ledger, verify
        if not verify:
            return None, False
        ledger = ChecksumLedger()
        if hasattr(data, "tile") and hasattr(data, "__iter__"):
            ledger.seed(data)
        return ledger, True

    def _verify_reads(
        self,
        task: Task,
        data: object,
        ledger: ChecksumLedger,
        checkpoint: CheckpointManager | None,
    ) -> None:
        """Checksum every operand tile before the kernel consumes it."""
        for key in sorted(set(task.reads)):
            tile = data.tile(*key)
            if ledger.matches(key, tile):
                continue
            if checkpoint is not None and checkpoint.heal(data, key):
                if ledger.matches(key, data.tile(*key)):
                    continue
            raise TileCorruptionError(
                f"{task}: operand tile {key} failed checksum "
                "verification — silent data corruption detected before "
                "the kernel consumed it"
            )

    def _final_verify(
        self,
        data: object,
        ledger: ChecksumLedger,
        checkpoint: CheckpointManager | None,
    ) -> None:
        """Sweep every ledgered tile once after the last task retires.

        Catches corruption of tiles whose final value no task read
        (e.g. the last writer's output) — the per-read checks cannot
        see those.
        """
        for key in sorted(ledger.keys()):
            tile = data.tile(*key)
            if ledger.matches(key, tile):
                continue
            if checkpoint is not None and checkpoint.heal(data, key):
                if ledger.matches(key, data.tile(*key)):
                    continue
            raise TileCorruptionError(
                f"post-run integrity sweep: tile {key} failed checksum "
                "verification — the factor is corrupt and must not be "
                "used"
            )

    def _dispatch(
        self,
        task: Task,
        kernel: Kernel,
        data: object,
        ledger: ChecksumLedger | None = None,
        verify: bool = False,
        checkpoint: CheckpointManager | None = None,
    ) -> int:
        """Run one task through fault injection and retry/rollback.

        Returns the number of retries performed.  Exceptions outside
        the retry policy's transient set propagate unchanged
        (fail-fast); transient ones that exhaust the budget are
        wrapped in :class:`TaskFailedError`.  With a ledger, the
        task's output checksums are recorded after a successful
        attempt; with ``verify`` also set, operand tiles are checked
        (and a corrupt one healed or retried) before each attempt.
        """
        injector = self.fault_injector
        if injector is None and self.retry is None and ledger is None:
            kernel(task, data)
            return 0
        retry = self.retry if self.retry is not None else _NO_RETRY
        # Snapshot only when a rollback can actually be replayed: with
        # retry disabled the first transient failure is terminal
        # (TaskFailedError, factor discarded), so pre-attempt snapshots
        # would be pure overhead on every clean dispatch.
        rollback = retry.max_retries > 0
        attempt = 0
        while True:
            snapshot = snapshot_writes(task, data) if rollback else None
            try:
                if verify and ledger is not None:
                    self._verify_reads(task, data, ledger, checkpoint)
                if injector is not None:
                    injector.invoke(kernel, task, data, attempt)
                else:
                    kernel(task, data)
                if ledger is not None:
                    for key in set(task.writes):
                        ledger.record(key, data.tile(*key))
                return attempt
            except retry.retry_on as exc:
                restore_writes(task, data, snapshot)
                if attempt >= retry.max_retries:
                    raise TaskFailedError(task, attempt + 1, exc) from exc
                pause = retry.delay(attempt)
                if pause > 0.0:
                    time.sleep(pause)
                attempt += 1

    def _frontier(
        self,
        graph: TaskGraph,
        data: object,
        indegree: list[int],
        checkpoint: CheckpointManager | None,
    ) -> frozenset:
        """Adopt a checkpoint frontier: pre-retire its completed tasks.

        Binds the manager (a no-op if :meth:`CheckpointManager.bind`
        already ran, e.g. via ``tlr_cholesky(resume_from=...)``),
        decrements successor indegrees for every completed task, and
        returns the completed uid set.  The frontier is downward-closed
        (a task only retires after its predecessors), so the remaining
        subgraph is exactly the unfinished work.
        """
        if checkpoint is None:
            return frozenset()
        checkpoint.bind(graph, data)
        completed = checkpoint.completed_uids
        if completed:
            for i, task in enumerate(graph.tasks):
                if task.uid in completed:
                    for j in graph.successors.get(i, ()):
                        indegree[j] -= 1
        self.last_run_resumed = len(completed)
        return completed

    def run(
        self,
        graph: TaskGraph,
        data: object,
        trace: Trace | None = None,
        checkpoint: CheckpointManager | None = None,
    ) -> Trace:
        """Execute every task in dependency order.

        Returns the trace (a fresh one unless ``trace`` is supplied).
        Raises ``KeyError`` if a task class has no registered kernel
        and ``ValueError`` if the graph cannot be fully executed
        (cycle / inconsistent dependencies).  With ``checkpoint``,
        tasks inside the manager's completed frontier are skipped and
        a checkpoint is flushed whenever the manager's cadence says one
        is due.
        """
        if trace is None:
            trace = Trace()
        self.last_run_retries = 0
        self.last_run_resumed = 0
        n = len(graph)
        indegree = [graph.in_degree(i) for i in range(n)]
        completed = self._frontier(graph, data, indegree, checkpoint)
        ledger, verify = self._setup_integrity(data, checkpoint)
        for i in range(n):
            if indegree[i] == 0 and graph.tasks[i].uid not in completed:
                self.scheduler.push(i, graph.tasks[i])

        t0 = time.perf_counter()
        done = 0
        while self.scheduler:
            i = self.scheduler.pop()
            task = graph.tasks[i]
            kernel = self._kernels.get(task.klass)
            if kernel is None:
                raise KeyError(f"no kernel registered for task class {task.klass!r}")
            start = time.perf_counter() - t0
            self.last_run_retries += self._dispatch(
                task, kernel, data, ledger=ledger, verify=verify, checkpoint=checkpoint
            )
            end = time.perf_counter() - t0
            trace.record(
                TraceEvent(task.klass, task.params, start, end, flops=task.flops)
            )
            done += 1
            if checkpoint is not None and checkpoint.task_retired(task, data):
                checkpoint.flush(data)
            for j in graph.successors.get(i, ()):
                indegree[j] -= 1
                if indegree[j] == 0:
                    self.scheduler.push(j, graph.tasks[j])
        if done != n - len(completed):
            raise ValueError(
                f"executed {done} of {n - len(completed)} tasks; "
                "graph has unsatisfiable dependencies"
            )
        if verify and ledger is not None:
            self._final_verify(data, ledger, checkpoint)
        return trace
