"""In-process execution engine.

Runs a :class:`~repro.runtime.dag.TaskGraph` to completion: tasks
become ready when all predecessors finish, the scheduler picks among
ready tasks, and the registered kernel for the task's class is invoked
against the shared data store (a :class:`~repro.linalg.TLRMatrix`).

On one node this is a faithful (serialized) PaRSEC analogue: the DAG
traversal order is exactly what a single-worker PaRSEC instance would
execute, and the trace records real kernel durations that calibrate
the distributed simulator's cost model.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.runtime.dag import TaskGraph
from repro.runtime.scheduler import Scheduler, PriorityScheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["ExecutionEngine"]

#: A kernel takes (task, data_store) and mutates the store.
Kernel = Callable[[Task, object], None]


class ExecutionEngine:
    """Schedules and executes a task graph with registered kernels."""

    def __init__(self, scheduler: Scheduler | None = None) -> None:
        self.scheduler = scheduler if scheduler is not None else PriorityScheduler()
        self._kernels: dict[str, Kernel] = {}

    def register(self, klass: str, kernel: Kernel) -> None:
        """Bind a task class name to its computational kernel."""
        if klass in self._kernels:
            raise ValueError(f"kernel for task class {klass!r} already registered")
        self._kernels[klass] = kernel

    def run(self, graph: TaskGraph, data: object, trace: Trace | None = None) -> Trace:
        """Execute every task in dependency order.

        Returns the trace (a fresh one unless ``trace`` is supplied).
        Raises ``KeyError`` if a task class has no registered kernel
        and ``ValueError`` if the graph cannot be fully executed
        (cycle / inconsistent dependencies).
        """
        if trace is None:
            trace = Trace()
        n = len(graph)
        indegree = [graph.in_degree(i) for i in range(n)]
        for i in range(n):
            if indegree[i] == 0:
                self.scheduler.push(i, graph.tasks[i])

        t0 = time.perf_counter()
        done = 0
        while self.scheduler:
            i = self.scheduler.pop()
            task = graph.tasks[i]
            kernel = self._kernels.get(task.klass)
            if kernel is None:
                raise KeyError(f"no kernel registered for task class {task.klass!r}")
            start = time.perf_counter() - t0
            kernel(task, data)
            end = time.perf_counter() - t0
            trace.record(
                TraceEvent(task.klass, task.params, start, end, flops=task.flops)
            )
            done += 1
            for j in graph.successors.get(i, ()):
                indegree[j] -= 1
                if indegree[j] == 0:
                    self.scheduler.push(j, graph.tasks[j])
        if done != n:
            raise ValueError(
                f"executed {done} of {n} tasks; graph has unsatisfiable dependencies"
            )
        return trace
