"""TLR LU factorization — the framework's non-symmetric path.

Demonstrates the paper's generality claim on the LU factorization
used by the group's acoustic-BEM solver (ref. [11]): the same task
classes, trimming analysis and runtime machinery apply, with the
symmetric panel replaced by separate left (L) and top (U) panels.

``tlr_lu`` factorizes a :class:`~repro.linalg.general_matrix.
GeneralTLRMatrix` in place: after the call, tile ``(k, k)`` holds the
packed ``L\\U`` factors, tiles below the diagonal hold ``L[m,k]``,
and tiles above hold ``U[k,n]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.config import DTYPE
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.linalg.kernels_lu import (
    gemm_lu_tile,
    getrf_tile,
    trsm_l_tile,
    trsm_u_tile,
)
from repro.linalg.tile import DenseTile, LowRankTile, NullTile
from repro.runtime.dag import TaskGraph, build_graph
from repro.runtime.parallel import engine_for
from repro.runtime.scheduler import PriorityScheduler
from repro.runtime.task import Task, make_task
from repro.runtime.tracing import Trace

__all__ = ["LUAnalysis", "analyze_ranks_lu", "lu_tasks", "tlr_lu",
           "LUFactorizationResult", "solve_lu"]


@dataclass
class LUAnalysis:
    """Algorithm 1 generalized to LU (independent L and U panels)."""

    nt: int
    #: rows m > k with non-zero (m, k) at panel-k time
    left: list[list[int]]
    #: cols n > k with non-zero (k, n) at panel-k time
    top: list[list[int]]
    final_nonzero: np.ndarray
    initial_nonzero: np.ndarray

    def final_density(self) -> float:
        nt = self.nt
        if nt < 2:
            return 1.0
        off = nt * nt - nt
        return (int(self.final_nonzero.sum()) - nt) / off

    def task_counts(self) -> dict[str, int]:
        n_gemm = sum(
            len(self.left[k]) * len(self.top[k]) for k in range(self.nt)
        )
        return {
            "GETRF": self.nt,
            "TRSM_L": sum(len(v) for v in self.left),
            "TRSM_U": sum(len(v) for v in self.top),
            "GEMM": n_gemm,
        }


def analyze_ranks_lu(rank: np.ndarray, nt: int) -> LUAnalysis:
    """Symbolic LU factorization of the full-grid rank pattern.

    Fill rule: ``(m, n)`` becomes non-zero when panel ``k`` has both
    ``(m, k)`` and ``(k, n)`` non-zero — the outer-product update of
    the LU Schur complement.
    """
    rank = np.asarray(rank)
    if rank.shape != (nt, nt):
        raise ValueError(f"rank must be (NT, NT), got {rank.shape}")
    nonzero = rank > 0
    nonzero = nonzero.copy()
    np.fill_diagonal(nonzero, True)
    initial = nonzero.copy()
    left: list[list[int]] = [[] for _ in range(nt)]
    top: list[list[int]] = [[] for _ in range(nt)]
    for k in range(nt - 1):
        rows = [m for m in range(k + 1, nt) if nonzero[m, k]]
        cols = [n for n in range(k + 1, nt) if nonzero[k, n]]
        left[k] = rows
        top[k] = cols
        if rows and cols:
            nonzero[np.ix_(rows, cols)] = True
    return LUAnalysis(nt, left, top, nonzero, initial)


def lu_tasks(nt: int, analysis: LUAnalysis | None = None) -> list[Task]:
    """Sequential enumeration of tile-LU tasks (full or trimmed)."""
    if nt < 1:
        raise ValueError(f"nt must be >= 1, got {nt}")
    tasks: list[Task] = []

    def prio(klass: str, k: int) -> float:
        base = float((nt - k) * 10)
        return base + {"GETRF": 9.0, "TRSM_L": 6.0, "TRSM_U": 6.0, "GEMM": 2.0}[
            klass
        ]

    def mk(klass, params, **kw):
        t = make_task(klass, params, **kw)
        return Task(t.klass, t.params, t.accesses, priority=prio(klass, params[-1]))

    for k in range(nt):
        tasks.append(mk("GETRF", (k,), rw=[(k, k)]))
        rows = analysis.left[k] if analysis else list(range(k + 1, nt))
        cols = analysis.top[k] if analysis else list(range(k + 1, nt))
        for m in rows:
            tasks.append(mk("TRSM_L", (m, k), reads=[(k, k)], rw=[(m, k)]))
        for n in cols:
            tasks.append(mk("TRSM_U", (k, n), reads=[(k, k)], rw=[(k, n)]))
        for m in rows:
            for n in cols:
                tasks.append(
                    mk("GEMM", (m, n, k), reads=[(m, k), (k, n)], rw=[(m, n)])
                )
    return tasks


@dataclass
class LUFactorizationResult:
    factor: GeneralTLRMatrix
    graph: TaskGraph
    trace: Trace
    analysis: LUAnalysis | None
    elapsed: float

    def residual(self, dense_a: np.ndarray) -> float:
        """``||A - L U|| / ||A||`` from the packed factor."""
        packed = self.factor.to_dense()
        l = np.tril(packed, -1) + np.eye(self.factor.n)
        u = np.triu(packed)
        return float(
            np.linalg.norm(dense_a - l @ u) / np.linalg.norm(dense_a)
        )


def tlr_lu(
    a: GeneralTLRMatrix,
    trim: bool = True,
    workers: int | None = None,
    engine: str | None = None,
) -> LUFactorizationResult:
    """Factorize ``A = L U`` in place over the runtime engine.

    ``workers`` and ``engine`` follow the same conventions as
    :func:`~repro.core.tlr_cholesky.tlr_cholesky`: ``workers=None``
    defers to ``$REPRO_WORKERS`` (else serial), ``<= 0`` means one per
    core; ``engine=None`` defers to ``$REPRO_ENGINE`` (``"threads"``,
    ``"mp"``, or ``"serial"``).
    """
    t0 = time.perf_counter()
    nt = a.n_tiles
    analysis = analyze_ranks_lu(a.rank_matrix(), nt) if trim else None
    graph = build_graph(lu_tasks(nt, analysis))

    eng = engine_for(workers, PriorityScheduler(), engine=engine)

    def k_getrf(task: Task, m: GeneralTLRMatrix) -> None:
        (k,) = task.params
        m.set_tile(k, k, getrf_tile(m.tile(k, k)))

    def k_trsm_l(task: Task, mat: GeneralTLRMatrix) -> None:
        m, k = task.params
        mat.set_tile(m, k, trsm_l_tile(mat.tile(k, k), mat.tile(m, k)))

    def k_trsm_u(task: Task, mat: GeneralTLRMatrix) -> None:
        k, n = task.params
        mat.set_tile(k, n, trsm_u_tile(mat.tile(k, k), mat.tile(k, n)))

    def k_gemm(task: Task, mat: GeneralTLRMatrix) -> None:
        m, n, k = task.params
        mat.set_tile(
            m,
            n,
            gemm_lu_tile(
                mat.tile(m, n),
                mat.tile(m, k),
                mat.tile(k, n),
                tol=mat.accuracy,
                max_rank=mat.max_rank,
            ),
        )

    eng.register("GETRF", k_getrf)
    eng.register("TRSM_L", k_trsm_l)
    eng.register("TRSM_U", k_trsm_u)
    eng.register("GEMM", k_gemm)
    trace = eng.run(graph, a)
    return LUFactorizationResult(
        factor=a,
        graph=graph,
        trace=trace,
        analysis=analysis,
        elapsed=time.perf_counter() - t0,
    )


def _apply_tile(tile, x: np.ndarray) -> np.ndarray:
    if isinstance(tile, NullTile):
        return np.zeros((tile.shape[0], x.shape[1]), dtype=DTYPE)
    if isinstance(tile, LowRankTile):
        return tile.u @ (tile.v.T @ x)
    return tile.data @ x


def solve_lu(factor: GeneralTLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the packed TLR LU factor."""
    x = np.asarray(b, dtype=DTYPE)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    x = x.copy()
    if x.shape[0] != factor.n:
        raise ValueError(f"rhs has {x.shape[0]} rows, order is {factor.n}")
    bs = factor.tile_size
    nt = factor.n_tiles

    # forward: L y = b (unit lower)
    for k in range(nt):
        lo, hi = k * bs, min((k + 1) * bs, factor.n)
        diag = factor.tile(k, k)
        if not isinstance(diag, DenseTile):
            raise TypeError("diagonal factor tiles must be dense")
        x[lo:hi] = sla.solve_triangular(
            diag.data, x[lo:hi], lower=True, unit_diagonal=True,
            check_finite=False,
        )
        for m in range(k + 1, nt):
            tile = factor.tile(m, k)
            if tile.is_null:
                continue
            mlo, mhi = m * bs, min((m + 1) * bs, factor.n)
            x[mlo:mhi] -= _apply_tile(tile, x[lo:hi])

    # backward: U x = y
    for k in range(nt - 1, -1, -1):
        lo, hi = k * bs, min((k + 1) * bs, factor.n)
        for n in range(k + 1, nt):
            tile = factor.tile(k, n)
            if tile.is_null:
                continue
            nlo, nhi = n * bs, min((n + 1) * bs, factor.n)
            x[lo:hi] -= _apply_tile(tile, x[nlo:nhi])
        diag = factor.tile(k, k)
        x[lo:hi] = sla.solve_triangular(
            diag.data, x[lo:hi], lower=False, check_finite=False
        )
    return x[:, 0] if squeeze else x
