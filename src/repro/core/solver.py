"""Triangular solves with the TLR Cholesky factor.

Forward/backward substitution by tile rows, exploiting each tile's
representation: a low-rank tile applies ``U (V^T x)`` (two skinny
GEMVs) instead of a dense ``b x b`` product, and null tiles are
skipped entirely — the solve inherits the operator's data sparsity.
Null-tile skipping uses the factor's cached per-column structure
(:meth:`TLRMatrix.lower_column_structure`), so repeated solves against
one factor — the serving hot path — avoid re-scanning all NT² tile
slots on every call.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.config import DTYPE
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile
from repro.linalg.tile_matrix import TLRMatrix

__all__ = ["solve_lower", "solve_lower_transpose", "solve_cholesky", "logdet"]


def _as_matrix(b: np.ndarray) -> tuple[np.ndarray, bool]:
    b = np.asarray(b, dtype=DTYPE)
    if b.ndim == 1:
        return b[:, None].copy(), True
    if b.ndim == 2:
        return b.copy(), False
    raise ValueError(f"rhs must be 1D or 2D, got shape {b.shape}")


def _apply(tile: Tile, x: np.ndarray, transpose: bool = False) -> np.ndarray:
    """``tile @ x`` (or ``tile.T @ x``) using the cheap representation."""
    if isinstance(tile, NullTile):
        rows = tile.shape[1] if transpose else tile.shape[0]
        return np.zeros((rows, x.shape[1]), dtype=DTYPE)
    if isinstance(tile, LowRankTile):
        if transpose:
            return tile.v @ (tile.u.T @ x)
        return tile.u @ (tile.v.T @ x)
    data = tile.data
    return (data.T if transpose else data) @ x


def solve_lower(l: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` with the TLR lower factor (forward subst.)."""
    y, squeeze = _as_matrix(b)
    if y.shape[0] != l.n:
        raise ValueError(f"rhs has {y.shape[0]} rows, matrix order is {l.n}")
    bs = l.tile_size
    structure = l.lower_column_structure()
    for k in range(l.n_tiles):
        lo, hi = k * bs, min((k + 1) * bs, l.n)
        diag = l.tile(k, k)
        if not isinstance(diag, DenseTile):
            raise TypeError("diagonal factor tiles must be dense")
        y[lo:hi] = sla.solve_triangular(
            diag.data, y[lo:hi], lower=True, check_finite=False
        )
        for m in structure[k]:
            tile = l.tile(m, k)
            mlo, mhi = m * bs, min((m + 1) * bs, l.n)
            y[mlo:mhi] -= _apply(tile, y[lo:hi])
    return y[:, 0] if squeeze else y


def solve_lower_transpose(l: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` with the TLR lower factor (backward subst.)."""
    x, squeeze = _as_matrix(b)
    if x.shape[0] != l.n:
        raise ValueError(f"rhs has {x.shape[0]} rows, matrix order is {l.n}")
    bs = l.tile_size
    structure = l.lower_column_structure()
    for k in range(l.n_tiles - 1, -1, -1):
        lo, hi = k * bs, min((k + 1) * bs, l.n)
        for m in structure[k]:
            tile = l.tile(m, k)
            mlo, mhi = m * bs, min((m + 1) * bs, l.n)
            x[lo:hi] -= _apply(tile, x[mlo:mhi], transpose=True)
        diag = l.tile(k, k)
        x[lo:hi] = sla.solve_triangular(
            diag.data, x[lo:hi], lower=True, trans="T", check_finite=False
        )
    return x[:, 0] if squeeze else x


def solve_cholesky(l: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the in-place TLR factor of ``A``."""
    return solve_lower_transpose(l, solve_lower(l, b))


def logdet(l: TLRMatrix) -> float:
    """``log det(A) = 2 * sum_k log diag(L[k,k])`` from the TLR factor.

    Reads only the dense diagonal factor tiles — the quantity needed
    by the Gaussian log-likelihood in the spatial-statistics
    applications HiCMA originally targeted.
    """
    total = 0.0
    for k in range(l.n_tiles):
        diag = l.tile(k, k)
        if not isinstance(diag, DenseTile):
            raise TypeError("diagonal factor tiles must be dense")
        d = np.diag(diag.data)
        if np.any(d <= 0.0):
            raise ValueError("factor diagonal must be positive (is this a factor?)")
        total += float(np.log(d).sum())
    return 2.0 * total
