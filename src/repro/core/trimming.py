"""Enumeration of the tile-Cholesky task graph, full or trimmed.

Without an analysis, the *entire dense DAG* is enumerated — every
TRSM/SYRK/GEMM instance exists even if it operates on null tiles, and
the runtime pays task-management, scheduling and dependency-release
overhead for each (this is Lorapo's behaviour, Section VI).  With a
:class:`~repro.core.analysis.TrimmingAnalysis`, each task class's
execution space is restricted to the symbolically non-zero tiles: the
DAG is *trimmed* and the overhead disappears with the tasks.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.analysis import TrimmingAnalysis
from repro.linalg import flops as fl
from repro.runtime.scheduler import cholesky_priority
from repro.runtime.task import Task, make_task

__all__ = ["cholesky_tasks"]


def _flops_for(
    klass: str,
    params: tuple[int, ...],
    b: int,
    rank_of: Callable[[int, int], int],
) -> float:
    """Static flop estimate for one task from current rank estimates."""
    full = b

    def r(m: int, k: int) -> int:
        return full if m == k else min(int(rank_of(m, k)), full)

    if klass == "POTRF":
        return fl.potrf_flops(b)
    if klass == "TRSM":
        m, k = params
        rk = r(m, k)
        if rk == 0:
            return 0.0
        return fl.trsm_dense_flops(b) if rk >= full else fl.trsm_tlr_flops(b, rk)
    if klass == "SYRK":
        m, k = params
        rk = r(m, k)
        if rk == 0:
            return 0.0
        return fl.syrk_dense_flops(b) if rk >= full else fl.syrk_tlr_flops(b, rk)
    if klass == "GEMM":
        m, n, k = params
        ka, kb, kc = r(m, k), r(n, k), max(1, r(m, n))
        if ka == 0 or kb == 0:
            return 0.0
        if ka >= full and kb >= full:
            return fl.gemm_dense_flops(b)
        return fl.gemm_tlr_flops(b, ka, kb, min(kc, full))
    raise ValueError(f"unknown task class {klass!r}")


def cholesky_tasks(
    nt: int,
    analysis: TrimmingAnalysis | None = None,
    tile_size: int | None = None,
    rank_of: Callable[[int, int], int] | None = None,
) -> list[Task]:
    """Sequential enumeration of tile-Cholesky tasks.

    Parameters
    ----------
    nt:
        Number of tile rows/columns.
    analysis:
        If given, trim execution spaces to symbolically non-zero tiles
        (Section VI); otherwise enumerate the full dense DAG.
    tile_size, rank_of:
        Optional flop-estimation inputs: tile edge ``b`` and a rank
        lookup ``rank_of(m, k)`` (e.g. from the compressed matrix's
        initial ranks or the synthetic rank field).  Without them all
        tasks carry ``flops=0``.

    Returns
    -------
    Tasks in the canonical right-looking order, with PaRSEC-style
    Cholesky priorities attached.
    """
    if nt < 1:
        raise ValueError(f"nt must be >= 1, got {nt}")
    if analysis is not None and analysis.nt != nt:
        raise ValueError(f"analysis.nt={analysis.nt} != nt={nt}")

    estimate = tile_size is not None and rank_of is not None

    def mk(klass: str, params: tuple[int, ...], **kw) -> Task:
        t = make_task(klass, params, **kw)
        fls = _flops_for(klass, params, tile_size, rank_of) if estimate else 0.0
        return Task(
            t.klass,
            t.params,
            t.accesses,
            priority=cholesky_priority(t, nt),
            flops=fls,
        )

    tasks: list[Task] = []
    for k in range(nt):
        tasks.append(mk("POTRF", (k,), rw=[(k, k)]))
        if analysis is None:
            trsm_rows = list(range(k + 1, nt))
        else:
            trsm_rows = analysis.trsm_rows(k)
        for m in trsm_rows:
            tasks.append(mk("TRSM", (m, k), reads=[(k, k)], rw=[(m, k)]))
        for m in trsm_rows:
            tasks.append(mk("SYRK", (m, k), reads=[(m, k)], rw=[(m, m)]))
        # GEMM execution space: all (m, n) pairs in the untrimmed DAG,
        # only pairs of non-zero panel tiles when trimmed.
        if analysis is None:
            for i in range(1, len(trsm_rows)):
                m = trsm_rows[i]
                for j in range(i):
                    n = trsm_rows[j]
                    tasks.append(
                        mk("GEMM", (m, n, k), reads=[(m, k), (n, k)], rw=[(m, n)])
                    )
        else:
            rows = trsm_rows
            for i in range(1, len(rows)):
                m = rows[i]
                for j in range(i):
                    n = rows[j]
                    tasks.append(
                        mk("GEMM", (m, n, k), reads=[(m, k), (n, k)], rw=[(m, n)])
                    )
    return tasks
