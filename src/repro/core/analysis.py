"""Algorithm 1 — matrix analysis for DAG trimming (Section VI).

Given the initial ranks of the compressed matrix, the analysis walks
the panel factorizations symbolically: a panel-``k`` tile ``(m, k)``
with non-zero rank requires a TRSM, contributes a SYRK to ``(m, m)``,
and every pair of non-zero tiles ``(m, k), (n, k)`` in the panel
generates a GEMM into ``(m, n)`` — *creating fill-in* there if the
tile had disappeared during compression.  The outputs are exactly the
paper's ``analysis`` structure: per-panel TRSM row lists, per-diagonal
SYRK panel lists, and per-tile GEMM panel lists, which the DAG builder
uses to restrict each task class's execution space.

The symbolic pattern is a *conservative superset* of the numeric one:
a GEMM update can cancel numerically and recompress to rank zero, but
it can never make a symbolically-null tile non-zero.  That is the
property that makes trimming safe (tested in
``tests/core/test_analysis.py``).

Time complexity is ``O(max(NT^2, d^2 * NT^3))`` with ``d`` the final
density, as stated in the paper; memory is proportional to the number
of symbolically non-zero tiles (the distributed version in the paper
allocates GEMM lists only for locally-updated tiles — emulated here
with the optional ``local_filter``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["TrimmingAnalysis", "analyze_ranks"]


@dataclass
class TrimmingAnalysis:
    """Output of Algorithm 1 (``hicma_parsec_analysis_t``).

    Attributes
    ----------
    nt:
        Number of tile rows/columns.
    trsm:
        ``trsm[k]`` — ascending rows ``m > k`` whose panel tile
        ``(m, k)`` is symbolically non-zero (needs a TRSM in panel k).
    syrk:
        ``syrk[m]`` — panels ``k < m`` contributing a SYRK to
        ``(m, m)``.
    gemm:
        ``gemm[(m, n)]`` — panels ``k < n`` contributing a GEMM to
        ``(m, n)``; only symbolically non-zero targets appear as keys.
    final_nonzero:
        Boolean ``(NT, NT)`` lower-triangle mask of symbolically
        non-zero tiles *after* factorization (initial non-zeros plus
        fill-in; diagonal always True).
    initial_nonzero:
        Same mask before factorization.
    """

    nt: int
    trsm: list[list[int]]
    syrk: list[list[int]]
    gemm: dict[tuple[int, int], list[int]]
    final_nonzero: np.ndarray
    initial_nonzero: np.ndarray

    # ------------------------------------------------------------------

    def trsm_rows(self, k: int) -> list[int]:
        return self.trsm[k]

    def syrk_panels(self, m: int) -> list[int]:
        return self.syrk[m]

    def gemm_panels(self, m: int, n: int) -> list[int]:
        return self.gemm.get((m, n), [])

    def is_nonzero_final(self, m: int, k: int) -> bool:
        return bool(self.final_nonzero[m, k])

    # ------------------------------------------------------------------

    def initial_density(self) -> float:
        """Ratio of non-zero off-diagonal tiles before factorization."""
        return self._density(self.initial_nonzero)

    def final_density(self) -> float:
        """Ratio of non-zero off-diagonal tiles after factorization."""
        return self._density(self.final_nonzero)

    def _density(self, mask: np.ndarray) -> float:
        nt = self.nt
        if nt < 2:
            return 1.0
        off = [(m, k) for k in range(nt) for m in range(k + 1, nt)]
        return sum(1 for m, k in off if mask[m, k]) / len(off)

    def fill_in_tiles(self) -> list[tuple[int, int]]:
        """Tiles that were null initially but fill in during Cholesky."""
        out = []
        for k in range(self.nt):
            for m in range(k + 1, self.nt):
                if self.final_nonzero[m, k] and not self.initial_nonzero[m, k]:
                    out.append((m, k))
        return out

    def task_counts(self) -> dict[str, int]:
        """Trimmed task-instance counts per class."""
        return {
            "POTRF": self.nt,
            "TRSM": sum(len(v) for v in self.trsm),
            "SYRK": sum(len(v) for v in self.syrk),
            "GEMM": sum(len(v) for v in self.gemm.values()),
        }

    def nbytes(self) -> int:
        """Approximate memory footprint of the analysis structure.

        8 bytes per stored index — the quantity plotted in Fig. 6
        (right) against matrix size.
        """
        n_indices = (
            sum(len(v) for v in self.trsm)
            + sum(len(v) for v in self.syrk)
            + sum(len(v) for v in self.gemm.values())
        )
        return 8 * n_indices + 8 * 2 * len(self.gemm)


def analyze_ranks(
    rank: np.ndarray,
    nt: int,
    local_filter: Callable[[int, int], bool] | None = None,
) -> TrimmingAnalysis:
    """Run Algorithm 1 on an initial rank array.

    Parameters
    ----------
    rank:
        Either the paper's 1D layout ``rank[k * NT + m]`` or an
        ``(NT, NT)`` matrix of initial tile ranks (both triangles or
        lower-only; only ``m >= k`` entries are read).  The array is
        not modified.
    nt:
        Number of tile rows/columns.
    local_filter:
        ``local_filter(m, n) -> bool`` emulating the distributed
        analysis: GEMM index lists are materialized only for tiles on
        this process (dependency *counts* are always complete).  Null
        marking still happens globally, as it must for correctness.

    Returns
    -------
    :class:`TrimmingAnalysis`
    """
    rank = np.asarray(rank)
    if rank.ndim == 1:
        if rank.size != nt * nt:
            raise ValueError(f"1D rank array must have NT^2={nt*nt} entries")
        rank2d = rank.reshape(nt, nt).T.copy()  # [k*NT+m] -> [m, k]
    elif rank.shape == (nt, nt):
        rank2d = rank.copy()
    else:
        raise ValueError(f"rank must be (NT*NT,) or (NT, NT), got {rank.shape}")

    nonzero = np.zeros((nt, nt), dtype=bool)
    for k in range(nt):
        nonzero[k, k] = True  # diagonal tiles are dense, never trimmed
        for m in range(k + 1, nt):
            nonzero[m, k] = rank2d[m, k] > 0
    initial = nonzero.copy()

    trsm: list[list[int]] = [[] for _ in range(nt)]
    syrk: list[list[int]] = [[] for _ in range(nt)]
    gemm: dict[tuple[int, int], list[int]] = {}

    for k in range(nt - 1):
        # Panel scan: rows needing TRSM, diagonal SYRK contributions.
        for m in range(k + 1, nt):
            if nonzero[m, k]:
                trsm[k].append(m)
                syrk[m].append(k)
        # Update scan: every pair of non-zero panel tiles spawns a GEMM
        # and marks the target non-zero (fill-in).
        rows = trsm[k]
        for i in range(1, len(rows)):
            m = rows[i]
            for j in range(i):
                n = rows[j]
                nonzero[m, n] = True
                if local_filter is None or local_filter(m, n):
                    gemm.setdefault((m, n), []).append(k)

    return TrimmingAnalysis(
        nt=nt,
        trsm=trsm,
        syrk=syrk,
        gemm=gemm,
        final_nonzero=nonzero,
        initial_nonzero=initial,
    )
