"""Numeric TLR Cholesky driver over the in-process runtime engine.

Builds the (optionally trimmed) task graph, registers the four TLR
kernels against the matrix, and lets the engine execute the DAG under
the chosen scheduler.  The factorization happens in place: on return
the matrix's lower triangle holds the TLR Cholesky factor (diagonal
tiles hold dense ``L[k,k]``; off-diagonal tiles hold compressed
``L[m,k]``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis import TrimmingAnalysis, analyze_ranks
from repro.core.trimming import cholesky_tasks
from repro.runtime.checkpoint import Checkpoint, CheckpointManager, load_checkpoint
from repro.linalg.kernels_dense import DiagonalShiftPolicy
from repro.linalg.kernels_tlr import (
    gemm_tile,
    potrf_tile,
    potrf_tile_shifted,
    syrk_tile,
    trsm_tile,
)
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.dag import TaskGraph, build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.faults import FaultInjector, RetryPolicy
from repro.runtime.parallel import engine_for
from repro.runtime.scheduler import PriorityScheduler, Scheduler
from repro.runtime.task import Task
from repro.runtime.tracing import Trace

__all__ = ["FactorizationResult", "tlr_cholesky", "register_cholesky_kernels"]


@dataclass
class FactorizationResult:
    """Everything a caller or benchmark needs from one factorization."""

    #: the matrix, now holding the TLR Cholesky factor in place
    factor: TLRMatrix
    #: the executed task graph
    graph: TaskGraph
    #: per-task execution trace
    trace: Trace
    #: trimming analysis (None for untrimmed runs)
    analysis: TrimmingAnalysis | None
    #: wall-clock seconds for graph construction + analysis
    setup_seconds: float
    #: wall-clock seconds for task execution
    execute_seconds: float
    #: diagonal shifts applied by the degradation policy, keyed by
    #: diagonal tile index k (empty when no POTRF needed regularizing)
    diagonal_shifts: dict[int, float] = field(default_factory=dict)
    #: transient-failure retries performed by the execution engine
    retries: int = 0
    #: tasks skipped by resuming from a checkpoint frontier
    resumed_tasks: int = 0
    #: checkpoints written during this run
    checkpoints_written: int = 0
    #: corrupt tiles healed in place from last-known-good references
    tiles_healed: int = 0
    #: replacement workers forked by the mp engine's supervisor after
    #: real worker deaths or hangs (0 for in-process engines)
    workers_respawned: int = 0

    @property
    def elapsed(self) -> float:
        return self.setup_seconds + self.execute_seconds

    def residual(self, dense_a: np.ndarray) -> float:
        """Relative Frobenius residual ``||A - L L^T|| / ||A||``."""
        l = np.tril(self.factor.to_dense(symmetrize=False))
        return float(
            np.linalg.norm(dense_a - l @ l.T) / np.linalg.norm(dense_a)
        )


def register_cholesky_kernels(
    engine: ExecutionEngine,
    shift_policy: DiagonalShiftPolicy | None = None,
    shift_report: dict[int, float] | None = None,
) -> None:
    """Bind POTRF/TRSM/SYRK/GEMM to their TLR tile kernels.

    The data store is the :class:`TLRMatrix` itself; kernels read and
    replace tiles through its accessors, so null-tile no-ops (in
    untrimmed runs) still pass through the runtime — that per-task
    overhead is exactly what DAG trimming removes.

    With a ``shift_policy``, a non-SPD diagonal tile is regularized by
    escalating diagonal shifts instead of aborting; nonzero shifts are
    recorded into ``shift_report`` keyed by diagonal tile index (each
    POTRF task writes a distinct key, so the dict needs no lock).
    """

    def k_potrf(task: Task, a: TLRMatrix) -> None:
        (k,) = task.params
        if shift_policy is None:
            a.set_tile(k, k, potrf_tile(a.tile(k, k)))
            return
        l_kk, shift = potrf_tile_shifted(a.tile(k, k), shift_policy)
        a.set_tile(k, k, l_kk)
        if shift and shift_report is not None:
            shift_report[k] = shift

    def k_trsm(task: Task, a: TLRMatrix) -> None:
        m, k = task.params
        a.set_tile(m, k, trsm_tile(a.tile(k, k), a.tile(m, k)))

    def k_syrk(task: Task, a: TLRMatrix) -> None:
        m, k = task.params
        a.set_tile(m, m, syrk_tile(a.tile(m, m), a.tile(m, k)))

    def k_gemm(task: Task, a: TLRMatrix) -> None:
        m, n, k = task.params
        # Randomized rank rounding draws its sample stream from the
        # tile coordinates and the elimination step (generation k+1 —
        # build-time compression is generation 0).  The DAG serializes
        # all writes to tile (m, n), so the seed is a pure function of
        # the task and the factor stays bitwise identical across the
        # serial/threaded/mp engines.  ``a`` is the TLRMatrix on the
        # in-process engines and the arena store under mp; both expose
        # the build's compression policy (or None for svd builds).
        policy = getattr(a, "compression", None)
        seed = (
            policy.tile_seed(m, n, gen=k + 1)
            if policy is not None and policy.randomized
            else 0
        )
        a.set_tile(
            m,
            n,
            gemm_tile(
                a.tile(m, n),
                a.tile(m, k),
                a.tile(n, k),
                tol=a.accuracy,
                max_rank=a.max_rank,
                policy=policy,
                seed=seed,
            ),
        )

    engine.register("POTRF", k_potrf)
    engine.register("TRSM", k_trsm)
    engine.register("SYRK", k_syrk)
    engine.register("GEMM", k_gemm)


def tlr_cholesky(
    a: TLRMatrix,
    trim: bool = True,
    scheduler: Scheduler | None = None,
    workers: int | None = None,
    fault_injector: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    shift_policy: DiagonalShiftPolicy | None = None,
    checkpoint: CheckpointManager | str | os.PathLike | None = None,
    resume_from: Checkpoint | str | os.PathLike | None = None,
    verify_tiles: bool | None = None,
    engine: str | None = None,
) -> FactorizationResult:
    """Factorize a TLR matrix in place: ``A = L L^T``.

    Parameters
    ----------
    a:
        The compressed SPD operator (mutated into the factor).
    trim:
        Run Algorithm 1 and trim the DAG (the paper's optimization);
        ``False`` reproduces the baseline full dense DAG.
    scheduler:
        Ready-queue policy (default: priority, PaRSEC-like).
    workers:
        Worker threads executing the DAG.  ``None`` defaults to
        ``$REPRO_WORKERS`` (else 1, the serial engine); ``<= 0`` means
        one per CPU core.  The DAG's RAW/WAR/WAW edges order every
        tile access, so the computed factor is identical across worker
        counts.

    fault_injector:
        Optional deterministic fault injection wrapping every kernel
        dispatch (see :mod:`repro.runtime.faults`).
    retry:
        Per-task transient-failure retry with tile rollback and capped
        exponential backoff; a retried run produces a factor bitwise
        identical to a fault-free run.  Without a policy, an injected
        transient fault raises
        :class:`~repro.runtime.faults.TaskFailedError`.
    shift_policy:
        Numerical degradation for borderline-SPD operators: a non-SPD
        POTRF retries with escalating diagonal shifts, reported in
        ``result.diagonal_shifts``.  ``None`` (default) keeps the
        strict fail-on-indefinite behavior below.
    checkpoint:
        A :class:`~repro.runtime.checkpoint.CheckpointManager` (or a
        directory, wrapping one with default cadence) persisting the
        completed-task frontier + dirty tiles so a killed run can be
        resumed.
    resume_from:
        A loaded :class:`~repro.runtime.checkpoint.Checkpoint` or a
        path to a checkpoint directory/manifest.  ``a`` must be the
        *pristine* operator, rebuilt exactly as the interrupted run
        built it; the checkpoint's tiles are overlaid and only
        unfinished tasks execute, so the resumed factor is bitwise
        identical to an uninterrupted run.  A nonexistent/empty
        directory simply runs from scratch (crash-before-first-
        checkpoint friendly); a checkpoint from a *different*
        factorization raises ``ValueError``.
    verify_tiles:
        Per-kernel BLAKE2b operand verification + end-of-run sweep
        (default: ``$REPRO_VERIFY_TILES``); see
        :class:`~repro.runtime.engine.ExecutionEngine`.
    engine:
        Execution backend: ``"threads"`` (GIL-bound Python glue, BLAS
        overlaps), ``"mp"`` (shared-memory process pool — true
        parallelism), or ``"serial"``.  ``None`` defers to
        ``$REPRO_ENGINE`` (else threads).  All backends produce
        bitwise-identical factors.

    Raises
    ------
    numpy.linalg.LinAlgError
        If a diagonal tile loses positive definiteness — typically the
        compression accuracy is too loose for the operator's
        conditioning (tighten ``accuracy``, increase the generator's
        ``nugget``, or pass a ``shift_policy``).
    repro.runtime.faults.TaskFailedError
        If a task exhausts its transient-failure retry budget.
    """
    t0 = time.perf_counter()
    nt = a.n_tiles
    analysis: TrimmingAnalysis | None = None
    if trim:
        analysis = analyze_ranks(a.rank_array(), nt)
    ranks = a.rank_matrix()
    tasks = cholesky_tasks(
        nt,
        analysis=analysis,
        tile_size=a.tile_size,
        rank_of=lambda m, k: int(ranks[m, k]),
    )
    graph = build_graph(tasks)

    manager: CheckpointManager | None
    if checkpoint is None or isinstance(checkpoint, CheckpointManager):
        manager = checkpoint
    else:
        manager = CheckpointManager(checkpoint)
    if resume_from is not None and not isinstance(resume_from, Checkpoint):
        resume_from = load_checkpoint(resume_from)  # None when dir is empty
    if resume_from is not None:
        if manager is None:
            # Resuming without a manager still needs frontier/heal
            # bookkeeping; keep writing alongside the old checkpoints.
            manager = CheckpointManager(resume_from.manifest_path.parent)
        manager.bind(graph, a, resume=resume_from)
    setup = time.perf_counter() - t0

    eng = engine_for(
        workers,
        scheduler if scheduler is not None else PriorityScheduler(),
        fault_injector=fault_injector,
        retry=retry,
        verify_tiles=verify_tiles,
        engine=engine,
    )
    # Engine-managed report dict: the process-pool backend mirrors
    # worker-side writes (POTRF shifts happen in forked children) back
    # into this same dict at task retirement.
    shifts = eng.report_dict()
    register_cholesky_kernels(
        eng, shift_policy=shift_policy, shift_report=shifts
    )
    t1 = time.perf_counter()
    trace = eng.run(graph, a, checkpoint=manager)
    execute = time.perf_counter() - t1

    return FactorizationResult(
        factor=a,
        graph=graph,
        trace=trace,
        analysis=analysis,
        setup_seconds=setup,
        execute_seconds=execute,
        diagonal_shifts=shifts,
        retries=eng.last_run_retries,
        resumed_tasks=manager.resumed_tasks if manager is not None else 0,
        checkpoints_written=(
            manager.checkpoints_written if manager is not None else 0
        ),
        tiles_healed=manager.tiles_healed if manager is not None else 0,
        workers_respawned=getattr(eng, "last_run_supervision", {}).get(
            "respawns", 0
        ),
    )
