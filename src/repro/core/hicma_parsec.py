"""HiCMA-PaRSEC — the paper's full framework.

On top of the TLR kernels this configuration enables the two runtime
optimizations of Sections VI and VII:

1. **Dynamic DAG trimming** — Algorithm 1 analyzes the compressed
   matrix and the task graph is enumerated only over symbolically
   non-zero tiles.
2. **Band + rank-aware diamond execution mapping** — data stays in the
   user's original 2DBCDD; execution is remapped so the critical-path
   TRSM runs on the POTRF owner (band, Fig. 3c) and off-band tiles
   follow the diamond-shaped skew (Fig. 3d), breaking owner-computes
   transparently.

The numeric entry point runs the trimmed graph in-process; the
:data:`HICMA_PARSEC` config carries the full setup into the
distributed simulator.  Intermediate configs (`BAND_ONLY`,
`TRIM_ONLY`) support the incremental-optimization figures (Figs. 7
and 13).
"""

from __future__ import annotations

from repro.core.lorapo import FrameworkConfig
from repro.core.tlr_cholesky import FactorizationResult, tlr_cholesky
from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    Distribution,
    TwoDBlockCyclic,
    square_grid,
)
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.scheduler import Scheduler

__all__ = [
    "hicma_parsec_factorize",
    "HICMA_PARSEC",
    "TRIM_ONLY",
    "BAND_ONLY",
    "BAND_DIAMOND",
]


def _two_d(nproc: int) -> Distribution:
    p, q = square_grid(nproc)
    return TwoDBlockCyclic(p, q)


def _band_over_2d(nproc: int) -> Distribution:
    p, q = square_grid(nproc)
    return BandDistribution(TwoDBlockCyclic(p, q))


def _band_over_diamond(nproc: int) -> Distribution:
    p, q = square_grid(nproc)
    return BandDistribution(DiamondDistribution(p, q))


#: Trimming only (owner-computes on the user's 2DBCDD) — the first
#: incremental step in Figs. 7/13.
TRIM_ONLY = FrameworkConfig(
    name="HiCMA-PaRSEC (trim)",
    trim=True,
    data_distribution=_two_d,
    exec_distribution=None,
)

#: Trimming + band execution mapping (Sec. VII-A).
BAND_ONLY = FrameworkConfig(
    name="HiCMA-PaRSEC (trim+band)",
    trim=True,
    data_distribution=_two_d,
    exec_distribution=_band_over_2d,
)

#: Trimming + band + diamond execution mapping (Sec. VII-B).
BAND_DIAMOND = FrameworkConfig(
    name="HiCMA-PaRSEC (trim+band+diamond)",
    trim=True,
    data_distribution=_two_d,
    exec_distribution=_band_over_diamond,
)

#: The complete framework (alias of BAND_DIAMOND).
HICMA_PARSEC = FrameworkConfig(
    name="HiCMA-PaRSEC",
    trim=True,
    data_distribution=_two_d,
    exec_distribution=_band_over_diamond,
)


def hicma_parsec_factorize(
    a: TLRMatrix,
    scheduler: Scheduler | None = None,
    workers: int | None = None,
    shift_policy=None,
    engine: str | None = None,
) -> FactorizationResult:
    """Numeric HiCMA-PaRSEC factorization: trimmed DAG.

    ``shift_policy`` enables escalating-diagonal-shift degradation for
    borderline-SPD operators (see :func:`tlr_cholesky`); ``engine``
    selects the execution backend (threads / mp / serial).
    """
    return tlr_cholesky(
        a,
        trim=True,
        scheduler=scheduler,
        workers=workers,
        shift_policy=shift_policy,
        engine=engine,
    )
