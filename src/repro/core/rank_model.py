"""Synthetic rank fields for at-scale simulation.

The paper's largest runs (52.57M unknowns, NT ≈ 10,770 tiles) cannot
be compressed numerically on a laptop, but every at-scale quantity the
evaluation section reports — task counts, flops, communication volume,
densities — derives from the *rank structure* of the compressed
operator, not from its numerical entries.  This module supplies that
structure in two ways:

* :func:`calibrate_rank_field` extracts the empirical
  rank-vs-tile-distance and density-vs-tile-distance profiles from a
  really-compressed :class:`~repro.linalg.TLRMatrix` at laptop scale;
* :meth:`SyntheticRankField.from_parameters` builds the profile
  analytically from the physics of the Gaussian kernel: the
  correlation range ``R = delta * sqrt(ln(1/eps))`` is the spatial
  distance where kernel entries fall below the accuracy threshold, and
  Hilbert ordering maps tile-index distance ``d`` to spatial distance
  ``D(d) ~ edge * (d*b/N)^(1/3)`` (3D locality).  Tiles with
  ``D(d) >> R`` disappear; nearer tiles carry ranks decaying with
  distance, matching the sharp decay seen in Fig. 1.

Both return the same :class:`SyntheticRankField`, so simulator inputs
can be swapped between calibrated and analytic profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.tile_matrix import TLRMatrix
from repro.utils.validation import check_positive

__all__ = ["SyntheticRankField", "calibrate_rank_field", "analyze_mask_fast"]


def _hash01(a: np.ndarray, b: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic uniform-[0,1) hash of integer pairs (splitmix64
    finalizer) — vectorized, no RNG state, safe for huge tile grids."""
    x = (
        a.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        + b.astype(np.uint64) * np.uint64(0xBF58476D1CE4E5B9)
        + np.uint64(seed & 0xFFFFFFFF)
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


@dataclass
class SyntheticRankField:
    """Distance-based tile rank/occupancy profile of a TLR operator.

    Attributes
    ----------
    nt, tile_size:
        Tile-grid geometry.
    rank_by_distance:
        ``rank_by_distance[d]`` — expected rank of a *non-null* tile at
        tile-index distance ``d = m - k`` (entry 0 is the dense
        diagonal: rank = tile_size).
    density_by_distance:
        ``density_by_distance[d]`` — probability that a tile at
        distance ``d`` is non-null after compression.
    seed:
        Controls the Bernoulli sampling of the occupancy mask.
    """

    nt: int
    tile_size: int
    rank_by_distance: np.ndarray
    density_by_distance: np.ndarray
    seed: int = 0
    #: tiles per point cluster (virion); when set, off-band occupancy
    #: is sampled at *cluster-pair block* granularity — two coupled
    #: virions make their whole tile block non-null together, which is
    #: what keeps Cholesky fill-in contained (block patterns are
    #: closed under fill at the block level, scattered singletons are
    #: not).  None (e.g. calibrated fields) falls back to independent
    #: per-tile sampling.
    tiles_per_cluster: float | None = None
    #: relative rank disparity within a distance band: tile ranks are
    #: modulated by a deterministic per-cluster-pair multiplier in
    #: ``[1/(1+jitter), 1+jitter]``.  Fig. 1 shows max/avg rank ratios
    #: of 2-3x within the same sub-diagonal; this is the disparity the
    #: rank-aware diamond distribution balances (Sec. VII-B).
    rank_jitter: float = 0.0

    def __post_init__(self) -> None:
        check_positive("nt", self.nt)
        check_positive("tile_size", self.tile_size)
        self.rank_by_distance = np.asarray(self.rank_by_distance, dtype=np.float64)
        self.density_by_distance = np.asarray(
            self.density_by_distance, dtype=np.float64
        )
        if len(self.rank_by_distance) < self.nt:
            raise ValueError("rank_by_distance shorter than nt")
        if len(self.density_by_distance) < self.nt:
            raise ValueError("density_by_distance shorter than nt")
        if np.any((self.density_by_distance < 0) | (self.density_by_distance > 1)):
            raise ValueError("densities must be in [0, 1]")

    # ------------------------------------------------------------------

    @classmethod
    def from_parameters(
        cls,
        n: int,
        tile_size: int,
        shape_parameter: float,
        accuracy: float,
        cube_edge: float = 1.7,
        points_per_virus: int = 44932,
        virus_diameter: float = 0.1,
        seed: int = 0,
        rank_prefactor: float = 5.4,
        rank_decay: float = 0.45,
    ) -> "SyntheticRankField":
        """Analytic profile for the virus-population RBF workload.

        Two regimes drive the structure (calibrated against real
        compressions of the synthetic workload, see
        ``tests/core/test_rank_model.py``):

        * **Intra-virus** — points live on 2D virion surfaces, so a
          Hilbert-contiguous tile of ``b`` points covers a surface
          patch of diameter ``L = sqrt(b) * s`` (``s`` = surface point
          spacing).  Tiles within ``d_v ~ points_per_virus / b`` index
          distance overlap spatially; occupancy decays linearly over
          the band.  Their rank peaks when the kernel's correlation
          range ``R = delta * sqrt(ln(1/eps))`` matches the patch size
          ``L`` (``x = R/L = 1``) and falls off on both sides — small
          ``x`` confines interaction to a thin boundary strip, large
          ``x`` makes the kernel smooth across the patch.  This
          reproduces the rise-then-fall of the labeled max ranks in
          Fig. 4.
        * **Inter-virus** — virions are separated by gaps of order the
          mean center spacing ``G = edge / n_v^(1/3)``; a virus pair
          couples only if ``R`` reaches across the gap, so far-field
          occupancy grows like ``((R + r_virus) / G)^3`` until the
          whole matrix densifies (the density growth with shape
          parameter in Figs. 1/4).
        """
        check_positive("n", n)
        check_positive("tile_size", tile_size)
        check_positive("shape_parameter", shape_parameter)
        check_positive("accuracy", accuracy)
        nt = -(-n // tile_size)
        b = tile_size
        n_viruses = max(1.0, n / float(points_per_virus))

        # Surface point spacing: area of the virion envelope / points.
        s = np.sqrt(4.0 * np.pi * (0.5 * virus_diameter) ** 2 / points_per_virus)
        r_corr = shape_parameter * np.sqrt(np.log(1.0 / accuracy))
        l_patch = np.sqrt(float(b)) * s
        x = r_corr / l_patch

        d = np.arange(max(nt, 2), dtype=np.float64)

        # --- occupancy -------------------------------------------------
        d_virus = max(1.0, points_per_virus / float(b))
        dens_near = np.clip(1.0 - d / (d_virus + 1.0), 0.0, 1.0)
        # Hilbert locality above the virion scale: index distance d
        # maps to spatial distance ~ edge * (d*b/N)^(1/3); a virus pair
        # at that distance couples if the correlation range reaches
        # across the inter-virion gap.
        gap = cube_edge / n_viruses ** (1.0 / 3.0)
        d_far = np.maximum(cube_edge * np.cbrt(d * b / float(n)), 0.5 * gap)
        reach = 1.9 * (r_corr + 0.5 * virus_diameter)
        p_far = np.minimum(1.0, (reach / d_far) ** 3)
        density = np.maximum(dens_near, p_far)
        density[0] = 1.0

        # --- conditional rank ------------------------------------------
        # Boundary-strip theory, fitted to real compressions at laptop
        # scale (see tests/core/test_rank_model.py):
        # * x << 1: the interaction is confined to a strip of width R
        #   along the shared patch boundary -> rank ~ sqrt(b) * R / s
        #   = b * x (linear in the correlation range);
        # * the rank saturates at ~5.4 sqrt(b) once the strip covers
        #   the whole patch (x ~ 0.3-1);
        # * x >> 1: the kernel is smooth across the patch and the rank
        #   decays like x^-0.85.
        # This law reproduces both the laptop measurements (25/63/83/
        # 33/12 across two decades of x at b=240) and the paper's
        # reported max ranks at scale (Fig. 1).
        peak = min(float(b) * x, rank_prefactor * np.sqrt(float(b)))
        if x > 1.0:
            peak *= x**-0.85
        # Tighter accuracy keeps more singular values (Fig. 12).
        peak *= np.sqrt(np.log(1.0 / accuracy) / np.log(1.0e4))
        ranks = peak * np.maximum(d, 1.0) ** (-rank_decay)
        ranks = np.clip(np.round(ranks), 2.0, float(b))
        ranks[0] = float(b)  # diagonal tiles are dense
        ranks = np.where(density > 0.0, ranks, 0.0)
        return cls(
            nt,
            tile_size,
            ranks[:nt].copy(),
            density[:nt].copy(),
            seed,
            tiles_per_cluster=d_virus,
            rank_jitter=1.0,
        )

    # ------------------------------------------------------------------

    def rank_of(self, m: int, k: int) -> int:
        """Deterministic rank estimate for tile ``(m, k)`` (0 if null
        under the sampled occupancy mask is not consulted here — use
        the mask for occupancy, this for conditional rank)."""
        return int(self.rank_lookup(np.array([m]), np.array([k]))[0])

    def rank_lookup(self, m: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Vectorized conditional rank of tiles ``(m, k)``.

        Applies the per-cluster-pair jitter multiplier on top of the
        distance profile; diagonal tiles always report the full tile
        size.  Occupancy is *not* consulted.
        """
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        d = np.abs(m - k)
        base = self.rank_by_distance[np.minimum(d, self.nt - 1)]
        if (
            self.rank_jitter > 0.0
            and self.tiles_per_cluster is not None
            and self.tiles_per_cluster >= 1
        ):
            dv = max(1, int(round(self.tiles_per_cluster)))
            u = _hash01(m // dv, k // dv, self.seed)
            mult = (1.0 + self.rank_jitter) ** (2.0 * u - 1.0)
            base = np.where(d > 0, np.round(base * mult), base)
        out = np.where(d == 0, float(self.tile_size), base)
        return np.where(
            base > 0, np.clip(out, 1.0, float(self.tile_size)), 0.0
        ).astype(np.int64)

    def initial_mask(self) -> np.ndarray:
        """Sampled boolean lower-triangle occupancy mask ``(NT, NT)``.

        With ``tiles_per_cluster`` set, off-band (inter-virion)
        occupancy is sampled per cluster pair and marked as a full
        tile block — matching the real workload, where two coupled
        virions contribute a contiguous block of non-null tiles under
        Hilbert ordering.  The intra-cluster band is sampled per tile
        along each sub-diagonal.  Without cluster information every
        tile is an independent Bernoulli draw.
        """
        rng = np.random.default_rng(self.seed)
        nt = self.nt
        mask = np.zeros((nt, nt), dtype=bool)
        dv = (
            max(1, int(round(self.tiles_per_cluster)))
            if self.tiles_per_cluster is not None and self.tiles_per_cluster >= 1
            else None
        )
        band_limit = nt if dv is None else min(nt, dv + 1)

        # Intra-cluster band: per-tile sampling along sub-diagonals.
        for d in range(band_limit):
            p = self.density_by_distance[d]
            if p <= 0.0:
                continue
            n_band = nt - d
            if p >= 1.0:
                hits = np.ones(n_band, dtype=bool)
            else:
                hits = rng.random(n_band) < p
            idx = np.nonzero(hits)[0]
            mask[idx + d, idx] = True

        if dv is None:
            # no cluster structure: continue per-tile beyond the band
            for d in range(band_limit, nt):
                p = self.density_by_distance[d]
                if p <= 0.0:
                    continue
                hits = rng.random(nt - d) < p
                idx = np.nonzero(hits)[0]
                mask[idx + d, idx] = True
        else:
            # Inter-cluster blocks: one draw per cluster pair.
            nc = -(-nt // dv)
            for ca in range(nc):
                row_lo = ca * dv
                row_hi = min(nt, row_lo + dv)
                for cb in range(ca + 1, nc):
                    td = (cb - ca) * dv  # tile distance of the pair
                    if td <= dv:
                        continue  # covered by the band
                    p = (
                        self.density_by_distance[td]
                        if td < nt
                        else self.density_by_distance[nt - 1]
                    )
                    if p > 0.0 and rng.random() < p:
                        col_lo = row_lo
                        col_hi = row_hi
                        blk_lo = cb * dv
                        blk_hi = min(nt, blk_lo + dv)
                        mask[blk_lo:blk_hi, col_lo:col_hi] = True

        np.fill_diagonal(mask, True)
        return np.tril(mask)

    def rank_matrix(self, mask: np.ndarray | None = None) -> np.ndarray:
        """``(NT, NT)`` integer rank field (lower triangle; 0 if null)."""
        if mask is None:
            mask = self.initial_mask()
        nt = self.nt
        ranks = np.zeros((nt, nt), dtype=np.int64)
        for d in range(nt):
            if self.rank_by_distance[d] <= 0:
                continue
            idx = np.arange(nt - d)
            sel = mask[idx + d, idx]
            rows = idx[sel] + d
            cols = idx[sel]
            ranks[rows, cols] = self.rank_lookup(rows, cols)
        return ranks

    def initial_density(self, mask: np.ndarray | None = None) -> float:
        """Off-diagonal non-null ratio under (or expected without) a mask."""
        nt = self.nt
        if nt < 2:
            return 1.0
        total = nt * (nt - 1) // 2
        if mask is not None:
            return (int(np.count_nonzero(np.tril(mask, -1)))) / total
        expected = sum(
            float(self.density_by_distance[d]) * (nt - d) for d in range(1, nt)
        )
        return expected / total


def calibrate_rank_field(a: TLRMatrix, seed: int = 0) -> SyntheticRankField:
    """Empirical rank field from a really-compressed TLR matrix.

    Averages rank and occupancy over each sub-diagonal; the result
    regenerates structures statistically matching the input and can be
    rescaled to larger NT by :func:`SyntheticRankField` construction
    with interpolated profiles.
    """
    ranks = a.rank_matrix()
    nt = a.n_tiles
    rank_by_d = np.zeros(nt)
    dens_by_d = np.zeros(nt)
    for d in range(nt):
        diag = np.diagonal(ranks, offset=-d)
        nz = diag[diag > 0]
        dens_by_d[d] = len(nz) / len(diag)
        rank_by_d[d] = float(nz.mean()) if len(nz) else 0.0
    rank_by_d[0] = a.tile_size
    dens_by_d[0] = 1.0
    return SyntheticRankField(nt, a.tile_size, rank_by_d, dens_by_d, seed)


def analyze_mask_fast(mask: np.ndarray) -> dict[str, np.ndarray | float]:
    """Vectorized Algorithm 1 for large tile grids.

    Computes the symbolic fill-in closure and per-panel task counts
    without materializing per-tile index lists, so paper-scale grids
    (NT ~ 10^4) remain tractable.  Semantically identical to
    :func:`repro.core.analysis.analyze_ranks` (property-tested).

    Parameters
    ----------
    mask:
        Boolean ``(NT, NT)`` initial occupancy (lower triangle read).

    Returns
    -------
    dict with keys
        ``final_mask`` — occupancy after symbolic factorization;
        ``nnz_col`` — per-panel count of non-zero sub-panel tiles
        (TRSM/SYRK instances per panel);
        ``n_gemm_col`` — GEMM instances per panel;
        ``initial_density`` / ``final_density`` — off-diagonal ratios.
    """
    mask = np.asarray(mask, dtype=bool)
    nt = mask.shape[0]
    m = np.tril(mask).copy()
    np.fill_diagonal(m, True)
    initial_off = int(np.count_nonzero(np.tril(m, -1)))

    nnz_col = np.zeros(nt, dtype=np.int64)
    n_gemm_col = np.zeros(nt, dtype=np.int64)
    for k in range(nt - 1):
        rows = np.nonzero(m[k + 1 :, k])[0] + (k + 1)
        nnz_col[k] = len(rows)
        if len(rows) > 1:
            n_gemm_col[k] = len(rows) * (len(rows) - 1) // 2
            # Mark all (rows[i], rows[j]) with j < i non-zero: the
            # outer-product update of Algorithm 1's inner double loop.
            sub = m[np.ix_(rows, rows)]
            sub |= np.tri(len(rows), dtype=bool)
            m[np.ix_(rows, rows)] = sub
    final_off = int(np.count_nonzero(np.tril(m, -1)))
    total_off = nt * (nt - 1) // 2 if nt > 1 else 1
    return {
        "final_mask": m,
        "nnz_col": nnz_col,
        "n_gemm_col": n_gemm_col,
        "initial_density": initial_off / total_off,
        "final_density": final_off / total_off,
    }
