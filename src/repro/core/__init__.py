"""The paper's primary contribution.

* :mod:`repro.core.analysis` — Algorithm 1: the matrix analysis that
  identifies null tiles and fill-in for DAG trimming (Section VI).
* :mod:`repro.core.trimming` — enumeration of the (optionally trimmed)
  tile-Cholesky task graph.
* :mod:`repro.core.tlr_cholesky` — the numeric factorization driver
  running that graph on the in-process runtime engine.
* :mod:`repro.core.lorapo` / :mod:`repro.core.hicma_parsec` — the
  baseline and full-framework configurations used throughout the
  evaluation section.
* :mod:`repro.core.solver` — TLR triangular solves and full SPD solve.
* :mod:`repro.core.rank_model` — calibrated synthetic rank fields for
  at-scale simulation.
"""

from repro.core.analysis import TrimmingAnalysis, analyze_ranks
from repro.core.trimming import cholesky_tasks
from repro.core.tlr_cholesky import FactorizationResult, tlr_cholesky
from repro.core.solver import (
    logdet,
    solve_cholesky,
    solve_lower,
    solve_lower_transpose,
)
from repro.core.tlr_lu import analyze_ranks_lu, solve_lu, tlr_lu
from repro.core.lorapo import lorapo_factorize
from repro.core.hicma_parsec import hicma_parsec_factorize
from repro.core.rank_model import SyntheticRankField, calibrate_rank_field

__all__ = [
    "TrimmingAnalysis",
    "analyze_ranks",
    "cholesky_tasks",
    "FactorizationResult",
    "tlr_cholesky",
    "solve_cholesky",
    "solve_lower",
    "solve_lower_transpose",
    "logdet",
    "tlr_lu",
    "solve_lu",
    "analyze_ranks_lu",
    "lorapo_factorize",
    "hicma_parsec_factorize",
    "SyntheticRankField",
    "calibrate_rank_field",
]
