"""Lorapo baseline (Cao et al., PASC'20) — the paper's state of the art.

Lorapo runs TLR Cholesky over PaRSEC with:

* the **full dense DAG** — tasks on null tiles and their dependencies
  are still created, scheduled and released (no trimming);
* the **hybrid 1D+2D block-cyclic** data distribution (Fig. 3b);
* strict **owner-computes** execution mapping.

The numeric entry point reproduces this configuration in-process; the
:data:`LORAPO` config carries the distribution/trimming choices into
the distributed simulator so at-scale comparisons (Figs. 8-12) pit the
same two configurations against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.tlr_cholesky import FactorizationResult, tlr_cholesky
from repro.distribution import Distribution, HybridDistribution, square_grid
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.scheduler import Scheduler

__all__ = ["lorapo_factorize", "FrameworkConfig", "LORAPO"]


@dataclass(frozen=True)
class FrameworkConfig:
    """One framework configuration for the distributed simulator.

    ``data_distribution(nproc)`` places the tiles; if
    ``exec_distribution`` is given the runtime breaks owner-computes
    and runs each task where *that* distribution maps its output tile
    (Section VII-B), paying at most two extra transfers per tile.
    """

    name: str
    trim: bool
    data_distribution: Callable[[int], Distribution]
    exec_distribution: Callable[[int], Distribution] | None = None
    #: How the framework treats tiles that compressed to rank zero:
    #: ``None`` — true null tiles (HiCMA-PaRSEC: no storage, no flops;
    #: without trimming their tasks still exist as runtime no-ops);
    #: ``"mean"`` — no null-tile support (Lorapo: every off-diagonal
    #: tile is stored and processed as a low-rank tile whose rank is
    #: the mean non-null rank, the fixed-rank processing semantics of
    #: the PASC'20 implementation); a float pins the floor explicitly.
    null_rank_floor: str | float | None = None


def _hybrid(nproc: int) -> Distribution:
    p, q = square_grid(nproc)
    return HybridDistribution(p, q)


#: Simulator configuration of the Lorapo baseline.
LORAPO = FrameworkConfig(
    name="Lorapo",
    trim=False,
    data_distribution=_hybrid,
    exec_distribution=None,  # owner-computes
    null_rank_floor="mean",  # no null-tile support
)


def lorapo_factorize(
    a: TLRMatrix,
    scheduler: Scheduler | None = None,
    workers: int | None = None,
) -> FactorizationResult:
    """Numeric Lorapo factorization: full dense DAG, no trimming."""
    return tlr_cholesky(a, trim=False, scheduler=scheduler, workers=workers)
