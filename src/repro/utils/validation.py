"""Argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_square_matrix", "check_symmetric"]


def check_positive(name: str, value: float | int) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_square_matrix(name: str, a: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``a`` is a square 2D array."""
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {a.shape}")


def check_symmetric(name: str, a: np.ndarray, tol: float = 1e-10) -> None:
    """Raise ``ValueError`` unless ``a`` is symmetric within ``tol``."""
    check_square_matrix(name, a)
    scale = max(1.0, float(np.abs(a).max()))
    if not np.allclose(a, a.T, atol=tol * scale):
        raise ValueError(f"{name} is not symmetric (tol={tol})")
