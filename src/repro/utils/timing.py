"""Lightweight timing helpers used by drivers and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
