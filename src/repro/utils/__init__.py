"""Shared utilities: space-filling-curve orderings, timing, validation."""

from repro.utils.hilbert import hilbert_index_3d, hilbert_order
from repro.utils.morton import morton_index_3d, morton_order
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_positive,
    check_square_matrix,
    check_symmetric,
)

__all__ = [
    "hilbert_index_3d",
    "hilbert_order",
    "morton_index_3d",
    "morton_order",
    "Timer",
    "check_positive",
    "check_square_matrix",
    "check_symmetric",
]
