"""Morton (Z-order) space-filling-curve ordering for 3D point clouds.

Used as an ablation alternative to the Hilbert ordering of Section IV-C.
Both orderings cluster spatially-near points into nearby matrix indices,
which is what drives off-diagonal rank decay after tile compression.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_index_3d", "morton_order"]


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so consecutive bits are 3 apart."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_index_3d(coords: np.ndarray, bits: int = 21) -> np.ndarray:
    """Morton codes for integer grid coordinates.

    Parameters
    ----------
    coords:
        ``(n, 3)`` array of non-negative integers, each ``< 2**bits``.
    bits:
        Bits of resolution per dimension (max 21 → 63-bit codes).

    Returns
    -------
    ``(n,)`` uint64 array of interleaved Morton codes.
    """
    if bits < 1 or bits > 21:
        raise ValueError(f"bits must be in [1, 21], got {bits}")
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"coords must have shape (n, 3), got {coords.shape}")
    if np.any(coords < 0) or np.any(coords >= (1 << bits)):
        raise ValueError(f"coordinates out of range [0, 2**{bits})")
    x = _part1by2(coords[:, 0])
    y = _part1by2(coords[:, 1])
    z = _part1by2(coords[:, 2])
    return x | (y << np.uint64(1)) | (z << np.uint64(2))


def _quantize(points: np.ndarray, bits: int) -> np.ndarray:
    """Map float coordinates into the integer grid ``[0, 2**bits)``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    span[span == 0.0] = 1.0
    scale = (1 << bits) - 1
    grid = np.floor((points - lo) / span * scale).astype(np.int64)
    return np.clip(grid, 0, scale)


def morton_order(points: np.ndarray, bits: int = 21) -> np.ndarray:
    """Permutation sorting 3D float points along the Morton curve."""
    codes = morton_index_3d(_quantize(points, bits), bits=bits)
    return np.argsort(codes, kind="stable")
