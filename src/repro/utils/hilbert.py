"""3D Hilbert space-filling-curve ordering (Skilling's transpose algorithm).

The paper (Section IV-C) reorders mesh points along a Hilbert curve "to
preserve a good spatial locality, while improving compression rate and
reducing arithmetic complexity".  After this permutation, points that
are close in 3D space receive nearby matrix indices, so off-diagonal
tiles of the RBF operator couple well-separated clusters and compress
to low rank.

The implementation is a fully vectorized version of John Skilling's
"Programming the Hilbert curve" (AIP Conf. Proc. 707, 2004): it maps
integer grid coordinates to the "transposed" Hilbert representation and
then interleaves bits into a single scalar key.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_index_3d", "hilbert_order"]

_NDIM = 3


def hilbert_index_3d(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Hilbert curve index of 3D integer grid coordinates.

    Parameters
    ----------
    coords:
        ``(n, 3)`` array of non-negative integers, each ``< 2**bits``.
    bits:
        Bits of resolution per dimension (1..21; the returned key uses
        ``3 * bits`` bits).

    Returns
    -------
    ``(n,)`` uint64 array of Hilbert keys; sorting by the key walks the
    Hilbert curve.
    """
    if bits < 1 or bits > 21:
        raise ValueError(f"bits must be in [1, 21], got {bits}")
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != _NDIM:
        raise ValueError(f"coords must have shape (n, 3), got {coords.shape}")
    if np.any(coords < 0) or np.any(coords >= (1 << bits)):
        raise ValueError(f"coordinates out of range [0, 2**{bits})")

    x = coords.astype(np.uint64).copy()

    # --- axes -> transposed Hilbert representation (Skilling, inverse) ---
    m = np.uint64(1) << np.uint64(bits - 1)
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(_NDIM):
            hi = (x[:, i] & q) != 0
            # invert x[:,0] where bit set
            x[hi, 0] ^= p
            # exchange low bits of x[:,0] and x[:,i] elsewhere
            lo = ~hi
            t = (x[lo, 0] ^ x[lo, i]) & p
            x[lo, 0] ^= t
            x[lo, i] ^= t
        q >>= np.uint64(1)

    # Gray encode
    for i in range(1, _NDIM):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(len(x), dtype=np.uint64)
    q = m
    while q > np.uint64(1):
        mask = (x[:, _NDIM - 1] & q) != 0
        t[mask] ^= q - np.uint64(1)
        q >>= np.uint64(1)
    for i in range(_NDIM):
        x[:, i] ^= t

    # --- interleave transposed bits into a single key ---
    # Key layout (most significant first): X0[b-1] X1[b-1] X2[b-1] X0[b-2] ...
    key = np.zeros(len(x), dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        for i in range(_NDIM):
            key = (key << np.uint64(1)) | ((x[:, i] >> np.uint64(bit)) & np.uint64(1))
    return key


def hilbert_order(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Permutation that sorts 3D float points along the Hilbert curve.

    Parameters
    ----------
    points:
        ``(n, 3)`` float coordinates (any bounding box; internally
        quantized to a ``2**bits`` grid).
    bits:
        Grid resolution per dimension.

    Returns
    -------
    ``(n,)`` integer permutation ``perm`` such that ``points[perm]``
    walks the Hilbert curve.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != _NDIM:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    span[span == 0.0] = 1.0
    scale = (1 << bits) - 1
    grid = np.clip(
        np.floor((points - lo) / span * scale).astype(np.int64), 0, scale
    )
    keys = hilbert_index_3d(grid, bits=bits)
    return np.argsort(keys, kind="stable")
