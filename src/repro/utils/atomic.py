"""Crash-safe file writes: temp file + fsync + atomic rename.

A process killed mid-``write()`` leaves a torn file; if that file is a
cache entry or a checkpoint, every future run that trusts it is
poisoned.  POSIX gives the standard recipe: write the full payload to
a temporary file *in the same directory* (so the rename cannot cross
filesystems), fsync it, then ``os.replace`` onto the final name —
readers only ever observe the old complete file or the new complete
file, never a prefix.
"""

from __future__ import annotations

import io
import os
import tempfile
from collections.abc import Callable
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_via"]


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_via(
    path: str | os.PathLike, writer: Callable[[io.BufferedWriter], None]
) -> Path:
    """Stream ``writer(file_object)`` into ``path`` atomically.

    The writer receives a binary file object for a temp file alongside
    the target; on success the temp file is fsynced and renamed over
    ``path``.  On any failure the temp file is removed and the target
    is left untouched (old version intact, or still absent).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as f:
            writer(f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)
    return path


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    return atomic_write_via(path, lambda f: f.write(data))
