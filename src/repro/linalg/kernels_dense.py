"""Dense tile kernels: POTRF, TRSM, SYRK, GEMM.

These are the four kernels of tile Cholesky (Section IV-B) in their
dense form, applied to raw ndarrays.  The TLR variants in
:mod:`repro.linalg.kernels_tlr` dispatch to these when operands are
dense tiles.

Conventions (lower-triangular Cholesky, right-looking):

* ``potrf``:  ``A[k,k] = L[k,k] @ L[k,k].T``
* ``trsm``:   ``A[m,k] <- A[m,k] @ L[k,k]^-T``
* ``syrk``:   ``A[m,m] <- A[m,m] - A[m,k] @ A[m,k].T``
* ``gemm``:   ``A[m,n] <- A[m,n] - A[m,k] @ A[n,k].T``
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = ["potrf", "trsm", "syrk", "gemm"]


def potrf(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of an SPD block.

    Raises
    ------
    numpy.linalg.LinAlgError
        If the block is not numerically positive definite (e.g. the
        accuracy threshold was too loose for this operator).
    """
    try:
        return sla.cholesky(a, lower=True, check_finite=False)
    except sla.LinAlgError as exc:  # normalize exception type for callers
        raise np.linalg.LinAlgError(str(exc)) from exc


def trsm(l_kk: np.ndarray, a_mk: np.ndarray) -> np.ndarray:
    """Right triangular solve ``A[m,k] @ L[k,k]^-T``.

    Implemented as ``(L^-1 A^T)^T`` so SciPy's left-solve BLAS path is
    used on contiguous data.
    """
    return sla.solve_triangular(
        l_kk, a_mk.T, lower=True, trans="N", check_finite=False
    ).T


def syrk(c_mm: np.ndarray, a_mk: np.ndarray) -> np.ndarray:
    """Symmetric rank-b update ``C - A @ A.T`` (returns a new array)."""
    return c_mm - a_mk @ a_mk.T


def gemm(c_mn: np.ndarray, a_mk: np.ndarray, b_nk: np.ndarray) -> np.ndarray:
    """General update ``C - A @ B.T`` (returns a new array)."""
    return c_mn - a_mk @ b_nk.T
