"""Dense tile kernels: POTRF, TRSM, SYRK, GEMM.

These are the four kernels of tile Cholesky (Section IV-B) in their
dense form, applied to raw ndarrays.  The TLR variants in
:mod:`repro.linalg.kernels_tlr` dispatch to these when operands are
dense tiles.

Conventions (lower-triangular Cholesky, right-looking):

* ``potrf``:  ``A[k,k] = L[k,k] @ L[k,k].T``
* ``trsm``:   ``A[m,k] <- A[m,k] @ L[k,k]^-T``
* ``syrk``:   ``A[m,m] <- A[m,m] - A[m,k] @ A[m,k].T``
* ``gemm``:   ``A[m,n] <- A[m,n] - A[m,k] @ A[n,k].T``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

__all__ = [
    "potrf",
    "potrf_with_shift",
    "DiagonalShiftPolicy",
    "trsm",
    "syrk",
    "gemm",
]


@dataclass(frozen=True)
class DiagonalShiftPolicy:
    """Escalating diagonal regularization for borderline-SPD blocks.

    When POTRF fails, retry on ``A + shift * I`` with
    ``shift = initial_relative * mean(|diag(A)|)``, multiplying by
    ``growth`` up to ``max_attempts`` times.  This is the graceful-
    degradation move of adaptive TLR frameworks: a slightly indefinite
    diagonal block (compression error ate the positive definiteness)
    is regularized and reported instead of aborting the whole
    factorization.
    """

    max_attempts: int = 3
    initial_relative: float = 1.0e-12
    growth: float = 1.0e3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.initial_relative <= 0.0 or self.growth <= 1.0:
            raise ValueError(
                "initial_relative must be positive and growth > 1, got "
                f"{self.initial_relative} / {self.growth}"
            )


def potrf(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of an SPD block.

    Raises
    ------
    numpy.linalg.LinAlgError
        If the block is not numerically positive definite (e.g. the
        accuracy threshold was too loose for this operator).
    """
    try:
        return sla.cholesky(a, lower=True, check_finite=False)
    except sla.LinAlgError as exc:  # normalize exception type for callers
        raise np.linalg.LinAlgError(str(exc)) from exc


def potrf_with_shift(
    a: np.ndarray, policy: DiagonalShiftPolicy
) -> tuple[np.ndarray, float]:
    """POTRF with escalating diagonal shift on loss of definiteness.

    Returns ``(L, shift)`` where ``shift`` is 0.0 when the unshifted
    factorization succeeded.  Raises ``LinAlgError`` only after every
    shift attempt in the policy is exhausted.
    """
    try:
        return potrf(a), 0.0
    except np.linalg.LinAlgError:
        pass
    diag_scale = float(np.mean(np.abs(np.diag(a)))) or 1.0
    shift = policy.initial_relative * diag_scale
    eye = np.eye(a.shape[0], dtype=a.dtype)
    for _ in range(policy.max_attempts):
        try:
            return potrf(a + shift * eye), shift
        except np.linalg.LinAlgError:
            shift *= policy.growth
    raise np.linalg.LinAlgError(
        f"POTRF not positive definite after {policy.max_attempts} "
        f"diagonal shifts (last shift {shift / policy.growth:.3e})"
    )


def trsm(l_kk: np.ndarray, a_mk: np.ndarray) -> np.ndarray:
    """Right triangular solve ``A[m,k] @ L[k,k]^-T``.

    Implemented as ``(L^-1 A^T)^T`` so SciPy's left-solve BLAS path is
    used on contiguous data.
    """
    return sla.solve_triangular(
        l_kk, a_mk.T, lower=True, trans="N", check_finite=False
    ).T


def syrk(c_mm: np.ndarray, a_mk: np.ndarray) -> np.ndarray:
    """Symmetric rank-b update ``C - A @ A.T`` (returns a new array)."""
    return c_mm - a_mk @ a_mk.T


def gemm(c_mn: np.ndarray, a_mk: np.ndarray, b_nk: np.ndarray) -> np.ndarray:
    """General update ``C - A @ B.T`` (returns a new array)."""
    return c_mn - a_mk @ b_nk.T
