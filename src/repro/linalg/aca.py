"""Adaptive Cross Approximation — compressed-format matrix generation.

The paper's conclusion names its next step: "generate the matrix
directly in compressed format, without having to generate the full
dense structure" (ref. [38]).  This module implements that extension:
ACA with partial pivoting builds the ``U Vᵀ`` factors of an admissible
tile from O(k) sampled rows and columns of the kernel — the dense tile
is never materialized, so generation+compression drops from
``O(b^2) + O(b^3)`` to ``O(b k^2)`` per tile.

The implementation follows the classical partially-pivoted ACA
(Bebendorf, 2000) with the stopping criterion
``|u_k| |v_k| <= eps * |A_k|_F`` (approximate Frobenius norm of the
accumulated approximant), plus an optional SVD re-truncation of the
cross factors to restore quasi-optimal ranks.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.config import DTYPE
from repro.linalg.lowrank import LowRankFactor, recompress

__all__ = ["aca_partial", "ACAGenerator"]

#: A row/column sampler: row(i) -> (n,) array, col(j) -> (m,) array.
RowFunc = Callable[[int], np.ndarray]
ColFunc = Callable[[int], np.ndarray]


def aca_partial(
    row: RowFunc,
    col: ColFunc,
    shape: tuple[int, int],
    tol: float,
    max_rank: int | None = None,
    recompress_result: bool = True,
) -> LowRankFactor | None:
    """Partially-pivoted ACA of an implicitly-given matrix block.

    Parameters
    ----------
    row, col:
        Callables evaluating one full row / column of the block.
    shape:
        Block dimensions ``(m, n)``.
    tol:
        Target accuracy (Frobenius-relative stopping threshold; also
        used for the final rounding step).
    max_rank:
        Abort threshold: if the cross rank reaches this, the block is
        deemed inadmissible and ``None`` is returned — callers fall
        back to dense generation (see :class:`ACAGenerator`).
    recompress_result:
        Round the cross factors with QR+SVD (ACA overshoots the
        minimal rank slightly).

    Returns
    -------
    ``LowRankFactor`` or ``None``.  ``None`` means either *numerically
    zero* (first pivot below threshold) or *inadmissible* (``max_rank``
    hit); :class:`ACAGenerator` disambiguates with a row probe and
    applies the dense fallback policy.
    """
    m, n = shape
    if max_rank is None:
        max_rank = min(m, n) // 2
    max_rank = max(1, min(max_rank, min(m, n)))

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    frob2 = 0.0  # squared Frobenius norm of the accumulated approximant

    i = 0  # first pivot row
    for _ in range(max_rank):
        # residual row i = A[i,:] - sum_k u_k[i] v_k
        r_i = np.asarray(row(i), dtype=DTYPE).copy()
        for u, v in zip(us, vs):
            r_i -= u[i] * v
        r_i[list(used_cols)] = 0.0
        j = int(np.argmax(np.abs(r_i)))
        pivot = r_i[j]
        if abs(pivot) < 1e-300:
            break
        # residual column j = A[:,j] - sum_k v_k[j] u_k
        c_j = np.asarray(col(j), dtype=DTYPE).copy()
        for u, v in zip(us, vs):
            c_j -= v[j] * u
        u_new = c_j / pivot
        v_new = r_i
        used_rows.add(i)
        used_cols.add(j)

        norm_u = np.linalg.norm(u_new)
        norm_v = np.linalg.norm(v_new)
        # update the running Frobenius estimate of the approximant
        cross = sum(
            float((u_new @ u) * (v @ v_new)) for u, v in zip(us, vs)
        )
        frob2 += (norm_u * norm_v) ** 2 + 2.0 * cross
        us.append(u_new)
        vs.append(v_new)

        # stopping: the new term is below tol relative to the block
        if norm_u * norm_v <= tol * max(np.sqrt(max(frob2, 0.0)), tol):
            break

        # next pivot row: largest residual entry of the new column,
        # excluding used rows
        masked = np.abs(u_new).copy()
        masked[list(used_rows)] = -1.0
        i = int(np.argmax(masked))
    else:
        return None  # max_rank hit -> inadmissible

    if not us:
        return None  # numerically zero block
    if len(us) == 1 and np.linalg.norm(us[0]) * np.linalg.norm(vs[0]) <= tol:
        return None  # zero to tolerance

    factor = LowRankFactor(
        np.ascontiguousarray(np.column_stack(us)),
        np.ascontiguousarray(np.column_stack(vs)),
    )
    if recompress_result:
        return recompress(factor, tol)
    return factor


class ACAGenerator:
    """Compressed-format generation of an RBF operator (future work
    of the paper, implemented).

    Wraps an :class:`~repro.kernels.matgen.RBFMatrixGenerator`: each
    off-diagonal tile is built with :func:`aca_partial` from O(k)
    kernel rows/columns; tiles where ACA hits the rank budget fall
    back to dense generation + SVD compression (near-diagonal,
    inadmissible blocks).  Diagonal tiles are always generated dense.
    """

    def __init__(self, generator, accuracy: float, max_rank: int | None = None):
        from repro.kernels.matgen import RBFMatrixGenerator

        if not isinstance(generator, RBFMatrixGenerator):
            raise TypeError("ACAGenerator wraps an RBFMatrixGenerator")
        self.gen = generator
        self.accuracy = float(accuracy)
        b = generator.tile_size
        self.max_rank = max_rank if max_rank is not None else max(1, b // 2)
        #: statistics: how many tiles took each path
        self.stats = {"aca": 0, "dense_fallback": 0, "null": 0, "diagonal": 0}

    def _samplers(self, ti: int, tj: int) -> tuple[RowFunc, ColFunc, tuple[int, int]]:
        gen = self.gen
        lo_i, hi_i = gen.tile_range(ti)
        lo_j, hi_j = gen.tile_range(tj)
        pts = gen.points
        delta = gen.shape_parameter
        kern = gen.kernel

        def row(i: int) -> np.ndarray:
            d = np.linalg.norm(pts[lo_j:hi_j] - pts[lo_i + i], axis=1)
            return kern.scaled(d, delta)

        def col(j: int) -> np.ndarray:
            d = np.linalg.norm(pts[lo_i:hi_i] - pts[lo_j + j], axis=1)
            return kern.scaled(d, delta)

        return row, col, (hi_i - lo_i, hi_j - lo_j)

    def tile(self, ti: int, tj: int):
        """Compressed tile: LowRankFactor, dense ndarray, or None.

        Return conventions match
        :func:`repro.linalg.lowrank.compress_block`, so the result
        plugs directly into :meth:`TLRMatrix` construction via
        :func:`repro.linalg.tile.as_tile`.
        """
        if ti == tj:
            self.stats["diagonal"] += 1
            return self.gen.tile(ti, tj)
        row, col, shape = self._samplers(ti, tj)
        factor = aca_partial(row, col, shape, self.accuracy, self.max_rank)
        if factor is None:
            # distinguish zero from inadmissible with one row probe
            probe = row(0)
            if np.abs(probe).max() <= self.accuracy:
                self.stats["null"] += 1
                return None
            self.stats["dense_fallback"] += 1
            from repro.linalg.lowrank import compress_block

            return compress_block(
                self.gen.tile(ti, tj), self.accuracy, max_rank=self.max_rank
            )
        self.stats["aca"] += 1
        return factor

    def compress(self):
        """Build the full TLR matrix in compressed form directly."""
        from repro.linalg.tile import as_tile
        from repro.linalg.tile_matrix import TLRMatrix

        gen = self.gen
        nt = gen.n_tiles
        tiles = {}
        for k in range(nt):
            for m in range(k, nt):
                value = self.tile(m, k)
                lo_m, hi_m = gen.tile_range(m)
                lo_k, hi_k = gen.tile_range(k)
                shape = (hi_m - lo_m, hi_k - lo_k)
                if m == k:
                    from repro.linalg.tile import DenseTile

                    tiles[(m, k)] = DenseTile(value)
                else:
                    tiles[(m, k)] = as_tile(value, shape)
        return TLRMatrix(gen.n, gen.tile_size, tiles, self.accuracy, self.max_rank)
