"""Per-tile mixed-precision storage policy.

The fixed-accuracy compression threshold already accepts a truncation
error of ``eps`` per tile (HiCMA convention), so any *storage*
perturbation safely below that threshold is numerically free.  Casting
a low-rank factor pair to fp32 perturbs the reconstructed tile by at
most ``~eps_fp32 * ||tile||_2``; a tile whose spectral norm satisfies

    ``||tile||_2 * eps_fp32 <= margin * eps``

can therefore be stored in single precision at half the bytes without
moving the solve residual.  Diagonal tiles, band tiles (``|m - k| <=
band_width``) and dense tiles always stay fp64: they carry the
near-field mass and feed POTRF directly, where conditioning matters.

Compute precision is untouched — kernels promote fp32 factors to fp64
on contact with fp64 operands, and the promotion is deterministic, so
the bitwise-reproducibility contract across execution engines holds
for mixed-precision operators exactly as it does for fp64 ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.config import (
    DTYPE,
    MIXED_PRECISION_BAND,
    MIXED_PRECISION_MARGIN,
    STORAGE_DTYPE_SINGLE,
    STORAGE_PRECISION_ENV,
)
from repro.linalg.lowrank import LowRankFactor

__all__ = [
    "StoragePolicy",
    "resolve_storage",
    "downcast_factor",
    "factor_significance",
]

#: unit roundoff of the reduced-precision storage dtype
_EPS_SINGLE = float(np.finfo(STORAGE_DTYPE_SINGLE).eps)

_MODES = ("fp64", "mixed")


@dataclass(frozen=True)
class StoragePolicy:
    """Which dtype each stored tile gets (``fp64`` or ``mixed``).

    ``band_width`` tiles either side of the diagonal always stay fp64;
    off-band low-rank tiles are downcast to fp32 only when their
    significance (spectral norm) passes the margin test above.
    """

    mode: str = "fp64"
    band_width: int = MIXED_PRECISION_BAND
    margin: float = MIXED_PRECISION_MARGIN

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"storage mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.band_width < 0:
            raise ValueError(
                f"band_width must be >= 0, got {self.band_width}"
            )
        if self.margin <= 0.0:
            raise ValueError(f"margin must be positive, got {self.margin}")

    @property
    def mixed(self) -> bool:
        return self.mode == "mixed"

    def off_band(self, m: int, k: int) -> bool:
        return abs(m - k) > self.band_width

    def storage_dtype(
        self, m: int, k: int, significance: float, accuracy: float
    ) -> np.dtype:
        """Storage dtype for tile ``(m, k)`` with spectral norm
        ``significance`` under compression threshold ``accuracy``."""
        if not self.mixed or not self.off_band(m, k):
            return np.dtype(DTYPE)
        if significance * _EPS_SINGLE <= self.margin * accuracy:
            return np.dtype(STORAGE_DTYPE_SINGLE)
        return np.dtype(DTYPE)


def resolve_storage(value: StoragePolicy | str | None) -> StoragePolicy:
    """Coerce a policy spec: an explicit policy or mode name wins, then
    ``$REPRO_STORAGE_PRECISION``, then the fp64 default."""
    if isinstance(value, StoragePolicy):
        return value
    if value is None:
        value = os.environ.get(STORAGE_PRECISION_ENV, "").strip() or "fp64"
    return StoragePolicy(mode=str(value))


def factor_significance(factor: LowRankFactor) -> float:
    """Spectral norm of a compression-produced factor, for free.

    Both the SVD and the randomized compressors return ``u = U_k s_k``
    with orthonormal ``U_k`` columns ordered by singular value, so the
    first column's 2-norm *is* ``sigma_1 = ||tile||_2``.
    """
    return float(np.linalg.norm(np.asarray(factor.u[:, 0], dtype=DTYPE)))


def downcast_factor(factor: LowRankFactor, dtype) -> LowRankFactor:
    """The same factor with both arrays stored as ``dtype``."""
    dtype = np.dtype(dtype)
    if factor.u.dtype == dtype and factor.v.dtype == dtype:
        return factor
    return LowRankFactor(
        np.ascontiguousarray(factor.u, dtype=dtype),
        np.ascontiguousarray(factor.v, dtype=dtype),
    )
