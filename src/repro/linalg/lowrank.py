"""Low-rank factors, truncated-SVD and randomized compression, rounding.

A rank-``k`` tile stores two tall-and-skinny factors ``U (m x k)`` and
``V (n x k)`` with ``block = U @ V.T`` (Section IV-B).  Compression
keeps the most significant singular values up to the accuracy
threshold; a tile whose largest singular value falls below the
threshold *disappears* (rank 0 → null), which is the data sparsity the
paper exploits.

Two compression methods coexist behind :class:`CompressionPolicy`:

* ``"svd"`` — exact truncated SVD (the baseline), with a cheap
  deterministic over-rank pre-probe so blocks destined for the dense
  fallback skip the full ``O(mn min(m,n))`` decomposition;
* ``"rand"`` — blocked adaptive randomized range-finder
  (H2OPUS-TLR style): cost scales with the *detected* rank instead of
  the tile size, with incremental rank detection against the same
  absolute/relative tolerance and a direct-SVD fallback once the
  sampled rank crosses the crossover point.

Randomized results are a pure function of ``(block, tol, seed)``: the
Gaussian test matrices come from a ``PCG64`` stream seeded per tile
(:func:`derive_tile_seed` — operator seed root + tile coordinates +
update generation), so serial, threaded and process-pool engines draw
identical samples and produce bitwise-identical factors.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.config import COMPRESSION_ENV, DEFAULT_COMPRESSION, DTYPE

__all__ = [
    "LowRankFactor",
    "CompressionPolicy",
    "CompressionStats",
    "resolve_compression",
    "derive_tile_seed",
    "truncated_svd",
    "randomized_compress",
    "compress_block",
    "recompress",
    "randomized_recompress",
]


@dataclass(frozen=True)
class LowRankFactor:
    """Factor pair representing ``block = u @ v.T``.

    ``u`` has shape ``(m, k)`` and ``v`` has shape ``(n, k)`` with
    ``k >= 1``; rank-0 blocks are represented by ``None`` elsewhere,
    never by an empty factor.

    The arrays are stored as given — **no defensive copy, no layout
    normalization** — so factors can wrap views over external buffers
    (e.g. the shared-memory tile arena) for free.  The flip side is an
    immutability contract: holders must never mutate ``u``/``v`` in
    place, and kernels that reuse an operand's factor share it rather
    than copying.
    """

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.u.ndim != 2 or self.v.ndim != 2:
            raise ValueError("u and v must be 2D arrays")
        if self.u.shape[1] != self.v.shape[1]:
            raise ValueError(
                f"rank mismatch: u has {self.u.shape[1]} columns, "
                f"v has {self.v.shape[1]}"
            )
        if self.u.shape[1] == 0:
            raise ValueError("rank-0 factors are not allowed; use a null tile")

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def nbytes(self) -> int:
        return self.u.nbytes + self.v.nbytes

    def to_dense(self) -> np.ndarray:
        return self.u @ self.v.T

    def transpose(self) -> "LowRankFactor":
        """Factors of the transposed block (swap u and v)."""
        return LowRankFactor(self.v, self.u)


def _truncation_rank(s: np.ndarray, tol: float, relative: bool) -> int:
    """Number of singular values kept by the accuracy threshold."""
    if len(s) == 0:
        return 0
    cutoff = tol * s[0] if relative else tol
    return int(np.count_nonzero(s > cutoff))


# ---------------------------------------------------------------------
# compression policy, deterministic seeding and stats
# ---------------------------------------------------------------------

_METHODS = ("svd", "rand")


def derive_tile_seed(root: int, m: int, k: int, gen: int = 0) -> int:
    """Deterministic 64-bit seed for one tile's random sampling.

    ``root`` identifies the operator (e.g. its spec fingerprint),
    ``(m, k)`` the tile, and ``gen`` the update generation: 0 for the
    build-time compression, ``step + 1`` for the GEMM recompression at
    elimination step ``step``.  The DAG serializes all writes to a
    tile, so the generation sequence — and therefore every seed — is
    identical no matter which engine or worker count executes the
    graph.  Hash-based (BLAKE2b), so neighbouring tiles get unrelated
    streams.
    """
    h = hashlib.blake2b(f"{root}|{m}|{k}|{gen}".encode(), digest_size=8)
    return int.from_bytes(h.digest(), "little")


@dataclass(frozen=True)
class CompressionPolicy:
    """How dense blocks are compressed and accumulated factors rounded.

    ``method="svd"`` is the exact baseline; ``method="rand"`` routes
    both build-time compression and GEMM rank rounding through the
    adaptive randomized paths below.  ``seed_root`` anchors the
    deterministic per-tile seed derivation; ``sample_block`` is the
    range-finder panel width, ``oversample`` the cushion past the
    detected rank, and ``crossover`` the fraction of the short tile
    dimension (or of the accumulated rank, for rounding) past which
    the randomized path cedes to the direct SVD.
    """

    method: str = DEFAULT_COMPRESSION
    seed_root: int = 0
    sample_block: int = 16
    oversample: int = 8
    crossover: float = 0.5

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(
                f"compression method must be one of {_METHODS}, "
                f"got {self.method!r}"
            )
        if self.sample_block < 1:
            raise ValueError(
                f"sample_block must be >= 1, got {self.sample_block}"
            )
        if self.oversample < 0:
            raise ValueError(
                f"oversample must be >= 0, got {self.oversample}"
            )
        if not 0.0 < self.crossover <= 1.0:
            raise ValueError(
                f"crossover must be in (0, 1], got {self.crossover}"
            )

    @property
    def randomized(self) -> bool:
        return self.method == "rand"

    def tile_seed(self, m: int, k: int, gen: int = 0) -> int:
        return derive_tile_seed(self.seed_root, m, k, gen)


def resolve_compression(
    value: CompressionPolicy | str | None, seed_root: int = 0
) -> CompressionPolicy:
    """Coerce a method spec: an explicit policy or method name wins,
    then ``$REPRO_COMPRESSION``, then the svd default."""
    if isinstance(value, CompressionPolicy):
        return value
    if value is None:
        value = (
            os.environ.get(COMPRESSION_ENV, "").strip() or DEFAULT_COMPRESSION
        )
    return CompressionPolicy(method=str(value), seed_root=int(seed_root))


class CompressionStats:
    """Mutable per-build counters (method mix, sampled-rank profile).

    Filled by :meth:`~repro.linalg.tile_matrix.TLRMatrix.compress` and
    exported by the compression benchmark; process-local (a forked
    worker's counts stay in the worker), so treat the numbers as
    build-time observability, not an exact global ledger.
    """

    __slots__ = (
        "svd_tiles",
        "rand_tiles",
        "rand_dense",
        "rand_svd_fallback",
        "probe_dense",
        "sampled_tiles",
        "sampled_rank_sum",
        "sampled_rank_max",
        "fp32_tiles",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def record_sampled(self, sampled: int) -> None:
        self.sampled_tiles += 1
        self.sampled_rank_sum += int(sampled)
        self.sampled_rank_max = max(self.sampled_rank_max, int(sampled))

    def to_dict(self) -> dict:
        out = {name: int(getattr(self, name)) for name in self.__slots__}
        out["sampled_rank_avg"] = (
            self.sampled_rank_sum / self.sampled_tiles
            if self.sampled_tiles
            else 0.0
        )
        return out


def truncated_svd(
    block: np.ndarray, tol: float, relative: bool = False
) -> LowRankFactor | None:
    """Compress a dense block by truncated SVD.

    Parameters
    ----------
    block:
        Dense ``(m, n)`` array.
    tol:
        Accuracy threshold: singular values ``<= tol`` (absolute, the
        HiCMA fixed-accuracy convention) or ``<= tol * sigma_1``
        (``relative=True``) are discarded.

    Returns
    -------
    A :class:`LowRankFactor` absorbing the singular values into ``u``
    (``u = U_k * s_k``, ``v = V_k``), or ``None`` if every singular
    value is below the threshold (the tile *disappears*).
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    block = np.asarray(block, dtype=DTYPE)
    u, s, vt = sla.svd(block, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    return LowRankFactor(
        np.ascontiguousarray(u[:, :k] * s[:k]),
        np.ascontiguousarray(vt[:k].T),
    )


def randomized_compress(
    block: np.ndarray,
    tol: float,
    relative: bool = False,
    max_rank: int | None = None,
    seed: int = 0,
    sample_block: int = 16,
    oversample: int = 8,
    crossover: float = 0.5,
    stats: CompressionStats | None = None,
) -> LowRankFactor | np.ndarray | None:
    """Compress a dense block with a blocked adaptive range-finder.

    Gaussian panels of ``sample_block`` columns are drawn from a
    ``PCG64(seed)`` stream, projected against the basis built so far,
    and folded in until the explicit residual's Frobenius norm drops
    below the threshold — at which point *every* remaining singular
    value is below the SVD truncation cutoff, so the final small SVD
    of ``Q^T A`` applies the exact HiCMA rule to a spectrum that
    contains everything the full SVD would have kept.  Cost is
    ``O(mn(k + p))`` for detected rank ``k``, versus
    ``O(mn min(m, n))`` for the full SVD.

    Rank detection is capped: past ``max_rank + oversample`` columns
    the block is declared over-rank and returned dense (exact, no
    decomposition wasted); past ``crossover * min(m, n)`` columns the
    block is not meaningfully low-rank and the direct SVD takes over.

    The result is a pure function of ``(block, tol, seed)`` — same
    inputs, same factor, bitwise, on every execution engine.
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    block = np.asarray(block, dtype=DTYPE)
    m, n = block.shape
    short = min(m, n)
    fnorm = float(np.linalg.norm(block))
    stop = tol * fnorm if relative else tol
    if fnorm <= stop or fnorm == 0.0:
        return None  # sigma_1 <= ||A||_F <= cutoff: the tile disappears

    cross_cap = max(1, int(math.ceil(crossover * short)))
    cap = cross_cap
    if max_rank is not None:
        cap = min(cap, max_rank + oversample)

    rng = np.random.Generator(np.random.PCG64(seed))
    q_basis: np.ndarray | None = None
    resid = np.array(block, dtype=DTYPE, copy=True)
    sampled = 0
    converged = False
    while sampled < cap:
        p = min(sample_block, cap - sampled)
        omega = rng.standard_normal((n, p))
        y = resid @ omega
        if q_basis is not None:
            # re-orthogonalize against the accumulated basis (the
            # explicit residual keeps this nearly orthogonal already;
            # the projection mops up roundoff drift)
            y -= q_basis @ (q_basis.T @ y)
        qj = sla.qr(y, mode="economic", check_finite=False)[0]
        q_basis = qj if q_basis is None else np.hstack([q_basis, qj])
        resid -= qj @ (qj.T @ block)
        sampled += p
        if float(np.linalg.norm(resid)) <= stop:
            converged = True
            break

    if stats is not None:
        stats.record_sampled(sampled)
    if not converged:
        if max_rank is not None and cap < cross_cap:
            # over the rank budget before the crossover: the dense
            # fallback is exact, so skip any decomposition entirely
            if stats is not None:
                stats.rand_dense += 1
            return np.asarray(block, dtype=DTYPE)
        # not meaningfully low-rank: direct SVD decides (and applies
        # the identical truncation rule)
        if stats is not None:
            stats.rand_svd_fallback += 1
        factor = truncated_svd(block, tol, relative=relative)
        if factor is None:
            return None
        if max_rank is not None and factor.rank > max_rank:
            return np.asarray(block, dtype=DTYPE)
        return factor

    core = q_basis.T @ block
    u, s, vt = sla.svd(core, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    if max_rank is not None and k > max_rank:
        if stats is not None:
            stats.rand_dense += 1
        return np.asarray(block, dtype=DTYPE)
    return LowRankFactor(
        np.ascontiguousarray(q_basis @ (u[:, :k] * s[:k])),
        np.ascontiguousarray(vt[:k].T),
    )


#: over-rank pre-probe tuning: sampling cushion past max_rank, and the
#: multiple of the rank<=max_rank residual bound that must be exceeded
#: before the probe declares the block dense without a full SVD
_PROBE_OVERSAMPLE = 8
_PROBE_SAFETY = 2.0


def _probe_over_rank(block: np.ndarray, tol: float, max_rank: int) -> bool:
    """Cheap deterministic test that a block's rank clearly exceeds
    ``max_rank`` (absolute tolerance only).

    Projects the block onto a sampled ``max_rank + oversample``-column
    range and measures the left-over energy via
    ``||A||_F^2 - ||Q^T A||_F^2``.  A block that *is* compressible to
    ``max_rank`` leaves at most ``tol * sqrt(min(m,n) - max_rank)``
    behind (every discarded singular value <= tol), so a residual
    beyond ``_PROBE_SAFETY`` times that bound proves the dense
    fallback is inevitable — without paying the full SVD it would
    throw away.  Borderline blocks keep taking the exact SVD path.

    The Gaussian samples are seeded from the block's own bytes, so the
    probe is a pure function of the block — identical decisions on
    every engine, no seed plumbing required.
    """
    m, n = block.shape
    short = min(m, n)
    probe_cols = max_rank + _PROBE_OVERSAMPLE
    if 3 * probe_cols >= short:
        return False  # probe would cost a comparable fraction of the SVD
    seed = int.from_bytes(
        hashlib.blake2b(
            np.ascontiguousarray(block).tobytes(), digest_size=8
        ).digest(),
        "little",
    )
    rng = np.random.Generator(np.random.PCG64(seed))
    omega = rng.standard_normal((n, probe_cols))
    q = sla.qr(block @ omega, mode="economic", check_finite=False)[0]
    total = float(np.linalg.norm(block)) ** 2
    captured = float(np.linalg.norm(q.T @ block)) ** 2
    resid = math.sqrt(max(total - captured, 0.0))
    bound = tol * math.sqrt(max(short - max_rank, 1))
    return resid > _PROBE_SAFETY * bound


def compress_block(
    block: np.ndarray,
    tol: float,
    max_rank: int | None = None,
    relative: bool = False,
    policy: CompressionPolicy | None = None,
    seed: int = 0,
    stats: CompressionStats | None = None,
) -> LowRankFactor | np.ndarray | None:
    """Compress a dense block, falling back to dense for high ranks.

    Returns ``None`` (null tile) when the block is negligible, a
    :class:`LowRankFactor` when the numerical rank is at most
    ``max_rank``, and the original dense block otherwise — mirroring
    HiCMA's maxrank convention (config ``DENSE_RANK_FRACTION``).

    ``policy`` selects the method: randomized policies route through
    :func:`randomized_compress` with the given per-tile ``seed``; the
    default SVD path first runs a cheap over-rank pre-probe so blocks
    headed for the dense fallback skip the full decomposition.
    """
    if policy is not None and policy.randomized:
        if stats is not None:
            stats.rand_tiles += 1
        return randomized_compress(
            block,
            tol,
            relative=relative,
            max_rank=max_rank,
            seed=seed,
            sample_block=policy.sample_block,
            oversample=policy.oversample,
            crossover=policy.crossover,
            stats=stats,
        )
    if stats is not None:
        stats.svd_tiles += 1
    if (
        max_rank is not None
        and not relative
        and _probe_over_rank(np.asarray(block, dtype=DTYPE), tol, max_rank)
    ):
        if stats is not None:
            stats.probe_dense += 1
        return np.asarray(block, dtype=DTYPE)
    factor = truncated_svd(block, tol, relative=relative)
    if factor is None:
        return None
    if max_rank is not None and factor.rank > max_rank:
        return np.asarray(block, dtype=DTYPE)
    return factor


def recompress(
    factor: LowRankFactor, tol: float, relative: bool = False
) -> LowRankFactor | None:
    """Round a (possibly inflated) low-rank factor back to minimal rank.

    After a TLR GEMM the accumulated factors have rank
    ``k_C + min(k_A, k_B)``; this rounding step restores the numerical
    rank with QR factorizations of both factors followed by an SVD of
    the small core — the standard low-rank rounding used by HiCMA.

    Cost: ``O((m+n) K^2 + K^3)`` for accumulated rank ``K``, versus
    ``O(m n min(m, n))`` for recompressing the dense block.  Two fast
    paths: a rank-0 factor (possible for duck-typed callers; the
    :class:`LowRankFactor` invariant forbids it) has nothing to round
    and is returned untouched, and once ``K`` exceeds half the tile
    dimension the economy QR-QR-SVD pipeline costs more than a single
    dense SVD of the materialized block, so the dense route wins (the
    truncation rule is identical, so the result is the same factor).
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    if factor.rank == 0:
        return factor
    short_side = min(factor.shape)
    if factor.rank >= max(1, short_side // 2):
        return truncated_svd(factor.to_dense(), tol, relative=relative)
    # promote fp32-stored factors: rounding always computes in DTYPE
    # (no-op, no copy, for the usual fp64 inputs)
    qu, ru = sla.qr(
        np.asarray(factor.u, dtype=DTYPE), mode="economic", check_finite=False
    )
    qv, rv = sla.qr(
        np.asarray(factor.v, dtype=DTYPE), mode="economic", check_finite=False
    )
    core = ru @ rv.T
    u, s, vt = sla.svd(core, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    return LowRankFactor(
        np.ascontiguousarray(qu @ (u[:, :k] * s[:k])),
        np.ascontiguousarray(qv @ vt[:k].T),
    )


#: convergence slack for the stochastic residual estimator used by
#: randomized rounding: stop only once the estimated residual is this
#: fraction of the tolerance, absorbing the estimator's variance
_RECOMPRESS_EST_SAFETY = 0.5


def randomized_recompress(
    factor: LowRankFactor,
    tol: float,
    seed: int = 0,
    relative: bool = False,
    sample_block: int = 16,
    oversample: int = 8,
    crossover: float = 0.5,
) -> LowRankFactor | None:
    """Randomized rank rounding of an accumulated factor pair.

    After a TLR GEMM the stacked factors carry rank
    ``K = k_C + min(k_A, k_B)`` but the numerical rank is usually close
    to ``k_C``.  The exact QR-QR-SVD pipeline pays ``O((m+n) K^2)``
    regardless; this path samples the product ``U V^T`` *in factored
    form* — ``y = U (V^T omega) - Q (C (V^T omega))`` with
    ``C = Q^T U`` maintained incrementally, ``O((m+n) K p)`` per
    panel — so the cost scales with the detected rank ``k`` instead of
    the accumulated rank ``K``.

    Each fresh panel doubles as a stochastic residual estimator
    (``E||R omega_i||^2 = ||R||_F^2``); sampling stops once the
    estimate is safely below the threshold and the small SVD of
    ``C V^T`` applies the standard truncation rule.  Factors whose
    accumulated rank is already small, or whose detected rank crosses
    ``crossover * K`` (where the exact pipeline is no longer more
    expensive), are delegated to :func:`recompress` — same truncation
    rule, exact arithmetic.

    Deterministic: the sample stream is ``PCG64(seed)``, with ``seed``
    derived per tile and generation, so every engine rounds every
    accumulation identically.
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    if factor.rank == 0:
        return factor
    m, n = factor.shape
    big_k = factor.rank
    # Small accumulations and not-actually-low ranks: the exact
    # pipeline is as cheap (or cheaper) and needs no estimator slack.
    if big_k <= sample_block or big_k >= max(1, min(m, n) // 2):
        return recompress(factor, tol, relative=relative)

    u = np.asarray(factor.u, dtype=DTYPE)
    v = np.asarray(factor.v, dtype=DTYPE)
    cap = max(1, int(math.ceil(crossover * big_k)))
    rng = np.random.Generator(np.random.PCG64(seed))
    q_basis: np.ndarray | None = None
    coeff: np.ndarray | None = None  # C = Q^T U, maintained incrementally
    sampled = 0
    converged = False
    stop_scale: float | None = None  # ||A||_F estimate for relative mode
    while sampled < cap:
        p = min(sample_block, cap - sampled)
        omega = rng.standard_normal((n, p))
        t = v.T @ omega  # K x p — never materializes the m x n product
        y = u @ t
        if q_basis is not None:
            y -= q_basis @ (coeff @ t)
        # the fresh panel estimates the *current* residual norm:
        # each column is R omega_i with E||R omega_i||^2 = ||R||_F^2
        est = math.sqrt(float(np.mean(np.sum(y * y, axis=0))))
        if stop_scale is None:
            stop_scale = est  # first panel: R = A, so est ~ ||A||_F
        stop = tol * stop_scale if relative else tol
        if q_basis is not None:
            y -= q_basis @ (q_basis.T @ y)
        qj = sla.qr(y, mode="economic", check_finite=False)[0]
        cj = qj.T @ u
        q_basis = qj if q_basis is None else np.hstack([q_basis, qj])
        coeff = cj if coeff is None else np.vstack([coeff, cj])
        sampled += p
        if est <= _RECOMPRESS_EST_SAFETY * stop and sampled > p:
            converged = True
            break
    if not converged:
        # detected rank crossed the crossover point: the economy
        # QR-QR-SVD pipeline wins from here (identical truncation)
        return recompress(factor, tol, relative=relative)
    core = coeff @ v.T  # l x n
    u2, s, vt = sla.svd(core, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    return LowRankFactor(
        np.ascontiguousarray(q_basis @ (u2[:, :k] * s[:k])),
        np.ascontiguousarray(vt[:k].T),
    )
