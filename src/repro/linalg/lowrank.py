"""Low-rank factors, truncated-SVD compression and QR-based rounding.

A rank-``k`` tile stores two tall-and-skinny factors ``U (m x k)`` and
``V (n x k)`` with ``block = U @ V.T`` (Section IV-B).  Compression
keeps the most significant singular values up to the accuracy
threshold; a tile whose largest singular value falls below the
threshold *disappears* (rank 0 → null), which is the data sparsity the
paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.config import DTYPE

__all__ = ["LowRankFactor", "truncated_svd", "compress_block", "recompress"]


@dataclass(frozen=True)
class LowRankFactor:
    """Factor pair representing ``block = u @ v.T``.

    ``u`` has shape ``(m, k)`` and ``v`` has shape ``(n, k)`` with
    ``k >= 1``; rank-0 blocks are represented by ``None`` elsewhere,
    never by an empty factor.

    The arrays are stored as given — **no defensive copy, no layout
    normalization** — so factors can wrap views over external buffers
    (e.g. the shared-memory tile arena) for free.  The flip side is an
    immutability contract: holders must never mutate ``u``/``v`` in
    place, and kernels that reuse an operand's factor share it rather
    than copying.
    """

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.u.ndim != 2 or self.v.ndim != 2:
            raise ValueError("u and v must be 2D arrays")
        if self.u.shape[1] != self.v.shape[1]:
            raise ValueError(
                f"rank mismatch: u has {self.u.shape[1]} columns, "
                f"v has {self.v.shape[1]}"
            )
        if self.u.shape[1] == 0:
            raise ValueError("rank-0 factors are not allowed; use a null tile")

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def nbytes(self) -> int:
        return self.u.nbytes + self.v.nbytes

    def to_dense(self) -> np.ndarray:
        return self.u @ self.v.T

    def transpose(self) -> "LowRankFactor":
        """Factors of the transposed block (swap u and v)."""
        return LowRankFactor(self.v, self.u)


def _truncation_rank(s: np.ndarray, tol: float, relative: bool) -> int:
    """Number of singular values kept by the accuracy threshold."""
    if len(s) == 0:
        return 0
    cutoff = tol * s[0] if relative else tol
    return int(np.count_nonzero(s > cutoff))


def truncated_svd(
    block: np.ndarray, tol: float, relative: bool = False
) -> LowRankFactor | None:
    """Compress a dense block by truncated SVD.

    Parameters
    ----------
    block:
        Dense ``(m, n)`` array.
    tol:
        Accuracy threshold: singular values ``<= tol`` (absolute, the
        HiCMA fixed-accuracy convention) or ``<= tol * sigma_1``
        (``relative=True``) are discarded.

    Returns
    -------
    A :class:`LowRankFactor` absorbing the singular values into ``u``
    (``u = U_k * s_k``, ``v = V_k``), or ``None`` if every singular
    value is below the threshold (the tile *disappears*).
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    block = np.asarray(block, dtype=DTYPE)
    u, s, vt = sla.svd(block, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    return LowRankFactor(
        np.ascontiguousarray(u[:, :k] * s[:k]),
        np.ascontiguousarray(vt[:k].T),
    )


def compress_block(
    block: np.ndarray,
    tol: float,
    max_rank: int | None = None,
    relative: bool = False,
) -> LowRankFactor | np.ndarray | None:
    """Compress a dense block, falling back to dense for high ranks.

    Returns ``None`` (null tile) when the block is negligible, a
    :class:`LowRankFactor` when the numerical rank is at most
    ``max_rank``, and the original dense block otherwise — mirroring
    HiCMA's maxrank convention (config ``DENSE_RANK_FRACTION``).
    """
    factor = truncated_svd(block, tol, relative=relative)
    if factor is None:
        return None
    if max_rank is not None and factor.rank > max_rank:
        return np.asarray(block, dtype=DTYPE)
    return factor


def recompress(
    factor: LowRankFactor, tol: float, relative: bool = False
) -> LowRankFactor | None:
    """Round a (possibly inflated) low-rank factor back to minimal rank.

    After a TLR GEMM the accumulated factors have rank
    ``k_C + min(k_A, k_B)``; this rounding step restores the numerical
    rank with QR factorizations of both factors followed by an SVD of
    the small core — the standard low-rank rounding used by HiCMA.

    Cost: ``O((m+n) K^2 + K^3)`` for accumulated rank ``K``, versus
    ``O(m n min(m, n))`` for recompressing the dense block.  Two fast
    paths: a rank-0 factor (possible for duck-typed callers; the
    :class:`LowRankFactor` invariant forbids it) has nothing to round
    and is returned untouched, and once ``K`` exceeds half the tile
    dimension the economy QR-QR-SVD pipeline costs more than a single
    dense SVD of the materialized block, so the dense route wins (the
    truncation rule is identical, so the result is the same factor).
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    if factor.rank == 0:
        return factor
    short_side = min(factor.shape)
    if factor.rank >= max(1, short_side // 2):
        return truncated_svd(factor.to_dense(), tol, relative=relative)
    qu, ru = sla.qr(factor.u, mode="economic", check_finite=False)
    qv, rv = sla.qr(factor.v, mode="economic", check_finite=False)
    core = ru @ rv.T
    u, s, vt = sla.svd(core, full_matrices=False, check_finite=False)
    k = _truncation_rank(s, tol, relative)
    if k == 0:
        return None
    return LowRankFactor(
        np.ascontiguousarray(qu @ (u[:, :k] * s[:k])),
        np.ascontiguousarray(qv @ vt[:k].T),
    )
