"""TLR LU tile kernels (no pivoting across tiles).

Tile LU generalizes the Cholesky path to non-symmetric operators —
the setting of the HiCMA group's acoustic-BEM solver (paper ref.
[11]).  Like that work (and all tile-LU codes), pivoting is confined
to nothing at all: BEM/RBF operators are diagonally dominated enough
that the non-pivoted factorization is stable, and the tile structure
is preserved.

Kernels (right-looking, ``A = L U`` with unit-lower L):

* ``getrf``:   ``A[k,k] -> (L[k,k], U[k,k])`` packed in one tile
* ``trsm_l``:  ``A[m,k] <- A[m,k] @ U[k,k]^-1``   (left panel)
* ``trsm_u``:  ``A[k,n] <- L[k,k]^-1 @ A[k,n]``   (top panel)
* ``gemm_lu``: ``A[m,n] <- A[m,n] - A[m,k] @ A[k,n]``

Low-rank algebra: with ``A = Ua Va^T``,
``A U^-1 = Ua (U^-T Va)^T`` and ``L^-1 A = (L^-1 Ua) Va^T`` — TRSMs
touch a single skinny factor, exactly as in the Cholesky path.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.linalg.lowrank import LowRankFactor, compress_block, recompress
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile, as_tile

__all__ = ["getrf_tile", "trsm_l_tile", "trsm_u_tile", "gemm_lu_tile"]


def _unpivoted_lu(a: np.ndarray) -> np.ndarray:
    """Packed non-pivoted LU (Doolittle): L strictly below the
    diagonal (unit diagonal implied), U on and above.

    Raises ``LinAlgError`` on a (numerically) zero pivot.
    """
    lu = np.array(a, dtype=np.float64, copy=True)
    n = lu.shape[0]
    scale = np.abs(lu).max() or 1.0
    for k in range(n - 1):
        piv = lu[k, k]
        if abs(piv) <= 1e-14 * scale:
            raise np.linalg.LinAlgError(
                f"zero pivot at position {k}: non-pivoted LU failed"
            )
        lu[k + 1 :, k] /= piv
        lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    if abs(lu[n - 1, n - 1]) <= 1e-14 * scale:
        raise np.linalg.LinAlgError(f"zero pivot at position {n - 1}")
    return lu


def getrf_tile(a_kk: Tile) -> DenseTile:
    """Factor a diagonal tile; result holds packed L\\U."""
    if not isinstance(a_kk, DenseTile):
        raise TypeError(
            f"diagonal tiles must be dense for GETRF, got {a_kk.kind.value}"
        )
    return DenseTile(_unpivoted_lu(a_kk.data))


def _upper(lu: np.ndarray) -> np.ndarray:
    return np.triu(lu)


def _lower_unit(lu: np.ndarray) -> np.ndarray:
    return np.tril(lu, -1) + np.eye(lu.shape[0])


def trsm_l_tile(lu_kk: DenseTile, a_mk: Tile) -> Tile:
    """Left panel: ``A[m,k] <- A[m,k] @ U[k,k]^-1``."""
    u = lu_kk.data  # upper triangle used
    if isinstance(a_mk, NullTile):
        return a_mk
    if isinstance(a_mk, LowRankTile):
        # (Ua Va^T) U^-1 = Ua (U^-T Va)^T.  The untouched U factor is
        # shared, not copied (immutable-tile contract; see
        # kernels_tlr.trsm_tile).
        new_v = sla.solve_triangular(
            u, a_mk.v, lower=False, trans="T", check_finite=False
        )
        return LowRankTile(LowRankFactor(a_mk.u, new_v))
    out = sla.solve_triangular(
        u, a_mk.data.T, lower=False, trans="T", check_finite=False
    ).T
    return DenseTile(np.ascontiguousarray(out))


def trsm_u_tile(lu_kk: DenseTile, a_kn: Tile) -> Tile:
    """Top panel: ``A[k,n] <- L[k,k]^-1 @ A[k,n]`` (unit-lower L)."""
    l_full = lu_kk.data  # strict lower + unit diagonal used
    if isinstance(a_kn, NullTile):
        return a_kn
    if isinstance(a_kn, LowRankTile):
        new_u = sla.solve_triangular(
            l_full, a_kn.u, lower=True, trans="N", unit_diagonal=True,
            check_finite=False,
        )
        return LowRankTile(LowRankFactor(new_u, a_kn.v))
    out = sla.solve_triangular(
        l_full, a_kn.data, lower=True, trans="N", unit_diagonal=True,
        check_finite=False,
    )
    return DenseTile(np.ascontiguousarray(out))


def _product(a: Tile, b: Tile) -> LowRankFactor | np.ndarray | None:
    """``A[m,k] @ A[k,n]`` (None if either operand is null)."""
    if isinstance(a, NullTile) or isinstance(b, NullTile):
        return None
    a_lr = isinstance(a, LowRankTile)
    b_lr = isinstance(b, LowRankTile)
    # Untouched factors are shared with the operand tiles, not copied
    # (immutable-tile contract; see kernels_tlr.trsm_tile).
    if a_lr and b_lr:
        w = a.v.T @ b.u  # ka x kb
        if a.rank <= b.rank:
            return LowRankFactor(a.u, b.v @ w.T)
        return LowRankFactor(a.u @ w, b.v)
    if a_lr:
        # Ua Va^T B = Ua (B^T Va)^T
        return LowRankFactor(a.u, b.data.T @ a.v)
    if b_lr:
        return LowRankFactor(a.data @ b.u, b.v)
    return a.data @ b.data


def gemm_lu_tile(
    c_mn: Tile,
    a_mk: Tile,
    b_kn: Tile,
    tol: float,
    max_rank: int | None = None,
) -> Tile:
    """``A[m,n] <- A[m,n] - A[m,k] @ A[k,n]`` with recompression."""
    product = _product(a_mk, b_kn)
    if product is None:
        return c_mn
    shape = c_mn.shape

    if isinstance(product, np.ndarray):
        dense = (
            c_mn.to_dense() - product
            if not isinstance(c_mn, NullTile)
            else -product
        )
        if isinstance(c_mn, DenseTile):
            return DenseTile(dense)
        return as_tile(compress_block(dense, tol, max_rank=max_rank), shape)

    if isinstance(c_mn, DenseTile):
        return DenseTile(c_mn.data - product.u @ product.v.T)

    if isinstance(c_mn, NullTile):
        stacked = LowRankFactor(-product.u, product.v)
    else:
        stacked = LowRankFactor(
            np.hstack([c_mn.u, -product.u]),
            np.hstack([c_mn.v, product.v]),
        )
    if stacked.rank >= min(shape):
        return as_tile(
            compress_block(stacked.to_dense(), tol, max_rank=max_rank), shape
        )
    rounded = recompress(stacked, tol)
    if rounded is None:
        return NullTile(shape)
    if max_rank is not None and rounded.rank > max_rank:
        return DenseTile(rounded.to_dense())
    return LowRankTile(rounded)
