"""Floating-point operation counts for dense and TLR tile kernels.

These formulas drive three things: the simulator's task-duration model
(:mod:`repro.machine.costmodel`), the critical-path roofline of
Fig. 13, and the tile-size trade-off analysis of Fig. 5.  Dense counts
follow the standard LAPACK accounting; TLR counts follow the HiCMA
kernel decompositions (see kernels_tlr.py for the algebra).
"""

from __future__ import annotations

__all__ = [
    "potrf_flops",
    "trsm_dense_flops",
    "trsm_tlr_flops",
    "syrk_dense_flops",
    "syrk_tlr_flops",
    "gemm_dense_flops",
    "gemm_tlr_flops",
    "compression_flops",
]


def potrf_flops(b: int) -> float:
    """Cholesky of a ``b x b`` block: ``b^3/3 + b^2/2 + b/6``."""
    return b**3 / 3.0 + b**2 / 2.0 + b / 6.0


def trsm_dense_flops(b: int, ncols: int | None = None) -> float:
    """Triangular solve with ``ncols`` right-hand sides (default b)."""
    n = b if ncols is None else ncols
    return float(b * b * n)


def trsm_tlr_flops(b: int, k: int) -> float:
    """TLR TRSM touches only the ``b x k`` V factor."""
    return float(b * b * k)


def syrk_dense_flops(b: int) -> float:
    """Dense SYRK ``C - A A^T``: ``b^2 (b + 1)``."""
    return float(b * b * (b + 1))


def syrk_tlr_flops(b: int, k: int) -> float:
    """TLR SYRK ``C - U (V^T V) U^T``.

    ``V^T V`` costs ``2 b k^2``; ``U W`` costs ``2 b k^2``;
    ``(U W) U^T`` costs ``2 b^2 k``.
    """
    return 4.0 * b * k * k + 2.0 * b * b * k


def gemm_dense_flops(b: int) -> float:
    """Dense GEMM ``C - A B^T`` on ``b x b`` tiles: ``2 b^3``."""
    return 2.0 * float(b) ** 3


def gemm_tlr_flops(b: int, ka: int, kb: int, kc: int) -> float:
    """TLR GEMM with QR+SVD recompression.

    Product factors: ``W = Va^T Vb`` (``2 b ka kb``) plus folding W into
    the thinner side (``2 b ka kb``).  The accumulated factor pair has
    rank ``K = kc + min(ka, kb)``; rounding costs two economy QRs
    (``~2 b K^2`` each, keeping the dominant term), one small SVD
    (``~22 K^3``) and two factor rebuilds (``~2 b K k_new`` each, with
    ``k_new ~ kc``).
    """
    if ka == 0 or kb == 0:
        return 0.0
    kp = min(ka, kb)
    product = 4.0 * b * ka * kb
    big_k = kc + kp
    qr = 2.0 * 2.0 * b * big_k * big_k
    svd = 22.0 * float(big_k) ** 3
    rebuild = 2.0 * 2.0 * b * big_k * max(kc, 1)
    return product + qr + svd + rebuild


def compression_flops(b: int, rank: int | None = None) -> float:
    """Compression of one dense ``b x b`` tile.

    With ``rank`` given: rank-revealing QR compression to rank ``k``
    (partial GEQP3 with trailing updates and re-orthogonalization,
    ``~24 b^2 k`` — the HiCMA-class production path).  Without it: a
    full SVD, ``~22 b^3`` (the naive path).  Used for the
    time-breakdown experiment (Fig. 11), where matrix compression
    dominates once the factorization is optimized.
    """
    if rank is None:
        return 22.0 * float(b) ** 3
    return 24.0 * float(b) ** 2 * max(rank, 1)
