"""Floating-point operation counts for dense and TLR tile kernels.

These formulas drive three things: the simulator's task-duration model
(:mod:`repro.machine.costmodel`), the critical-path roofline of
Fig. 13, and the tile-size trade-off analysis of Fig. 5.  Dense counts
follow the standard LAPACK accounting; TLR counts follow the HiCMA
kernel decompositions (see kernels_tlr.py for the algebra).
"""

from __future__ import annotations

__all__ = [
    "potrf_flops",
    "trsm_dense_flops",
    "trsm_tlr_flops",
    "syrk_dense_flops",
    "syrk_tlr_flops",
    "gemm_dense_flops",
    "gemm_tlr_flops",
    "gemm_tlr_flops_rand",
    "compression_flops",
    "randomized_compression_flops",
    "randomized_recompress_flops",
]


def potrf_flops(b: int) -> float:
    """Cholesky of a ``b x b`` block: ``b^3/3 + b^2/2 + b/6``."""
    return b**3 / 3.0 + b**2 / 2.0 + b / 6.0


def trsm_dense_flops(b: int, ncols: int | None = None) -> float:
    """Triangular solve with ``ncols`` right-hand sides (default b)."""
    n = b if ncols is None else ncols
    return float(b * b * n)


def trsm_tlr_flops(b: int, k: int) -> float:
    """TLR TRSM touches only the ``b x k`` V factor."""
    return float(b * b * k)


def syrk_dense_flops(b: int) -> float:
    """Dense SYRK ``C - A A^T``: ``b^2 (b + 1)``."""
    return float(b * b * (b + 1))


def syrk_tlr_flops(b: int, k: int) -> float:
    """TLR SYRK ``C - U (V^T V) U^T``.

    ``V^T V`` costs ``2 b k^2``; ``U W`` costs ``2 b k^2``;
    ``(U W) U^T`` costs ``2 b^2 k``.
    """
    return 4.0 * b * k * k + 2.0 * b * b * k


def gemm_dense_flops(b: int) -> float:
    """Dense GEMM ``C - A B^T`` on ``b x b`` tiles: ``2 b^3``."""
    return 2.0 * float(b) ** 3


def gemm_tlr_flops(b: int, ka: int, kb: int, kc: int) -> float:
    """TLR GEMM with QR+SVD recompression.

    Product factors: ``W = Va^T Vb`` (``2 b ka kb``) plus folding W into
    the thinner side (``2 b ka kb``).  The accumulated factor pair has
    rank ``K = kc + min(ka, kb)``; rounding costs two economy QRs
    (``~2 b K^2`` each, keeping the dominant term), one small SVD
    (``~22 K^3``) and two factor rebuilds (``~2 b K k_new`` each, with
    ``k_new ~ kc``).
    """
    if ka == 0 or kb == 0:
        return 0.0
    kp = min(ka, kb)
    product = 4.0 * b * ka * kb
    big_k = kc + kp
    qr = 2.0 * 2.0 * b * big_k * big_k
    svd = 22.0 * float(big_k) ** 3
    rebuild = 2.0 * 2.0 * b * big_k * max(kc, 1)
    return product + qr + svd + rebuild


def gemm_tlr_flops_rand(b: int, ka: int, kb: int, kc: int) -> float:
    """TLR GEMM with *randomized* rank rounding.

    Same product-factor cost as :func:`gemm_tlr_flops`, but the
    accumulated rank-``K`` pair is rounded by sampled range-finding
    (:func:`randomized_recompress_flops` with detected rank ``~ kc``)
    instead of the exact ``O(b K^2)`` QR-QR-SVD pipeline.
    """
    if ka == 0 or kb == 0:
        return 0.0
    kp = min(ka, kb)
    product = 4.0 * b * ka * kb
    big_k = kc + kp
    return product + randomized_recompress_flops(b, big_k, max(kc, 1))


def compression_flops(b: int, rank: int | None = None) -> float:
    """Compression of one dense ``b x b`` tile.

    With ``rank`` given: rank-revealing QR compression to rank ``k``
    (partial GEQP3 with trailing updates and re-orthogonalization,
    ``~24 b^2 k`` — the HiCMA-class production path).  Without it: a
    full SVD, ``~22 b^3`` (the naive path).  Used for the
    time-breakdown experiment (Fig. 11), where matrix compression
    dominates once the factorization is optimized.
    """
    if rank is None:
        return 22.0 * float(b) ** 3
    return 24.0 * float(b) ** 2 * max(rank, 1)


def randomized_compression_flops(
    b: int, rank: int, oversample: int = 8
) -> float:
    """Adaptive randomized compression of one ``b x b`` tile to rank
    ``k`` (``linalg.lowrank.randomized_compress``).

    With ``p = k + oversample`` sampled columns: the sample product
    ``A omega`` (``2 b^2 p``), the residual downdate ``Q (Q^T A)``
    (``~4 b^2 p`` across panels), panel QRs (``~4 b p^2``), the core
    projection ``Q^T A`` (``2 b^2 p``) plus its small SVD
    (``~22 b p^2``) and the U rebuild (``2 b p k``).  Dominant term
    ``O(b^2 p)`` — linear in the detected rank, versus the SVD's
    ``O(b^3)``.
    """
    p = max(rank, 1) + max(oversample, 0)
    b = float(b)
    return 8.0 * b * b * p + 26.0 * b * p * p + 2.0 * b * p * max(rank, 1)


def randomized_recompress_flops(
    b: int, big_k: int, rank: int, oversample: int = 8
) -> float:
    """Randomized rank rounding of an accumulated rank-``big_k`` factor
    pair down to ``rank`` (``linalg.lowrank.randomized_recompress``).

    Sampling stays in factored form: each of the ``p = rank +
    oversample`` sampled columns costs ``O((m + n) K)`` for the
    ``V^T omega`` / ``U t`` products (``~4 b K p`` total on ``b x b``
    tiles), plus panel QRs (``~4 b p^2``), the ``C V^T`` core build
    (``2 b K p``), its SVD (``~22 b p^2``) and the U rebuild
    (``2 b p rank``).  Linear in ``K``, versus the exact QR-QR-SVD
    pipeline's ``O(b K^2)``.
    """
    p = max(rank, 1) + max(oversample, 0)
    b = float(b)
    k_big = float(max(big_k, 1))
    return 6.0 * b * k_big * p + 26.0 * b * p * p + 2.0 * b * p * max(rank, 1)
