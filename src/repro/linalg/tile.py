"""Tile taxonomy: dense, low-rank and null tiles.

After compression the matrix operator mixes three data structures
within one operation (the paper's headline challenge, Section V):

* **dense** tiles — diagonal tiles and off-diagonal tiles whose
  numerical rank exceeds the maxrank budget;
* **low-rank** tiles — stored as ``U Vᵀ`` factor pairs;
* **null** tiles — tiles that disappeared during compression (all
  singular values below the threshold) and occupy no storage.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

import numpy as np

from repro.config import DTYPE
from repro.linalg.lowrank import LowRankFactor

__all__ = ["TileKind", "Tile", "DenseTile", "LowRankTile", "NullTile", "as_tile"]


class TileKind(enum.Enum):
    """Discriminator for the three tile data structures."""

    DENSE = "dense"
    LOW_RANK = "low_rank"
    NULL = "null"


class Tile(ABC):
    """Common interface over the three tile representations."""

    kind: TileKind

    @property
    @abstractmethod
    def shape(self) -> tuple[int, int]:
        """Logical (uncompressed) tile shape."""

    @property
    @abstractmethod
    def rank(self) -> int:
        """Stored rank: full for dense, k for low-rank, 0 for null."""

    @property
    @abstractmethod
    def nbytes(self) -> int:
        """Bytes of numerical payload actually stored."""

    @abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialize the tile as a dense array (fresh copy)."""

    @property
    def is_null(self) -> bool:
        return self.kind is TileKind.NULL


class DenseTile(Tile):
    """A tile stored as a full dense array.

    Construction is **zero-copy** for a DTYPE ndarray: ``np.asarray``
    wraps the given buffer (including views over external storage such
    as the shared-memory tile arena) without a defensive copy, and
    without normalizing memory order — C- vs F-ordered operands round
    differently through BLAS, so preserving the caller's layout is
    part of the bitwise-reproducibility contract.  Tiles are treated
    as immutable everywhere (kernels build new tiles rather than
    mutating arrays in place), which is what makes sharing safe.
    """

    kind = TileKind.DENSE

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=DTYPE)
        if data.ndim != 2:
            raise ValueError(f"dense tile must be 2D, got shape {data.shape}")
        self.data = data

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def rank(self) -> int:
        return min(self.data.shape)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def to_dense(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:
        return f"DenseTile(shape={self.shape})"


class LowRankTile(Tile):
    """A tile stored as a low-rank factor pair ``u @ v.T``."""

    kind = TileKind.LOW_RANK

    __slots__ = ("factor",)

    def __init__(self, factor: LowRankFactor) -> None:
        if not isinstance(factor, LowRankFactor):
            raise TypeError(f"expected LowRankFactor, got {type(factor)!r}")
        self.factor = factor

    @property
    def u(self) -> np.ndarray:
        return self.factor.u

    @property
    def v(self) -> np.ndarray:
        return self.factor.v

    @property
    def shape(self) -> tuple[int, int]:
        return self.factor.shape

    @property
    def rank(self) -> int:
        return self.factor.rank

    @property
    def nbytes(self) -> int:
        return self.factor.nbytes

    def to_dense(self) -> np.ndarray:
        return self.factor.to_dense()

    def __repr__(self) -> str:
        return f"LowRankTile(shape={self.shape}, rank={self.rank})"


class NullTile(Tile):
    """A tile that disappeared during compression (identically zero)."""

    kind = TileKind.NULL

    __slots__ = ("_shape",)

    def __init__(self, shape: tuple[int, int]) -> None:
        if len(shape) != 2 or shape[0] <= 0 or shape[1] <= 0:
            raise ValueError(f"invalid tile shape {shape}")
        self._shape = (int(shape[0]), int(shape[1]))

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def rank(self) -> int:
        return 0

    @property
    def nbytes(self) -> int:
        return 0

    def to_dense(self) -> np.ndarray:
        return np.zeros(self._shape, dtype=DTYPE)

    def __repr__(self) -> str:
        return f"NullTile(shape={self.shape})"


def as_tile(
    value: np.ndarray | LowRankFactor | None,
    shape: tuple[int, int],
) -> Tile:
    """Wrap a compression result (``compress_block`` output) as a Tile."""
    if value is None:
        return NullTile(shape)
    if isinstance(value, LowRankFactor):
        return LowRankTile(value)
    return DenseTile(value)
