"""Persistence for compressed TLR matrices (single-file ``.npz``).

Compressing a large operator is the expensive phase (Fig. 11); saving
the compressed form lets downstream runs (factorize with different
distributions, sweep accuracy-compatible experiments) skip it.  The
format stores each tile's payload under ``kind_/u_/v_/d_`` keys plus
a small header — no pickling, portable across numpy versions.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTYPE
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile
from repro.linalg.tile_matrix import TLRMatrix

__all__ = ["save_tlr", "load_tlr"]

_FORMAT_VERSION = 1


def save_tlr(a: TLRMatrix, path, compressed: bool = True) -> None:
    """Write a TLR matrix to ``path`` (``.npz``).

    ``compressed=False`` trades disk bytes for (de)serialization
    speed — the right choice for warm-start caches (e.g. the serving
    subsystem's disk tier) where reload latency is on the request
    path; archival snapshots should keep the default zip compression.
    """
    arrays: dict[str, np.ndarray] = {
        "header": np.array(
            [
                _FORMAT_VERSION,
                a.n,
                a.tile_size,
                a.max_rank if a.max_rank is not None else -1,
            ],
            dtype=np.int64,
        ),
        "accuracy": np.array([a.accuracy], dtype=np.float64),
    }
    kinds = []
    for (m, k), tile in sorted(a, key=lambda it: it[0]):
        key = f"{m}_{k}"
        if isinstance(tile, NullTile):
            kinds.append((m, k, 0))
        elif isinstance(tile, LowRankTile):
            kinds.append((m, k, 1))
            arrays[f"u_{key}"] = tile.u
            arrays[f"v_{key}"] = tile.v
        else:
            kinds.append((m, k, 2))
            arrays[f"d_{key}"] = tile.data
    arrays["kinds"] = np.array(kinds, dtype=np.int64)
    if compressed:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def load_tlr(path) -> TLRMatrix:
    """Read a TLR matrix written by :func:`save_tlr`."""
    with np.load(path) as data:
        header = data["header"]
        if header[0] != _FORMAT_VERSION:
            raise ValueError(f"unsupported TLR file version {header[0]}")
        n, tile_size = int(header[1]), int(header[2])
        max_rank = int(header[3]) if header[3] >= 0 else None
        accuracy = float(data["accuracy"][0])
        nt = -(-n // tile_size)

        def tile_shape(m: int, k: int) -> tuple[int, int]:
            rows = min(tile_size, n - m * tile_size)
            cols = min(tile_size, n - k * tile_size)
            return (rows, cols)

        tiles: dict[tuple[int, int], Tile] = {}
        for m, k, kind in data["kinds"]:
            m, k, kind = int(m), int(k), int(kind)
            key = f"{m}_{k}"
            if kind == 0:
                tiles[(m, k)] = NullTile(tile_shape(m, k))
            elif kind == 1:
                tiles[(m, k)] = LowRankTile(
                    LowRankFactor(
                        np.ascontiguousarray(data[f"u_{key}"], dtype=DTYPE),
                        np.ascontiguousarray(data[f"v_{key}"], dtype=DTYPE),
                    )
                )
            elif kind == 2:
                tiles[(m, k)] = DenseTile(data[f"d_{key}"])
            else:
                raise ValueError(f"corrupt tile kind {kind} at ({m}, {k})")
        expected = nt * (nt + 1) // 2
        if len(tiles) != expected:
            raise ValueError(
                f"file holds {len(tiles)} tiles, expected {expected}"
            )
    return TLRMatrix(n, tile_size, tiles, accuracy, max_rank)
