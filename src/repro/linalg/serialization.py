"""Persistence for compressed TLR matrices (single-file ``.npz``).

Compressing a large operator is the expensive phase (Fig. 11); saving
the compressed form lets downstream runs (factorize with different
distributions, sweep accuracy-compatible experiments) skip it.  The
format stores each tile's payload under ``kind_/u_/v_/d_`` keys plus
a small header — no pickling, portable across numpy versions.

Robustness guarantees (format version 2):

* **atomic writes** — :func:`save_tlr` streams into a temp file in the
  target directory, fsyncs, then renames, so a crash mid-save can
  never leave a torn ``.npz`` under the final name;
* **embedded checksums** — a BLAKE2b digest per tile
  (:func:`repro.linalg.integrity.tile_checksum`) rides along with the
  payload and is re-verified on load, so a flipped bit or truncated
  buffer raises :class:`~repro.linalg.integrity.TileIntegrityError`
  instead of flowing silently into a factorization or a served solve.

Version-1 files (no checksum block) still load; they simply skip
verification.  Version 3 marks files holding mixed-precision (fp32)
low-rank factors — written only when such tiles are present, so
all-fp64 matrices keep producing version-2 files older readers accept.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.integrity import TileIntegrityError, tile_checksum
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile
from repro.linalg.tile_matrix import TLRMatrix
from repro.utils.atomic import atomic_write_via

__all__ = ["save_tlr", "load_tlr"]

_FORMAT_VERSION = 2
_MIXED_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def save_tlr(a: TLRMatrix, path, compressed: bool = True) -> None:
    """Atomically write a TLR matrix to ``path`` (``.npz``).

    ``compressed=False`` trades disk bytes for (de)serialization
    speed — the right choice for warm-start caches (e.g. the serving
    subsystem's disk tier) where reload latency is on the request
    path; archival snapshots should keep the default zip compression.
    """
    arrays: dict[str, np.ndarray] = {
        "accuracy": np.array([a.accuracy], dtype=np.float64),
    }
    kinds = []
    checksums = []
    mixed = False
    for (m, k), tile in sorted(a, key=lambda it: it[0]):
        key = f"{m}_{k}"
        if isinstance(tile, NullTile):
            kinds.append((m, k, 0))
        elif isinstance(tile, LowRankTile):
            kinds.append((m, k, 1))
            arrays[f"u_{key}"] = tile.u
            arrays[f"v_{key}"] = tile.v
            mixed = mixed or tile.u.dtype != np.float64 or tile.v.dtype != np.float64
        else:
            kinds.append((m, k, 2))
            arrays[f"d_{key}"] = tile.data
        checksums.append(tile_checksum(tile))
    arrays["header"] = np.array(
        [
            _MIXED_FORMAT_VERSION if mixed else _FORMAT_VERSION,
            a.n,
            a.tile_size,
            a.max_rank if a.max_rank is not None else -1,
        ],
        dtype=np.int64,
    )
    arrays["kinds"] = np.array(kinds, dtype=np.int64)
    arrays["checksums"] = np.array(checksums, dtype="U64")
    write = np.savez_compressed if compressed else np.savez
    atomic_write_via(path, lambda f: write(f, **arrays))


def load_tlr(path, verify: bool = True) -> TLRMatrix:
    """Read a TLR matrix written by :func:`save_tlr`.

    With ``verify=True`` (default) every tile is re-hashed against the
    embedded checksum block; a mismatch — bit rot, a tampered file, a
    partially overwritten entry — raises
    :class:`~repro.linalg.integrity.TileIntegrityError` rather than
    returning corrupt numerics.  Version-1 files carry no checksums
    and load unverified.
    """
    with np.load(path) as data:
        header = data["header"]
        if int(header[0]) not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported TLR file version {header[0]}")
        n, tile_size = int(header[1]), int(header[2])
        max_rank = int(header[3]) if header[3] >= 0 else None
        accuracy = float(data["accuracy"][0])
        nt = -(-n // tile_size)

        def tile_shape(m: int, k: int) -> tuple[int, int]:
            rows = min(tile_size, n - m * tile_size)
            cols = min(tile_size, n - k * tile_size)
            return (rows, cols)

        kinds = data["kinds"]
        checksums = data["checksums"] if "checksums" in data.files else None
        if checksums is not None and len(checksums) != len(kinds):
            raise ValueError(
                f"file holds {len(checksums)} checksums for "
                f"{len(kinds)} tiles"
            )
        tiles: dict[tuple[int, int], Tile] = {}
        for i, (m, k, kind) in enumerate(kinds):
            m, k, kind = int(m), int(k), int(kind)
            key = f"{m}_{k}"
            if kind == 0:
                tile: Tile = NullTile(tile_shape(m, k))
            elif kind == 1:
                # np.asarray (not ascontiguousarray): keep the stored
                # memory layout — BLAS rounds differently for C- vs
                # F-ordered operands, and reloaded factors must behave
                # bitwise identically to freshly built ones.  The
                # stored dtype is preserved too: mixed-precision (v3)
                # factors reload as fp32, fp64 files as fp64.
                tile = LowRankTile(
                    LowRankFactor(
                        np.asarray(data[f"u_{key}"]),
                        np.asarray(data[f"v_{key}"]),
                    )
                )
            elif kind == 2:
                tile = DenseTile(data[f"d_{key}"])
            else:
                raise ValueError(f"corrupt tile kind {kind} at ({m}, {k})")
            if verify and checksums is not None:
                expected = str(checksums[i])
                actual = tile_checksum(tile)
                if actual != expected:
                    raise TileIntegrityError(
                        f"{path}: tile ({m}, {k}) checksum mismatch "
                        f"(expected {expected}, got {actual}) — "
                        "file content corrupted since it was written"
                    )
            tiles[(m, k)] = tile
        expected_count = nt * (nt + 1) // 2
        if len(tiles) != expected_count:
            raise ValueError(
                f"file holds {len(tiles)} tiles, expected {expected_count}"
            )
    return TLRMatrix(n, tile_size, tiles, accuracy, max_rank)
