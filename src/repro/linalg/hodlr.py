"""HODLR — the weak-admissibility baseline from related work.

Section II positions TLR against hierarchical formats: HODLR/HSS
(weak admissibility) compress the *entire* off-diagonal half at each
level of a recursive 2x2 partition.  For 1D-ordered problems those
blocks are genuinely low-rank, but for 3D geometries their rank grows
with the block size — "the high ranks required for accuracy in the
large off-diagonal blocks" — which is exactly why the paper flattens
the hierarchy into fixed-size tiles (TLR).

This module implements a faithful HODLR representation (recursive
bisection, truncated-SVD compression of off-diagonal blocks, dense
leaves) so the claim can be *measured*: see
``benchmarks/test_ablation_hodlr.py``, which compares HODLR and TLR
ranks/memory on the same 3D RBF operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DTYPE
from repro.linalg.lowrank import LowRankFactor, truncated_svd

__all__ = ["HODLRMatrix", "build_hodlr"]


@dataclass
class _Node:
    """One recursion node over the index range [lo, hi)."""

    lo: int
    hi: int
    #: dense leaf payload (leaves only)
    dense: np.ndarray | None = None
    #: children and off-diagonal factors (internal nodes only)
    left: "_Node | None" = None
    right: "_Node | None" = None
    #: lower off-diagonal block A[mid:hi, lo:mid] as U V^T (or dense
    #: ndarray fallback if incompressible at the requested tolerance)
    off: LowRankFactor | np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.dense is not None

    @property
    def mid(self) -> int:
        return (self.lo + self.hi) // 2


class HODLRMatrix:
    """Symmetric HODLR matrix (lower storage, weak admissibility)."""

    def __init__(self, root: _Node, n: int, accuracy: float) -> None:
        self.root = root
        self.n = n
        self.accuracy = accuracy

    # ------------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        def depth(node: _Node) -> int:
            return 1 if node.is_leaf else 1 + max(depth(node.left), depth(node.right))

        return depth(self.root)

    def memory_bytes(self) -> int:
        total = 0

        def walk(node: _Node) -> None:
            nonlocal total
            if node.is_leaf:
                total += node.dense.nbytes
                return
            off = node.off
            if isinstance(off, LowRankFactor):
                total += off.nbytes
            elif off is not None:
                total += off.nbytes
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return total

    def rank_profile(self) -> list[int]:
        """Maximum off-diagonal rank per level, top level first.

        Dense (incompressible) off-diagonal blocks report their full
        minimum dimension.
        """
        levels: dict[int, int] = {}

        def walk(node: _Node, level: int) -> None:
            if node.is_leaf:
                return
            off = node.off
            r = off.rank if isinstance(off, LowRankFactor) else min(off.shape)
            levels[level] = max(levels.get(level, 0), r)
            walk(node.left, level + 1)
            walk(node.right, level + 1)

        walk(self.root, 0)
        return [levels[k] for k in sorted(levels)]

    # ------------------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` exploiting the hierarchical representation."""
        x = np.asarray(x, dtype=DTYPE)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.n:
            raise ValueError(f"x has {x.shape[0]} rows, matrix order is {self.n}")
        y = np.zeros_like(x)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                y[node.lo : node.hi] += node.dense @ x[node.lo : node.hi]
                return
            mid = node.mid
            off = node.off
            xs_top = x[node.lo : mid]
            xs_bot = x[mid : node.hi]
            if isinstance(off, LowRankFactor):
                y[mid : node.hi] += off.u @ (off.v.T @ xs_top)
                y[node.lo : mid] += off.v @ (off.u.T @ xs_bot)
            else:
                y[mid : node.hi] += off @ xs_top
                y[node.lo : mid] += off.T @ xs_bot
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return y[:, 0] if squeeze else y

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=DTYPE)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                out[node.lo : node.hi, node.lo : node.hi] = node.dense
                return
            mid = node.mid
            off = node.off
            block = off.to_dense() if isinstance(off, LowRankFactor) else off
            out[mid : node.hi, node.lo : mid] = block
            out[node.lo : mid, mid : node.hi] = block.T
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return out


def build_hodlr(
    a: np.ndarray,
    accuracy: float,
    leaf_size: int = 128,
    max_rank_fraction: float = 0.9,
) -> HODLRMatrix:
    """Build a symmetric HODLR matrix from a dense SPD operator.

    Off-diagonal halves are compressed by truncated SVD at
    ``accuracy``; blocks whose numerical rank exceeds
    ``max_rank_fraction * min(shape)`` are kept dense (the
    incompressibility HODLR suffers on 3D geometries).
    """
    a = np.asarray(a, dtype=DTYPE)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"a must be square, got shape {a.shape}")
    if leaf_size < 2:
        raise ValueError(f"leaf_size must be >= 2, got {leaf_size}")
    n = a.shape[0]

    def build(lo: int, hi: int) -> _Node:
        if hi - lo <= leaf_size:
            return _Node(lo, hi, dense=a[lo:hi, lo:hi].copy())
        mid = (lo + hi) // 2
        block = a[mid:hi, lo:mid]
        factor = truncated_svd(block, accuracy)
        if factor is None:
            factor = LowRankFactor(
                np.zeros((hi - mid, 1), dtype=DTYPE),
                np.zeros((mid - lo, 1), dtype=DTYPE),
            )
        off: LowRankFactor | np.ndarray = factor
        if factor.rank > max_rank_fraction * min(block.shape):
            off = block.copy()
        return _Node(
            lo,
            hi,
            left=build(lo, mid),
            right=build(mid, hi),
            off=off,
        )

    return HODLRMatrix(build(0, n), n, accuracy)
