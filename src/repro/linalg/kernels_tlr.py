"""TLR tile kernels: POTRF / TRSM / SYRK / GEMM over mixed tiles.

Each kernel accepts :class:`~repro.linalg.tile.Tile` operands in any of
the three representations (dense / low-rank / null) and returns a new
tile — this is the "mixture of data structures within a single matrix
operation" that the paper's framework supports (Section III).

Algebra for the low-rank paths (``A = Ua Va^T``, ``B = Ub Vb^T``):

* TRSM  ``A L^-T = Ua (L^-1 Va)^T``            — touches only V.
* SYRK  ``C - A A^T = C - Ua (Va^T Va) Ua^T``   — small k×k core.
* GEMM  ``A B^T = Ua (Va^T Vb) Ub^T``           — fold the core into
  the thinner side, then accumulate into C's factors and recompress.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.linalg.kernels_dense import DiagonalShiftPolicy, potrf_with_shift
from repro.linalg.lowrank import (
    CompressionPolicy,
    LowRankFactor,
    compress_block,
    randomized_recompress,
    recompress,
)
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile

__all__ = [
    "potrf_tile",
    "potrf_tile_shifted",
    "trsm_tile",
    "syrk_tile",
    "gemm_tile",
]


def potrf_tile(a_kk: Tile) -> DenseTile:
    """Cholesky of a diagonal tile (always dense in TLR Cholesky)."""
    if not isinstance(a_kk, DenseTile):
        raise TypeError(
            f"diagonal tiles must be dense for POTRF, got {a_kk.kind.value}"
        )
    try:
        l_kk = sla.cholesky(a_kk.data, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise np.linalg.LinAlgError(str(exc)) from exc
    return DenseTile(l_kk)


def potrf_tile_shifted(
    a_kk: Tile, policy: DiagonalShiftPolicy
) -> tuple[DenseTile, float]:
    """POTRF of a diagonal tile with escalating-shift degradation.

    Returns ``(L_kk, shift)``; ``shift`` is 0.0 on the normal path.
    See :func:`repro.linalg.kernels_dense.potrf_with_shift`.
    """
    if not isinstance(a_kk, DenseTile):
        raise TypeError(
            f"diagonal tiles must be dense for POTRF, got {a_kk.kind.value}"
        )
    l_kk, shift = potrf_with_shift(a_kk.data, policy)
    return DenseTile(l_kk), shift


def trsm_tile(l_kk: DenseTile, a_mk: Tile) -> Tile:
    """``A[m,k] <- A[m,k] @ L[k,k]^-T`` preserving the representation."""
    if not isinstance(l_kk, DenseTile):
        raise TypeError(f"TRSM needs a dense L factor, got {l_kk.kind.value}")
    if isinstance(a_mk, NullTile):
        return a_mk
    if isinstance(a_mk, LowRankTile):
        # (U V^T) L^-T = U (L^-1 V)^T : solve L X = V for the new V.
        # The untouched U factor is *shared* with the operand tile, not
        # copied: tiles are immutable (kernels build new tiles, never
        # mutate arrays in place), so aliasing is safe, and a copy
        # would also normalize the memory order — breaking bitwise
        # reproducibility for arena-backed (possibly F-ordered) views.
        new_v = sla.solve_triangular(
            l_kk.data, a_mk.v, lower=True, trans="N", check_finite=False
        )
        return LowRankTile(LowRankFactor(a_mk.u, new_v))
    new = sla.solve_triangular(
        l_kk.data, a_mk.data.T, lower=True, trans="N", check_finite=False
    ).T
    return DenseTile(np.ascontiguousarray(new))


def syrk_tile(c_mm: DenseTile, a_mk: Tile) -> DenseTile:
    """``C[m,m] <- C[m,m] - A[m,k] A[m,k]^T`` (diagonal stays dense)."""
    if not isinstance(c_mm, DenseTile):
        raise TypeError(f"SYRK target must be dense, got {c_mm.kind.value}")
    if isinstance(a_mk, NullTile):
        return c_mm
    if isinstance(a_mk, LowRankTile):
        w = a_mk.v.T @ a_mk.v  # k x k core
        return DenseTile(c_mm.data - (a_mk.u @ w) @ a_mk.u.T)
    return DenseTile(c_mm.data - a_mk.data @ a_mk.data.T)


def _product_factor(a: Tile, b: Tile) -> LowRankFactor | np.ndarray | None:
    """Representation of ``A @ B.T`` (None if either operand is null).

    When either operand is low-rank the product is low-rank with rank
    ``min(rank(A), rank(B))``; the small core is folded into the
    thinner side so the returned factors carry the minimal rank.
    """
    if isinstance(a, NullTile) or isinstance(b, NullTile):
        return None
    a_lr = isinstance(a, LowRankTile)
    b_lr = isinstance(b, LowRankTile)
    # Untouched factors are shared with the operand tiles, not copied
    # (immutable-tile contract; see trsm_tile).
    if a_lr and b_lr:
        w = a.v.T @ b.v  # ka x kb
        if a.rank <= b.rank:
            return LowRankFactor(a.u, b.u @ w.T)
        return LowRankFactor(a.u @ w, b.u)
    if a_lr:
        # Ua Va^T B^T = Ua (B Va)^T
        return LowRankFactor(a.u, b.data @ a.v)
    if b_lr:
        # A (Ub Vb^T)^T = (A Vb) Ub^T
        return LowRankFactor(a.data @ b.v, b.u)
    return a.data @ b.data.T


def gemm_tile(
    c_mn: Tile,
    a_mk: Tile,
    b_nk: Tile,
    tol: float,
    max_rank: int | None = None,
    policy: CompressionPolicy | None = None,
    seed: int = 0,
) -> Tile:
    """``C[m,n] <- C[m,n] - A[m,k] @ B[n,k]^T`` with recompression.

    This kernel is where *fill-in* happens: a null C becomes non-null
    when both operands are non-null, and where rank growth is rounded
    back by the ``tol`` threshold.  ``max_rank`` caps the stored rank
    (HiCMA's maxrank); beyond it the tile is stored dense.

    ``policy`` selects the rank-rounding method: under a randomized
    policy the accumulated factors are rounded by sampled range-finding
    seeded with ``seed`` — callers derive it from the tile coordinates
    and the elimination step, so every engine draws the same stream for
    the same task and factors stay bitwise identical.
    """
    product = _product_factor(a_mk, b_nk)
    if product is None:
        return c_mn  # nothing to subtract

    shape = c_mn.shape
    randomized = policy is not None and policy.randomized

    if isinstance(product, np.ndarray):
        # Dense product: materialize and recompress the result.
        dense = c_mn.to_dense() - product if not isinstance(c_mn, NullTile) else -product
        if isinstance(c_mn, DenseTile):
            return DenseTile(dense)
        return _compress_or_dense(dense, tol, max_rank, shape, policy)

    if isinstance(c_mn, DenseTile):
        return DenseTile(c_mn.data - product.u @ product.v.T)

    if isinstance(c_mn, NullTile):
        stacked = LowRankFactor(-product.u, product.v)
    else:
        stacked = LowRankFactor(
            np.hstack([c_mn.u, -product.u]),
            np.hstack([c_mn.v, product.v]),
        )

    if stacked.rank >= min(shape):
        # Accumulated rank is no longer "low"; go through the dense path.
        return _compress_or_dense(stacked.to_dense(), tol, max_rank, shape, policy)

    try:
        if randomized:
            rounded = randomized_recompress(
                stacked,
                tol,
                seed=seed,
                sample_block=policy.sample_block,
                oversample=policy.oversample,
                crossover=policy.crossover,
            )
        else:
            rounded = recompress(stacked, tol)
    except np.linalg.LinAlgError:
        # Degradation ladder: if rank rounding misbehaves (e.g. SVD
        # non-convergence), hold the tile dense rather than aborting
        # the factorization — exact arithmetic, just more bytes.
        return DenseTile(stacked.to_dense())
    if rounded is None:
        return NullTile(shape)
    if max_rank is not None and rounded.rank > max_rank:
        return DenseTile(rounded.to_dense())
    return LowRankTile(rounded)


def _compress_or_dense(
    dense: np.ndarray,
    tol: float,
    max_rank: int | None,
    shape: tuple[int, int],
    policy: CompressionPolicy | None = None,
) -> Tile:
    """Compress a materialized block, degrading to dense on failure.

    The randomized policy is deliberately *not* forwarded here: this
    path only fires when a GEMM materializes a dense product or the
    accumulated rank stops being low — both signal a near-full-rank
    block where sampling cannot win, so the exact SVD (with its rank
    pre-probe) is the right tool regardless of the build method.
    """
    from repro.linalg.tile import as_tile

    del policy  # see docstring: dense-path blocks always go exact

    try:
        return as_tile(compress_block(dense, tol, max_rank=max_rank), shape)
    except np.linalg.LinAlgError:
        return DenseTile(np.ascontiguousarray(dense))
