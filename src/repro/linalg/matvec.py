"""Symmetric TLR matrix-vector products and iterative refinement.

``y = A x`` with the compressed operator costs ``O(sum_tiles 2 b k)``
instead of ``O(n^2)`` — each low-rank tile applies as two skinny
GEMVs, null tiles are skipped, and the symmetric part reuses each
stored tile for its mirrored block.

Iterative refinement wraps the TLR Cholesky solve: because the factor
carries the compression error (~accuracy threshold), a few residual
correction sweeps recover solution accuracy down to the operator's
own compression level — the standard companion to approximate direct
solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DTYPE
from repro.linalg.tile import LowRankTile, NullTile
from repro.linalg.tile_matrix import TLRMatrix

__all__ = ["tlr_matvec", "refine_solve", "RefinementResult"]


def tlr_matvec(a: TLRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A x`` for the symmetric TLR operator (1D or 2D ``x``).

    Uses only the stored lower triangle: each off-diagonal tile
    contributes both ``A[m,k] x_k`` to ``y_m`` and ``A[m,k]^T x_m``
    to ``y_k``.
    """
    x = np.asarray(x, dtype=DTYPE)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != a.n:
        raise ValueError(f"x has {x.shape[0]} rows, matrix order is {a.n}")
    y = np.zeros_like(x)
    b = a.tile_size
    for (m, k), tile in a:
        if isinstance(tile, NullTile):
            continue
        mlo, mhi = m * b, min((m + 1) * b, a.n)
        klo, khi = k * b, min((k + 1) * b, a.n)
        if isinstance(tile, LowRankTile):
            y[mlo:mhi] += tile.u @ (tile.v.T @ x[klo:khi])
            if m != k:
                y[klo:khi] += tile.v @ (tile.u.T @ x[mlo:mhi])
        else:
            data = tile.data
            y[mlo:mhi] += data @ x[klo:khi]
            if m != k:
                y[klo:khi] += data.T @ x[mlo:mhi]
    return y[:, 0] if squeeze else y


@dataclass
class RefinementResult:
    """Solution plus the residual history of the refinement sweeps."""

    x: np.ndarray
    #: relative residual ||b - A x|| / ||b|| after each sweep
    #: (entry 0 is the unrefined direct solve)
    residuals: list[float]
    converged: bool


def refine_solve(
    a: TLRMatrix,
    factor: TLRMatrix,
    b_rhs: np.ndarray,
    max_sweeps: int = 5,
    rtol: float | None = None,
) -> RefinementResult:
    """Solve ``A x = b`` by TLR-Cholesky + iterative refinement.

    Parameters
    ----------
    a:
        The *unfactorized* compressed operator (used for residuals).
    factor:
        The TLR Cholesky factor of ``a`` (from
        :func:`repro.core.tlr_cholesky`).
    b_rhs:
        Right-hand side, 1D or 2D.
    max_sweeps:
        Maximum refinement iterations.
    rtol:
        Stop once the relative residual falls below this (default:
        10x the operator's compression accuracy).
    """
    from repro.core.solver import solve_cholesky

    if rtol is None:
        rtol = 10.0 * a.accuracy
    b_arr = np.asarray(b_rhs, dtype=DTYPE)
    norm_b = float(np.linalg.norm(b_arr))
    if norm_b == 0.0:
        return RefinementResult(np.zeros_like(b_arr), [0.0], True)

    x = solve_cholesky(factor, b_arr)
    residuals = []
    for _ in range(max_sweeps + 1):
        r = b_arr - tlr_matvec(a, x)
        rel = float(np.linalg.norm(r)) / norm_b
        residuals.append(rel)
        if rel <= rtol:
            return RefinementResult(x, residuals, True)
        if len(residuals) > max_sweeps:
            break
        x = x + solve_cholesky(factor, r)
    return RefinementResult(x, residuals, False)
