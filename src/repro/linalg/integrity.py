"""Tile content checksums — the detection half of ABFT-style defense.

A long-running factorization (hours at the paper's scale) and a
disk-resident factor cache are both exposed to *silent* data
corruption: memory bit flips, torn writes, firmware bugs.  Classic
HPC Cholesky guards against these with algorithm-based fault
tolerance; the in-process analogue here is a content checksum per
tile, recorded when a tile is produced and re-verified at every trust
boundary (kernel read under ``REPRO_VERIFY_TILES=1``, checkpoint
load, operator-cache disk reload).

Checksums use BLAKE2b over the canonical byte image of the tile's
payload (kind tag, shape, and the contiguous float64 buffers), so

* two bitwise-identical tiles always agree,
* any single flipped bit, truncated buffer, or swapped representation
  (dense vs low-rank of the same values) is detected,
* digests are stable across processes and machines of the same
  endianness — safe to persist next to the payload.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile

__all__ = [
    "TileIntegrityError",
    "tile_checksum",
    "matrix_checksums",
    "verify_matrix",
]

#: Digest size in bytes (128-bit digests render as 32 hex chars).
_DIGEST_SIZE = 16


class TileIntegrityError(ValueError):
    """A tile's content no longer matches its recorded checksum."""


def _array_bytes(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(a).tobytes()


def _dtype_tag(*arrays: np.ndarray) -> str:
    """Header tag naming non-default storage dtypes.

    Empty for all-float64 tiles — their digests are unchanged from
    before mixed precision existed — and an explicit ``|f4...`` marker
    otherwise, so an fp32/fp64 byte-stream split ambiguity (square
    tiles: ``4mk + 8nk == 8mk + 4nk`` when ``m == n``) can never make
    two different tiles hash alike.
    """
    if all(a.dtype == np.float64 for a in arrays):
        return ""
    return "|" + "x".join(a.dtype.str for a in arrays)


def tile_checksum(tile: Tile) -> str:
    """Hex BLAKE2b digest of the tile's canonical byte image."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    rows, cols = tile.shape
    if isinstance(tile, NullTile):
        h.update(f"null|{rows}x{cols}".encode())
    elif isinstance(tile, LowRankTile):
        tag = _dtype_tag(tile.u, tile.v)
        h.update(f"lowrank|{rows}x{cols}|{tile.rank}{tag}".encode())
        h.update(_array_bytes(tile.u))
        h.update(_array_bytes(tile.v))
    elif isinstance(tile, DenseTile):
        tag = _dtype_tag(tile.data)
        h.update(f"dense|{rows}x{cols}{tag}".encode())
        h.update(_array_bytes(tile.data))
    else:  # pragma: no cover - future tile kinds must opt in explicitly
        raise TypeError(f"cannot checksum tile of type {type(tile)!r}")
    return h.hexdigest()


def matrix_checksums(a) -> dict[tuple[int, int], str]:
    """Checksum every stored tile of a TLR matrix, keyed by index."""
    return {key: tile_checksum(tile) for key, tile in a}


def verify_matrix(
    a, checksums: dict[tuple[int, int], str], context: str = "matrix"
) -> None:
    """Raise :class:`TileIntegrityError` on the first mismatching tile.

    Only the tiles named in ``checksums`` are checked, so a partial
    ledger (e.g. a checkpoint's dirty set) verifies exactly its own
    coverage.
    """
    for (m, k), expected in checksums.items():
        actual = tile_checksum(a.tile(m, k))
        if actual != expected:
            raise TileIntegrityError(
                f"{context}: tile ({m}, {k}) checksum mismatch "
                f"(expected {expected}, got {actual}) — "
                "content corrupted since it was recorded"
            )
