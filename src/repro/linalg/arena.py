"""Shared-memory tile arena for true-parallel (process-pool) execution.

The threaded engine hits the GIL on real numerics (BENCH_parallel.json:
5.8x on replayed DAGs, 1.3x on real kernels), because the Python glue
around each BLAS call serializes.  Worker *processes* sidestep the GIL,
but then the tile payloads must live somewhere every process can reach
without pickling megabytes per task.  That somewhere is this arena:

* one ``multiprocessing.shared_memory`` **payload segment** holding
  every tile's numerical data (dense buffers, low-rank U/V factor
  pairs) as raw float64 elements;
* one **descriptor segment** holding a compact per-tile table — kind,
  logical shape, rank, payload offsets, memory-order flags, and a
  generation counter bumped on every rewrite — plus a small header with
  the spill allocator's bump cursor.

Workers address tiles by ``(row, col)`` key only; task messages carry
kernel ids and tile keys, never payloads.  Reads construct NumPy views
directly over the shared buffer (zero-copy — see the
:class:`~repro.linalg.tile.DenseTile` /
:class:`~repro.linalg.lowrank.LowRankFactor` view fast path); writes
pack the result back into the tile's slot.

**Slab allocation.**  Each tile gets a fixed *reservation* sized for
its worst admissible in-slot representation: diagonal / dense tiles
reserve ``rows*cols`` elements, off-diagonal tiles reserve
``(rows+cols)*cap`` elements for a rank-``cap`` U/V pair (``cap`` is
the matrix's maxrank).  GEMM rank growth up to the cap therefore
rewrites in place.  A result that outgrows its reservation (a tile
going dense past the maxrank fraction, or an uncapped matrix) takes
the **spill path**: a bump allocator at the tail of the payload
segment hands out a per-tile spill block under a cross-process lock;
the block is remembered in the descriptor and reused by later rewrites
that fit it, so repeated GEMM accumulation into an over-cap tile does
not leak a fresh block per update.

**Bitwise reproducibility.**  The arena preserves each array's memory
order (C vs Fortran) in the descriptor's order flags, because BLAS
rounds differently for C- vs F-ordered operands: a kernel reading an
arena view sees byte-identical, layout-identical operands to the
serial engine, so it produces byte-identical output.  Copy-in,
view-read and copy-out are all order-preserving.

Concurrent access needs no per-tile locking: the task graph's
RAW/WAR/WAW edges guarantee two in-flight tasks never touch the same
tile, the same invariant the threaded engine relies on.  Only the
spill cursor is contended, hence its lock.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.config import DTYPE, STORAGE_DTYPE_SINGLE
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile

__all__ = ["ArenaError", "TileArena", "SPILL_FACTOR_ENV"]

#: Environment variable scaling the spill region (float multiplier of
#: the all-tiles-dense payload size; default 1.5).
SPILL_FACTOR_ENV = "REPRO_ARENA_SPILL"

_ITEM = np.dtype(DTYPE).itemsize

_DT_DOUBLE = np.dtype(DTYPE)
_DT_SINGLE = np.dtype(STORAGE_DTYPE_SINGLE)

# ---------------------------------------------------------------------
# descriptor table layout (one int64 row per tile slot)
# ---------------------------------------------------------------------
F_KIND = 0  # 0 null, 1 low-rank, 2 dense
F_ROWS = 1  # logical tile shape
F_COLS = 2
F_RANK = 3  # stored rank (k for low-rank, min(shape) for dense, 0 null)
F_OFF_A = 4  # element offset of the primary array (U or dense data)
F_OFF_B = 5  # element offset of V (-1 for dense/null)
F_ORDER = 6  # bit 0: primary array F-ordered; bit 1: V F-ordered
F_GEN = 7  # generation counter, bumped on every set_tile
F_SPILL_OFF = 8  # this slot's spill block (element offset, -1 none)
F_SPILL_CAP = 9  # capacity of that spill block, in elements
F_DTYPE = 10  # bit 0: primary array fp32; bit 1: V fp32 (0 = all fp64)
N_FIELDS = 11

_KIND_NULL, _KIND_LR, _KIND_DENSE = 0, 1, 2

# header ints at the front of the descriptor segment
_H_SPILL_CUR = 0  # bump cursor (element offset into payload)
_H_SPILL_END = 1  # first element past the spill region
_N_HEADER = 2


class ArenaError(RuntimeError):
    """Arena capacity or protocol violation (e.g. spill exhaustion)."""


def spill_factor_from_env() -> float:
    env = os.environ.get(SPILL_FACTOR_ENV, "").strip()
    if not env:
        return 1.5
    factor = float(env)
    if factor < 0.0:
        raise ValueError(f"{SPILL_FACTOR_ENV} must be >= 0, got {env!r}")
    return factor


def _unlink_segments(payload, desc, creator_pid: int) -> None:
    """Finalizer body: unlink both segments, creator process only."""
    if os.getpid() != creator_pid:
        return
    for seg in (payload, desc):
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


def _pack_order(a: np.ndarray) -> tuple[np.ndarray, int]:
    """The (contiguous array, F-flag) pair preserving BLAS-visible layout.

    C-contiguous arrays (and everything degenerate enough to be both)
    pack as C with flag 0; F-contiguous-only arrays pack as-is with
    flag 1; non-contiguous arrays are canonicalized to C — the only
    case that forces a layout change, and one tile kernels never
    produce.

    Storage dtype is preserved for the two admissible precisions
    (fp64, and fp32 for mixed-precision low-rank factors); anything
    else is canonicalized to fp64.
    """
    a = np.asarray(a)
    if a.dtype != _DT_SINGLE and a.dtype != _DT_DOUBLE:
        a = np.asarray(a, dtype=DTYPE)
    if a.flags.c_contiguous:
        return a, 0
    if a.flags.f_contiguous:
        return a, 1
    return np.ascontiguousarray(a), 0


def _slots(n_elems: int, dtype: np.dtype) -> int:
    """Payload slots (fp64-sized units) covering ``n_elems`` of ``dtype``.

    The allocator hands out 8-byte slots regardless of storage dtype;
    fp32 arrays occupy ``ceil(n/2)`` slots (an odd-length array wastes
    half a slot — the spill/reservation accounting stays dtype-free).
    """
    return -(-(n_elems * dtype.itemsize) // _ITEM)


class TileArena:
    """Tile store over shared memory, API-compatible with
    :class:`~repro.linalg.tile_matrix.TLRMatrix` where the execution
    engines and kernels need it (``tile`` / ``set_tile`` / ``accuracy``
    / ``max_rank`` / iteration).

    Create with :meth:`from_store` in the coordinator *before* forking
    workers: the descriptor map, key table and ``SharedMemory`` handles
    are plain Python state inherited through ``fork``, while all
    mutable tile state lives in the shared segments.
    """

    def __init__(
        self,
        keys: list[tuple[int, int]],
        shapes: dict[tuple[int, int], tuple[int, int]],
        reservations: dict[tuple[int, int], tuple[int, int]],
        payload: shared_memory.SharedMemory,
        desc: shared_memory.SharedMemory,
        lock,
        accuracy: float,
        max_rank: int | None,
        n: int,
        tile_size: int,
        owner: bool,
    ) -> None:
        self._keys = keys
        self._slot = {key: i for i, key in enumerate(keys)}
        self._shapes = shapes
        self._res = reservations
        self._payload = payload
        self._desc_shm = desc
        self._lock = lock
        self._owner = owner
        self._closed = False
        self.accuracy = accuracy
        self.max_rank = max_rank
        self.n = n
        self.tile_size = tile_size
        header_and_table = np.ndarray(
            (_N_HEADER + len(keys) * N_FIELDS,), dtype=np.int64, buffer=desc.buf
        )
        self._header = header_and_table[:_N_HEADER]
        self._table = header_and_table[_N_HEADER:].reshape(len(keys), N_FIELDS)
        self._elems = np.ndarray(
            (payload.size // _ITEM,), dtype=DTYPE, buffer=payload.buf
        )
        self._payload_addr = self._elems.__array_interface__["data"][0]
        #: compression/storage policies mirrored from the source store
        #: (plain Python state inherited through fork): worker-side GEMM
        #: reads ``compression`` to pick its rounding method and seeds.
        self.compression = None
        self.storage = None
        # Last-resort leak defense: if the owning coordinator exits
        # abnormally (unhandled exception, sys.exit) without reaching
        # its `finally: arena.unlink()`, this finalizer unlinks the
        # segments at GC or interpreter exit so the CI /dev/shm leak
        # check stays green.  Pid-guarded because forked workers
        # inherit the object (and its finalizer) but must never unlink
        # segments the coordinator still serves; detached on the
        # normal unlink() path.
        self._finalizer = (
            weakref.finalize(
                self, _unlink_segments, payload, desc, os.getpid()
            )
            if owner
            else None
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_store(
        cls, store, spill_factor: float | None = None
    ) -> "TileArena":
        """Build an arena mirroring ``store`` (a tile matrix).

        ``store`` must expose ``tile``/``set_tile``, iteration over
        ``((m, k), tile)``, and ``accuracy``/``max_rank`` — both
        :class:`~repro.linalg.tile_matrix.TLRMatrix` and
        :class:`~repro.linalg.general_matrix.GeneralTLRMatrix` qualify.
        """
        if spill_factor is None:
            spill_factor = spill_factor_from_env()
        items = sorted(store, key=lambda it: it[0])
        keys = [key for key, _ in items]
        shapes = {key: tile.shape for key, tile in items}
        max_rank = getattr(store, "max_rank", None)

        reservations: dict[tuple[int, int], tuple[int, int]] = {}
        cursor = 0
        dense_total = 0
        for (m, k), tile in items:
            rows, cols = tile.shape
            dense = rows * cols
            dense_total += dense
            if m == k:
                reserve = dense
            else:
                cap = max_rank if max_rank is not None else min(rows, cols)
                reserve = min((rows + cols) * cap, dense)
            reservations[(m, k)] = (cursor, reserve)
            cursor += reserve
        spill_elems = int(dense_total * spill_factor)
        total = max(cursor + spill_elems, 1)

        payload = shared_memory.SharedMemory(create=True, size=total * _ITEM)
        desc = shared_memory.SharedMemory(
            create=True, size=(_N_HEADER + len(keys) * N_FIELDS) * 8
        )
        arena = cls(
            keys,
            shapes,
            reservations,
            payload,
            desc,
            multiprocessing.get_context("fork").Lock(),
            accuracy=float(getattr(store, "accuracy", 0.0) or 1.0),
            max_rank=max_rank,
            n=int(getattr(store, "n", 0)),
            tile_size=int(getattr(store, "tile_size", 1)),
            owner=True,
        )
        arena.compression = getattr(store, "compression", None)
        arena.storage = getattr(store, "storage", None)
        arena._header[_H_SPILL_CUR] = cursor
        arena._header[_H_SPILL_END] = total
        arena._table[:, F_SPILL_OFF] = -1
        arena._table[:, F_SPILL_CAP] = 0
        for key, tile in items:
            arena.set_tile(*key, tile)
        return arena

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _spill_alloc(self, elems: int) -> int:
        with self._lock:
            off = int(self._header[_H_SPILL_CUR])
            if off + elems > int(self._header[_H_SPILL_END]):
                free = int(self._header[_H_SPILL_END]) - off
                raise ArenaError(
                    f"arena spill region exhausted: need {elems} elements, "
                    f"{free} free — raise ${SPILL_FACTOR_ENV} (current "
                    "region is spill_factor x the all-dense payload size)"
                )
            self._header[_H_SPILL_CUR] = off + elems
            return off

    def _place(self, slot: int, key: tuple[int, int], elems: int) -> int:
        """Element offset where ``elems`` payload for ``key`` goes.

        Preference order: the tile's fixed reservation, its existing
        spill block, a freshly bumped spill block (remembered in the
        descriptor for reuse).
        """
        res_off, res_cap = self._res[key]
        if elems <= res_cap:
            return res_off
        row = self._table[slot]
        if 0 <= row[F_SPILL_OFF] and elems <= row[F_SPILL_CAP]:
            return int(row[F_SPILL_OFF])
        off = self._spill_alloc(elems)
        row[F_SPILL_OFF] = off
        row[F_SPILL_CAP] = elems
        return off

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def _view(
        self,
        off: int,
        shape: tuple[int, int],
        f_order: bool,
        dtype: np.dtype = _DT_DOUBLE,
    ) -> np.ndarray:
        return np.ndarray(
            shape,
            dtype=dtype,
            buffer=self._payload.buf,
            offset=off * _ITEM,
            order="F" if f_order else "C",
        )

    def _in_payload(self, a: np.ndarray) -> bool:
        """Whether ``a``'s memory lives inside this arena's payload."""
        try:
            addr = a.__array_interface__["data"][0]
        except (AttributeError, TypeError):  # pragma: no cover - defensive
            return True  # assume the worst: stage through a copy
        start = self._payload_addr
        return start <= addr < start + self._payload.size

    def _write_array(self, off: int, a: np.ndarray, f_order: int) -> None:
        dst = self._view(off, a.shape, bool(f_order), a.dtype)
        if self._in_payload(a):
            # The source may alias the destination slot (e.g. a kernel
            # republishing a tile built from arena views); stage through
            # a private copy so the element-wise copy never reads bytes
            # it already overwrote.
            a = a.copy(order="F" if f_order else "C")
        np.copyto(dst, a, casting="no")

    # ------------------------------------------------------------------
    # store API (what kernels and the engines touch)
    # ------------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return -(-self.n // self.tile_size) if self.tile_size else 0

    def keys(self) -> list[tuple[int, int]]:
        return list(self._keys)

    def generation(self, m: int, k: int) -> int:
        return int(self._table[self._slot[(m, k)], F_GEN])

    def tile(self, m: int, k: int) -> Tile:
        """Zero-copy tile view over the shared payload."""
        slot = self._slot[(m, k)]
        row = self._table[slot]
        kind = int(row[F_KIND])
        shape = (int(row[F_ROWS]), int(row[F_COLS]))
        if kind == _KIND_NULL:
            return NullTile(shape)
        order = int(row[F_ORDER])
        dt = int(row[F_DTYPE])
        if kind == _KIND_DENSE:
            return DenseTile(
                self._view(
                    int(row[F_OFF_A]),
                    shape,
                    bool(order & 1),
                    _DT_SINGLE if dt & 1 else _DT_DOUBLE,
                )
            )
        rank = int(row[F_RANK])
        u = self._view(
            int(row[F_OFF_A]),
            (shape[0], rank),
            bool(order & 1),
            _DT_SINGLE if dt & 1 else _DT_DOUBLE,
        )
        v = self._view(
            int(row[F_OFF_B]),
            (shape[1], rank),
            bool(order & 2),
            _DT_SINGLE if dt & 2 else _DT_DOUBLE,
        )
        return LowRankTile(LowRankFactor(u, v))

    def set_tile(self, m: int, k: int, tile: Tile) -> None:
        """Publish a tile into its slot (reservation or spill)."""
        key = (m, k)
        slot = self._slot[key]
        expected = self._shapes[key]
        if tile.shape != expected:
            raise ValueError(
                f"tile {key} shape {tile.shape} != expected {expected}"
            )
        row = self._table[slot]
        if isinstance(tile, NullTile):
            row[F_KIND] = _KIND_NULL
            row[F_RANK] = 0
            row[F_OFF_A] = row[F_OFF_B] = -1
            row[F_ORDER] = 0
            row[F_DTYPE] = 0
        elif isinstance(tile, LowRankTile):
            u, fu = _pack_order(tile.u)
            v, fv = _pack_order(tile.v)
            su = _slots(u.size, u.dtype)
            sv = _slots(v.size, v.dtype)
            off = self._place(slot, key, su + sv)
            self._write_array(off, u, fu)
            self._write_array(off + su, v, fv)
            row[F_KIND] = _KIND_LR
            row[F_RANK] = tile.rank
            row[F_OFF_A] = off
            row[F_OFF_B] = off + su
            row[F_ORDER] = fu | (fv << 1)
            row[F_DTYPE] = int(u.dtype == _DT_SINGLE) | (
                int(v.dtype == _DT_SINGLE) << 1
            )
        elif isinstance(tile, DenseTile):
            d, fd = _pack_order(tile.data)
            off = self._place(slot, key, _slots(d.size, d.dtype))
            self._write_array(off, d, fd)
            row[F_KIND] = _KIND_DENSE
            row[F_RANK] = min(expected)
            row[F_OFF_A] = off
            row[F_OFF_B] = -1
            row[F_ORDER] = fd
            row[F_DTYPE] = int(d.dtype == _DT_SINGLE)
        else:
            raise TypeError(f"cannot store {type(tile)!r} in the arena")
        row[F_ROWS], row[F_COLS] = expected
        row[F_GEN] += 1

    def __iter__(self):
        return iter((key, self.tile(*key)) for key in self._keys)

    # ------------------------------------------------------------------
    # copies in and out
    # ------------------------------------------------------------------

    def materialize(self, m: int, k: int) -> Tile:
        """A private (heap) copy of a tile, preserving memory order.

        Coordinator-side retirement uses this: the returned tile's
        bytes are frozen — later in-place rewrites of the slot cannot
        touch it — so it is safe to hand to the checkpoint manager,
        the checksum ledger, and the caller's result matrix.
        """
        slot = self._slot[(m, k)]
        row = self._table[slot]
        kind = int(row[F_KIND])
        shape = (int(row[F_ROWS]), int(row[F_COLS]))
        if kind == _KIND_NULL:
            return NullTile(shape)
        order = int(row[F_ORDER])
        dt = int(row[F_DTYPE])
        if kind == _KIND_DENSE:
            view = self._view(
                int(row[F_OFF_A]),
                shape,
                bool(order & 1),
                _DT_SINGLE if dt & 1 else _DT_DOUBLE,
            )
            return DenseTile(view.copy(order="F" if order & 1 else "C"))
        rank = int(row[F_RANK])
        u = self._view(
            int(row[F_OFF_A]),
            (shape[0], rank),
            bool(order & 1),
            _DT_SINGLE if dt & 1 else _DT_DOUBLE,
        )
        v = self._view(
            int(row[F_OFF_B]),
            (shape[1], rank),
            bool(order & 2),
            _DT_SINGLE if dt & 2 else _DT_DOUBLE,
        )
        return LowRankTile(
            LowRankFactor(
                u.copy(order="F" if order & 1 else "C"),
                v.copy(order="F" if order & 2 else "C"),
            )
        )

    def flush_to(self, store) -> None:
        """Materialize every tile back into ``store`` via ``set_tile``."""
        for key in self._keys:
            store.set_tile(*key, self.materialize(*key))

    # ------------------------------------------------------------------
    # retry/rollback snapshots (byte-level: slots are rewritten in place)
    # ------------------------------------------------------------------

    def snapshot(self, keys) -> dict:
        """Descriptor rows + payload bytes for ``keys`` (pre-attempt)."""
        snap = {}
        for key in set(keys):
            slot = self._slot[key]
            row = self._table[slot].copy()
            blobs = []
            kind = int(row[F_KIND])
            dt = int(row[F_DTYPE])
            if kind == _KIND_DENSE:
                size = _slots(
                    int(row[F_ROWS]) * int(row[F_COLS]),
                    _DT_SINGLE if dt & 1 else _DT_DOUBLE,
                )
                blobs.append((int(row[F_OFF_A]), self._elems[
                    int(row[F_OFF_A]) : int(row[F_OFF_A]) + size
                ].copy()))
            elif kind == _KIND_LR:
                for field, dim, bit in (
                    (F_OFF_A, F_ROWS, 1),
                    (F_OFF_B, F_COLS, 2),
                ):
                    size = _slots(
                        int(row[dim]) * int(row[F_RANK]),
                        _DT_SINGLE if dt & bit else _DT_DOUBLE,
                    )
                    off = int(row[field])
                    blobs.append((off, self._elems[off : off + size].copy()))
            snap[key] = (row, blobs)
        return snap

    def restore(self, snapshot: dict) -> None:
        """Roll slots back to their :meth:`snapshot` state."""
        for key, (row, blobs) in snapshot.items():
            slot = self._slot[key]
            for off, blob in blobs:
                self._elems[off : off + blob.size] = blob
            self._table[slot] = row

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def segment_names(self) -> tuple[str, str]:
        """(payload, descriptor) shared-memory segment names — the leak
        check in CI asserts none survive test teardown."""
        return (self._payload.name, self._desc_shm.name)

    def close(self) -> None:
        """Detach this process's mappings (workers call this on exit)."""
        if self._closed:
            return
        self._closed = True
        # Views into the buffers must be dropped before close().
        self._header = self._table = self._elems = None
        self._payload.close()
        self._desc_shm.close()

    def break_lock(self) -> bool:
        """Force-release the spill-allocator lock if its holder died.

        A worker SIGKILLed inside :meth:`_spill_alloc` (a
        microseconds-wide window, but a kill can land anywhere) leaves
        the shared lock held forever; every surviving worker's next
        spill allocation would then deadlock.  The supervisor calls
        this after confirming the holder is dead.  POSIX semaphores
        are releasable from any process, so a plain ``release`` frees
        an orphaned hold; returns True when a stuck lock was broken.
        """
        if self._lock.acquire(timeout=0.2):
            self._lock.release()
            return False
        try:
            self._lock.release()
            return True
        except (ValueError, OSError):  # pragma: no cover - platform
            return False

    def unlink(self) -> None:
        """Destroy the segments (owner/coordinator only, after close)."""
        if self._owner:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._payload.unlink()
            self._desc_shm.unlink()

    def __enter__(self) -> "TileArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
