"""General (non-symmetric) TLR tile-matrix container.

The Cholesky path stores only the lower triangle; the LU path (the
framework generality demonstrated by the HiCMA group's acoustic-BEM
work, ref. [11] of the paper) needs the full tile grid.  Tiles use
the same dense / low-rank / null taxonomy.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.config import DENSE_RANK_FRACTION, DTYPE
from repro.linalg.lowrank import (
    CompressionPolicy,
    CompressionStats,
    LowRankFactor,
    compress_block,
    resolve_compression,
)
from repro.linalg.precision import (
    StoragePolicy,
    downcast_factor,
    factor_significance,
    resolve_storage,
)
from repro.linalg.tile import DenseTile, Tile, as_tile
from repro.utils.validation import check_positive, check_square_matrix

__all__ = ["GeneralTLRMatrix"]


class GeneralTLRMatrix:
    """Full tile grid of a square TLR matrix (LU-oriented)."""

    def __init__(
        self,
        n: int,
        tile_size: int,
        tiles: dict[tuple[int, int], Tile],
        accuracy: float,
        max_rank: int | None = None,
        *,
        compression: CompressionPolicy | None = None,
        storage: StoragePolicy | None = None,
        compression_stats: CompressionStats | None = None,
    ) -> None:
        check_positive("n", n)
        check_positive("tile_size", tile_size)
        check_positive("accuracy", accuracy)
        self.n = int(n)
        self.tile_size = int(tile_size)
        self.accuracy = float(accuracy)
        self.max_rank = max_rank
        self.compression = compression
        self.storage = storage
        self.compression_stats = compression_stats
        self._tiles = tiles
        nt = self.n_tiles
        for i in range(nt):
            for j in range(nt):
                if (i, j) not in tiles:
                    raise ValueError(f"missing tile ({i}, {j})")

    @classmethod
    def compress(
        cls,
        tile_source: Callable[[int, int], np.ndarray],
        n: int,
        tile_size: int,
        accuracy: float,
        max_rank: int | None = None,
        compression: CompressionPolicy | str | None = None,
        storage: StoragePolicy | str | None = None,
        seed_root: int = 0,
    ) -> "GeneralTLRMatrix":
        """Compress a square operator given a dense tile generator.

        ``compression``/``storage``/``seed_root`` behave exactly as in
        :meth:`repro.linalg.tile_matrix.TLRMatrix.compress`.
        """
        if max_rank is None:
            max_rank = max(1, int(DENSE_RANK_FRACTION * tile_size))
        policy = resolve_compression(compression, seed_root=seed_root)
        storage_policy = resolve_storage(storage)
        stats = CompressionStats()
        nt = -(-n // tile_size)
        tiles: dict[tuple[int, int], Tile] = {}
        for i in range(nt):
            for j in range(nt):
                block = np.asarray(tile_source(i, j), dtype=DTYPE)
                if i == j:
                    tiles[(i, j)] = DenseTile(block)
                    continue
                result = compress_block(
                    block,
                    accuracy,
                    max_rank=max_rank,
                    policy=policy,
                    seed=policy.tile_seed(i, j, gen=0),
                    stats=stats,
                )
                if isinstance(result, LowRankFactor):
                    dtype = storage_policy.storage_dtype(
                        i, j, factor_significance(result), accuracy
                    )
                    if dtype != np.dtype(DTYPE):
                        result = downcast_factor(result, dtype)
                        stats.fp32_tiles += 1
                tiles[(i, j)] = as_tile(result, block.shape)
        return cls(
            n,
            tile_size,
            tiles,
            accuracy,
            max_rank,
            compression=policy,
            storage=storage_policy,
            compression_stats=stats,
        )

    @classmethod
    def from_dense(
        cls, a: np.ndarray, tile_size: int, accuracy: float,
        max_rank: int | None = None,
        compression: CompressionPolicy | str | None = None,
        storage: StoragePolicy | str | None = None,
        seed_root: int = 0,
    ) -> "GeneralTLRMatrix":
        check_square_matrix("a", a)
        a = np.asarray(a, dtype=DTYPE)
        b = tile_size

        def source(i: int, j: int) -> np.ndarray:
            return a[i * b : (i + 1) * b, j * b : (j + 1) * b]

        return cls.compress(
            source,
            a.shape[0],
            tile_size,
            accuracy,
            max_rank,
            compression=compression,
            storage=storage,
            seed_root=seed_root,
        )

    # ------------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return -(-self.n // self.tile_size)

    def tile(self, i: int, j: int) -> Tile:
        return self._tiles[(i, j)]

    def set_tile(self, i: int, j: int, tile: Tile) -> None:
        if (i, j) not in self._tiles:
            raise KeyError(f"tile {(i, j)} out of range")
        if tile.shape != self._tiles[(i, j)].shape:
            raise ValueError(
                f"tile ({i}, {j}) shape {tile.shape} != "
                f"{self._tiles[(i, j)].shape}"
            )
        self._tiles[(i, j)] = tile

    def __iter__(self):
        return iter(self._tiles.items())

    def rank_matrix(self) -> np.ndarray:
        nt = self.n_tiles
        out = np.zeros((nt, nt), dtype=np.int64)
        for (i, j), t in self._tiles.items():
            out[i, j] = t.rank
        return out

    def density(self) -> float:
        """Non-null ratio over off-diagonal tiles."""
        nt = self.n_tiles
        off = [(i, j) for i in range(nt) for j in range(nt) if i != j]
        if not off:
            return 1.0
        return sum(1 for ij in off if not self._tiles[ij].is_null) / len(off)

    def memory_bytes(self) -> int:
        return sum(t.nbytes for t in self._tiles.values())

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=DTYPE)
        b = self.tile_size
        for (i, j), t in self._tiles.items():
            block = t.to_dense()
            out[i * b : i * b + block.shape[0], j * b : j * b + block.shape[1]] = (
                block
            )
        return out

    def copy(self) -> "GeneralTLRMatrix":
        return GeneralTLRMatrix(
            self.n,
            self.tile_size,
            dict(self._tiles),
            self.accuracy,
            self.max_rank,
            compression=self.compression,
            storage=self.storage,
            compression_stats=self.compression_stats,
        )

    def __repr__(self) -> str:
        return (
            f"GeneralTLRMatrix(n={self.n}, tile_size={self.tile_size}, "
            f"NT={self.n_tiles}, density={self.density():.3f})"
        )
