"""Symmetric TLR tile-matrix container.

Stores the lower triangle of a symmetric operator as a grid of tiles:
dense on the diagonal, compressed (low-rank / null / dense) below it.
This is the data layout both factorization drivers operate on, and the
object Algorithm 1 analyzes for DAG trimming.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.config import DENSE_RANK_FRACTION, DTYPE
from repro.linalg.lowrank import (
    CompressionPolicy,
    CompressionStats,
    LowRankFactor,
    compress_block,
    resolve_compression,
)
from repro.linalg.precision import (
    StoragePolicy,
    downcast_factor,
    factor_significance,
    resolve_storage,
)
from repro.linalg.tile import DenseTile, Tile, as_tile
from repro.utils.validation import check_positive, check_square_matrix

__all__ = ["TLRMatrix"]


class TLRMatrix:
    """Lower-triangular tile storage of a symmetric TLR matrix.

    Tiles are indexed ``(m, k)`` with ``m >= k``; accessing the strict
    upper triangle raises, mirroring the one-sided storage used by the
    factorization.  The container is mutable: factorization drivers
    replace tiles in place via :meth:`set_tile`.
    """

    def __init__(
        self,
        n: int,
        tile_size: int,
        tiles: dict[tuple[int, int], Tile],
        accuracy: float,
        max_rank: int | None = None,
        *,
        compression: CompressionPolicy | None = None,
        storage: StoragePolicy | None = None,
        compression_stats: CompressionStats | None = None,
    ) -> None:
        check_positive("n", n)
        check_positive("tile_size", tile_size)
        check_positive("accuracy", accuracy)
        self.n = int(n)
        self.tile_size = int(tile_size)
        self.accuracy = float(accuracy)
        self.max_rank = max_rank
        #: compression policy the build used; GEMM rank rounding reads
        #: it (via the store) to pick its method and derive seeds.
        #: ``None`` (e.g. a hand-assembled matrix) means exact SVD.
        self.compression = compression
        #: storage-precision policy the build used (``None`` = fp64)
        self.storage = storage
        #: build-time method/rank counters (``None`` when not built
        #: through :meth:`compress`)
        self.compression_stats = compression_stats
        self._tiles = tiles
        nt = self.n_tiles
        #: per-column cache of sub-diagonal non-null rows (None = stale)
        self._col_structure: list[list[int] | None] = [None] * nt
        for (m, k) in tiles:
            if not (0 <= k <= m < nt):
                raise ValueError(f"tile index {(m, k)} outside lower triangle")
        for idx in ((m, k) for k in range(nt) for m in range(k, nt)):
            if idx not in tiles:
                raise ValueError(f"missing tile {idx}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def compress(
        cls,
        tile_source: Callable[[int, int], np.ndarray],
        n: int,
        tile_size: int,
        accuracy: float,
        max_rank: int | None = None,
        compression: CompressionPolicy | str | None = None,
        storage: StoragePolicy | str | None = None,
        seed_root: int = 0,
    ) -> "TLRMatrix":
        """Build a TLR matrix by compressing tiles from a generator.

        ``tile_source(i, j)`` must return the dense ``(i, j)`` tile of
        the symmetric operator (e.g.
        :meth:`repro.kernels.matgen.RBFMatrixGenerator.tile`).
        Diagonal tiles stay dense; off-diagonal tiles are compressed to
        the ``accuracy`` threshold with rank capped by ``max_rank``
        (default: ``DENSE_RANK_FRACTION * tile_size``).

        ``compression`` picks the method (``"svd"``/``"rand"`` or a
        full :class:`~repro.linalg.lowrank.CompressionPolicy`; default
        honors ``$REPRO_COMPRESSION``), with per-tile sampling seeds
        derived from ``seed_root`` — pass the operator's fingerprint so
        rebuilds of the same spec are bitwise identical.  ``storage``
        selects the tile-storage precision (``"fp64"``/``"mixed"`` or a
        :class:`~repro.linalg.precision.StoragePolicy`; default honors
        ``$REPRO_STORAGE_PRECISION``).
        """
        check_positive("tile_size", tile_size)
        if max_rank is None:
            max_rank = max(1, int(DENSE_RANK_FRACTION * tile_size))
        policy = resolve_compression(compression, seed_root=seed_root)
        storage_policy = resolve_storage(storage)
        stats = CompressionStats()
        nt = -(-n // tile_size)
        tiles: dict[tuple[int, int], Tile] = {}
        for k in range(nt):
            for m in range(k, nt):
                block = np.asarray(tile_source(m, k), dtype=DTYPE)
                if m == k:
                    tiles[(m, k)] = DenseTile(block)
                    continue
                result = compress_block(
                    block,
                    accuracy,
                    max_rank=max_rank,
                    policy=policy,
                    seed=policy.tile_seed(m, k, gen=0),
                    stats=stats,
                )
                if isinstance(result, LowRankFactor):
                    dtype = storage_policy.storage_dtype(
                        m, k, factor_significance(result), accuracy
                    )
                    if dtype != np.dtype(DTYPE):
                        result = downcast_factor(result, dtype)
                        stats.fp32_tiles += 1
                tiles[(m, k)] = as_tile(result, block.shape)
        return cls(
            n,
            tile_size,
            tiles,
            accuracy,
            max_rank,
            compression=policy,
            storage=storage_policy,
            compression_stats=stats,
        )

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_size: int,
        accuracy: float,
        max_rank: int | None = None,
        compression: CompressionPolicy | str | None = None,
        storage: StoragePolicy | str | None = None,
        seed_root: int = 0,
    ) -> "TLRMatrix":
        """Compress an explicit dense symmetric matrix."""
        check_square_matrix("a", a)
        a = np.asarray(a, dtype=DTYPE)
        b = tile_size

        def source(i: int, j: int) -> np.ndarray:
            return a[i * b : (i + 1) * b, j * b : (j + 1) * b]

        return cls.compress(
            source,
            a.shape[0],
            tile_size,
            accuracy,
            max_rank,
            compression=compression,
            storage=storage,
            seed_root=seed_root,
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return -(-self.n // self.tile_size)

    def tile(self, m: int, k: int) -> Tile:
        """The ``(m, k)`` tile of the lower triangle (``m >= k``)."""
        if k > m:
            raise IndexError(
                f"tile ({m}, {k}) is in the strict upper triangle; "
                "storage is lower-triangular"
            )
        return self._tiles[(m, k)]

    def set_tile(self, m: int, k: int, tile: Tile) -> None:
        """Replace a tile (used by factorization drivers)."""
        if k > m:
            raise IndexError(f"cannot set upper-triangle tile ({m}, {k})")
        if (m, k) not in self._tiles:
            raise KeyError(f"tile {(m, k)} out of range")
        expected = self._tiles[(m, k)].shape
        if tile.shape != expected:
            raise ValueError(
                f"tile ({m}, {k}) shape {tile.shape} != expected {expected}"
            )
        self._tiles[(m, k)] = tile
        # invalidate only column k's structure cache: a single-tile
        # write must not force a full NT^2 rescan on the next solve
        self._col_structure[k] = None

    def lower_column_structure(self) -> list[list[int]]:
        """Per-column sorted lists of sub-diagonal non-null tile rows.

        ``structure[k]`` holds every ``m > k`` with a non-null stored
        tile ``(m, k)`` — the only tiles a triangular solve must touch
        in column ``k``.  Cached per column; :meth:`set_tile`
        invalidates only the written tile's column, so a factor that
        is solved against many times (the serving hot path) pays each
        column's O(NT) scan once, and a single-tile update rescans one
        column instead of the whole NT² grid.
        """
        nt = self.n_tiles
        cols = self._col_structure
        for k in range(nt):
            if cols[k] is None:
                cols[k] = [
                    m
                    for m in range(k + 1, nt)
                    if not self._tiles[(m, k)].is_null
                ]
        return cols

    def __iter__(self):
        """Iterate ``((m, k), tile)`` over the stored lower triangle."""
        return iter(self._tiles.items())

    # ------------------------------------------------------------------
    # structure queries (feed Algorithm 1 and the figures)
    # ------------------------------------------------------------------

    def rank_matrix(self) -> np.ndarray:
        """``(NT, NT)`` integer array of stored tile ranks (lower part).

        Dense off-diagonal tiles report their full rank ``min(b, b)``;
        the upper triangle is filled symmetrically for heat-map
        plotting (Fig. 1).
        """
        nt = self.n_tiles
        ranks = np.zeros((nt, nt), dtype=np.int64)
        for (m, k), tile in self._tiles.items():
            ranks[m, k] = tile.rank
            ranks[k, m] = tile.rank
        return ranks

    def rank_array(self) -> np.ndarray:
        """The 1D ``rank[k * NT + m]`` layout used by Algorithm 1."""
        nt = self.n_tiles
        rank = np.zeros(nt * nt, dtype=np.int64)
        for (m, k), tile in self._tiles.items():
            rank[k * nt + m] = tile.rank
            rank[m * nt + k] = tile.rank
        return rank

    def off_diagonal_rank_stats(self) -> dict[str, float]:
        """Max / average / min rank over *non-null* off-diagonal tiles.

        The paper's Fig. 1 annotation: "the average rank is only for
        non-zero tiles".  Returns zeros if every off-diagonal tile is
        null.
        """
        ranks = [
            t.rank for (m, k), t in self._tiles.items() if m != k and t.rank > 0
        ]
        if not ranks:
            return {"max": 0.0, "avg": 0.0, "min": 0.0}
        return {
            "max": float(max(ranks)),
            "avg": float(np.mean(ranks)),
            "min": float(min(ranks)),
        }

    def density(self) -> float:
        """Ratio of non-null off-diagonal tiles (Sec. V definition).

        ``sparsity = 1 - density``.  Diagonal tiles are always dense
        and excluded from the ratio; a 1x1 tile grid has density 1.
        """
        off = [(m, k) for (m, k) in self._tiles if m != k]
        if not off:
            return 1.0
        nonzero = sum(1 for idx in off if not self._tiles[idx].is_null)
        return nonzero / len(off)

    def memory_bytes(self) -> int:
        """Bytes of stored numerical payload (compressed footprint)."""
        return sum(t.nbytes for t in self._tiles.values())

    def dense_bytes(self) -> int:
        """Bytes the same lower triangle would occupy fully dense."""
        return sum(
            int(np.prod(t.shape)) * np.dtype(DTYPE).itemsize
            for t in self._tiles.values()
        )

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def to_dense(self, symmetrize: bool = True) -> np.ndarray:
        """Materialize as a dense array (laptop-scale validation only).

        With ``symmetrize=True`` the upper triangle is mirrored from
        the stored lower triangle; otherwise it is left zero (useful to
        inspect the raw factor after an in-place factorization).
        """
        out = np.zeros((self.n, self.n), dtype=DTYPE)
        b = self.tile_size
        for (m, k), tile in self._tiles.items():
            block = tile.to_dense()
            out[m * b : m * b + block.shape[0], k * b : k * b + block.shape[1]] = block
            if symmetrize and m != k:
                out[
                    k * b : k * b + block.shape[1], m * b : m * b + block.shape[0]
                ] = block.T
        return out

    def copy(self) -> "TLRMatrix":
        """Deep copy (tiles are immutable-by-convention, but drivers
        replace them; copying the dict is enough for independence as
        kernels never mutate operand arrays in place)."""
        return TLRMatrix(
            self.n,
            self.tile_size,
            dict(self._tiles),
            self.accuracy,
            self.max_rank,
            compression=self.compression,
            storage=self.storage,
            compression_stats=self.compression_stats,
        )

    def __repr__(self) -> str:
        return (
            f"TLRMatrix(n={self.n}, tile_size={self.tile_size}, "
            f"NT={self.n_tiles}, accuracy={self.accuracy:g}, "
            f"density={self.density():.3f})"
        )
