"""Tile low-rank linear algebra — the HiCMA substrate.

Dense tiles, low-rank ``U Vᵀ`` tiles and null tiles; compression and
recompression; and the four tile kernels of TLR Cholesky
(POTRF / TRSM / SYRK / GEMM) in dense and TLR variants.
"""

from repro.linalg.lowrank import (
    CompressionPolicy,
    CompressionStats,
    LowRankFactor,
    compress_block,
    derive_tile_seed,
    randomized_compress,
    randomized_recompress,
    recompress,
    resolve_compression,
    truncated_svd,
)
from repro.linalg.precision import (
    StoragePolicy,
    downcast_factor,
    factor_significance,
    resolve_storage,
)
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, Tile, TileKind
from repro.linalg.tile_matrix import TLRMatrix
from repro.linalg.aca import ACAGenerator, aca_partial
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.linalg.hodlr import HODLRMatrix, build_hodlr
from repro.linalg.matvec import RefinementResult, refine_solve, tlr_matvec
from repro.linalg import flops
from repro.linalg import kernels_dense
from repro.linalg import kernels_tlr

__all__ = [
    "LowRankFactor",
    "truncated_svd",
    "compress_block",
    "recompress",
    "CompressionPolicy",
    "CompressionStats",
    "resolve_compression",
    "derive_tile_seed",
    "randomized_compress",
    "randomized_recompress",
    "StoragePolicy",
    "resolve_storage",
    "downcast_factor",
    "factor_significance",
    "Tile",
    "TileKind",
    "DenseTile",
    "LowRankTile",
    "NullTile",
    "TLRMatrix",
    "ACAGenerator",
    "aca_partial",
    "GeneralTLRMatrix",
    "HODLRMatrix",
    "build_hodlr",
    "tlr_matvec",
    "refine_solve",
    "RefinementResult",
    "flops",
    "kernels_dense",
    "kernels_tlr",
]
