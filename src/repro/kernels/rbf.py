"""Radial basis functions (Section IV-C).

The paper focuses on the *globally supported* Gaussian RBF
``phi(r) = exp(-r^2)`` scaled by a shape parameter ``delta``:
``phi_delta(r) = phi(r / delta)``.  Global support makes the operator
formally dense; the shape parameter controls correlation strength and
thus the compressed operator's density (Fig. 1, Fig. 4).

Additional classic kernels are provided for completeness and for
ablation: multiquadric / inverse multiquadric / thin-plate spline
(global support) and Wendland C2 (compact support — exactly zero
outside the support radius, giving a *sparse* operator directly).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RadialBasisFunction",
    "GaussianRBF",
    "MultiquadricRBF",
    "InverseMultiquadricRBF",
    "ThinPlateSplineRBF",
    "WendlandC2RBF",
]


class RadialBasisFunction(ABC):
    """A scalar radial kernel ``phi(r)`` with a shape parameter."""

    #: True if phi is positive definite, i.e. the pure RBF matrix is SPD
    #: and Cholesky applies without polynomial augmentation.
    positive_definite: bool = False

    #: True if phi has compact support (zero beyond the support radius).
    compact_support: bool = False

    @abstractmethod
    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Evaluate ``phi`` elementwise on non-negative distances."""

    def scaled(self, r: np.ndarray, delta: float) -> np.ndarray:
        """The scaled kernel ``phi_delta(r) = phi(r / delta)``."""
        if delta <= 0.0:
            raise ValueError(f"shape parameter must be positive, got {delta}")
        return self(np.asarray(r, dtype=np.float64) / delta)


@dataclass(frozen=True)
class GaussianRBF(RadialBasisFunction):
    """Gaussian kernel ``exp(-r^2)`` — the paper's kernel."""

    positive_definite = True

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        return np.exp(-(r * r))


@dataclass(frozen=True)
class MultiquadricRBF(RadialBasisFunction):
    """Multiquadric ``sqrt(1 + r^2)`` (conditionally positive definite)."""

    positive_definite = False

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        return np.sqrt(1.0 + r * r)


@dataclass(frozen=True)
class InverseMultiquadricRBF(RadialBasisFunction):
    """Inverse multiquadric ``1 / sqrt(1 + r^2)`` (positive definite)."""

    positive_definite = True

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        return 1.0 / np.sqrt(1.0 + r * r)


@dataclass(frozen=True)
class ThinPlateSplineRBF(RadialBasisFunction):
    """Thin-plate spline ``r^2 log r`` (conditionally positive definite)."""

    positive_definite = False

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        out = np.zeros_like(r)
        nz = r > 0.0
        out[nz] = r[nz] * r[nz] * np.log(r[nz])
        return out


@dataclass(frozen=True)
class WendlandC2RBF(RadialBasisFunction):
    """Wendland C2 ``(1-r)^4_+ (4r+1)`` — compactly supported, SPD in 3D."""

    positive_definite = True
    compact_support = True

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        base = np.maximum(0.0, 1.0 - r)
        return base**4 * (4.0 * r + 1.0)
