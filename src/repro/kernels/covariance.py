"""Matern covariance kernels — the sibling HiCMA application.

The diamond distribution is motivated by "general 3D covariance
matrix problems" (Sec. VII-B), and the HiCMA line of work the paper
builds on (refs. [8]-[10], [13]) targets geospatial statistics with
Matern covariances.  This module supplies those kernels so the same
TLR pipeline serves that application (see
``repro.apps.spatial_statistics``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gamma, kv

from repro.kernels.rbf import RadialBasisFunction

__all__ = ["MaternKernel", "matern_half", "matern_three_half", "matern_five_half"]


@dataclass(frozen=True)
class MaternKernel(RadialBasisFunction):
    """Matern covariance with smoothness ``nu`` (variance 1).

    ``phi(r) = 2^(1-nu)/Gamma(nu) * (sqrt(2 nu) r)^nu *
    K_nu(sqrt(2 nu) r)`` — the standard parameterization — with the
    length scale applied through :meth:`scaled` like every other
    kernel here.  Closed forms are used for nu = 1/2, 3/2, 5/2.
    """

    nu: float = 0.5
    positive_definite = True

    def __call__(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        if self.nu <= 0:
            raise ValueError(f"nu must be positive, got {self.nu}")
        if self.nu == 0.5:
            return np.exp(-r)
        if self.nu == 1.5:
            c = np.sqrt(3.0) * r
            return (1.0 + c) * np.exp(-c)
        if self.nu == 2.5:
            c = np.sqrt(5.0) * r
            return (1.0 + c + c * c / 3.0) * np.exp(-c)
        zero = r == 0.0
        arg = np.sqrt(2.0 * self.nu) * np.where(zero, 1.0, r)
        coef = 2.0 ** (1.0 - self.nu) / gamma(self.nu)
        out = coef * arg**self.nu * kv(self.nu, arg)
        out = np.where(zero, 1.0, out)
        return out


def matern_half() -> MaternKernel:
    """Exponential covariance (nu = 1/2)."""
    return MaternKernel(nu=0.5)


def matern_three_half() -> MaternKernel:
    return MaternKernel(nu=1.5)


def matern_five_half() -> MaternKernel:
    return MaternKernel(nu=2.5)
