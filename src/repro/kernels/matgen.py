"""Tile-wise generation of the RBF matrix operator.

The paper never materializes the full dense matrix at once: tiles are
generated on demand (per task) and compressed immediately.  The
generator here mirrors that: ``tile(i, j)`` produces the ``b x b``
dense block of pairwise kernel evaluations between two point ranges.

An SPD safeguard: Gaussian RBF matrices are symmetric positive
definite in exact arithmetic, but for large shape parameters they are
numerically near-singular.  Like practical RBF solvers we add a small
diagonal regularization (``nugget``), expressed relative to the unit
diagonal, which does not perturb the interpolation beyond the TLR
accuracy threshold when chosen well below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DTYPE
from repro.kernels.rbf import GaussianRBF, RadialBasisFunction
from repro.utils.validation import check_positive

__all__ = ["RBFMatrixGenerator", "dense_rbf_matrix"]


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between point sets ``a`` and ``b``.

    Uses the expanded-square formulation (one GEMM) rather than
    broadcasting the full ``(m, n, 3)`` difference tensor.
    """
    aa = np.einsum("ij,ij->i", a, a)
    bb = np.einsum("ij,ij->i", b, b)
    sq = aa[:, None] + bb[None, :] - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


@dataclass
class RBFMatrixGenerator:
    """Lazily generates tiles of ``A[i, j] = phi((||x_i - x_j||)/delta)``.

    Parameters
    ----------
    points:
        ``(n, 3)`` boundary-node coordinates (already reordered, e.g.
        along the Hilbert curve).
    shape_parameter:
        The Gaussian shape parameter ``delta`` (Sec. IV-C).
    tile_size:
        Tile edge ``b``; the last tile in each dimension may be short.
    kernel:
        The radial kernel (defaults to the paper's Gaussian).
    nugget:
        Relative diagonal regularization added to diagonal tiles.
    """

    points: np.ndarray
    shape_parameter: float
    tile_size: int
    kernel: RadialBasisFunction = field(default_factory=GaussianRBF)
    nugget: float = 1.0e-8

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=DTYPE)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(
                f"points must have shape (n, 3), got {self.points.shape}"
            )
        check_positive("shape_parameter", self.shape_parameter)
        check_positive("tile_size", self.tile_size)
        if self.nugget < 0.0:
            raise ValueError(f"nugget must be >= 0, got {self.nugget}")

    @property
    def n(self) -> int:
        """Matrix order (number of boundary nodes)."""
        return len(self.points)

    @property
    def n_tiles(self) -> int:
        """Number of tile rows/columns ``NT = ceil(n / b)``."""
        return -(-self.n // self.tile_size)

    def tile_range(self, i: int) -> tuple[int, int]:
        """Half-open row range ``[lo, hi)`` covered by tile index ``i``."""
        if not 0 <= i < self.n_tiles:
            raise IndexError(f"tile index {i} out of range [0, {self.n_tiles})")
        lo = i * self.tile_size
        return lo, min(lo + self.tile_size, self.n)

    def tile(self, i: int, j: int) -> np.ndarray:
        """Dense ``b x b`` tile ``A[i*b:(i+1)*b, j*b:(j+1)*b]``."""
        ri = slice(*self.tile_range(i))
        rj = slice(*self.tile_range(j))
        dist = _pairwise_distances(self.points[ri], self.points[rj])
        block = self.kernel.scaled(dist, self.shape_parameter)
        if i == j and self.nugget > 0.0:
            block[np.diag_indices_from(block)] += self.nugget
        return np.ascontiguousarray(block, dtype=DTYPE)

    def dense(self) -> np.ndarray:
        """The full dense operator (laptop-scale validation only)."""
        dist = _pairwise_distances(self.points, self.points)
        a = self.kernel.scaled(dist, self.shape_parameter)
        if self.nugget > 0.0:
            a[np.diag_indices_from(a)] += self.nugget
        return np.ascontiguousarray(a, dtype=DTYPE)


def dense_rbf_matrix(
    points: np.ndarray,
    shape_parameter: float,
    kernel: RadialBasisFunction | None = None,
    nugget: float = 1.0e-8,
) -> np.ndarray:
    """Convenience wrapper: the full dense RBF operator."""
    gen = RBFMatrixGenerator(
        points=np.asarray(points),
        shape_parameter=shape_parameter,
        tile_size=max(1, len(points)),
        kernel=kernel if kernel is not None else GaussianRBF(),
        nugget=nugget,
    )
    return gen.dense()
