"""Matrix-entry kernels: radial basis functions, Matern covariances,
and tile-wise operator generation."""

from repro.kernels.covariance import (
    MaternKernel,
    matern_five_half,
    matern_half,
    matern_three_half,
)
from repro.kernels.matgen import RBFMatrixGenerator, dense_rbf_matrix
from repro.kernels.rbf import (
    GaussianRBF,
    InverseMultiquadricRBF,
    MultiquadricRBF,
    RadialBasisFunction,
    ThinPlateSplineRBF,
    WendlandC2RBF,
)

__all__ = [
    "RadialBasisFunction",
    "GaussianRBF",
    "MultiquadricRBF",
    "InverseMultiquadricRBF",
    "ThinPlateSplineRBF",
    "WendlandC2RBF",
    "RBFMatrixGenerator",
    "dense_rbf_matrix",
    "MaternKernel",
    "matern_half",
    "matern_three_half",
    "matern_five_half",
]
