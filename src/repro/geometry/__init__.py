"""Point-cloud geometry for the RBF mesh-deformation application."""

from repro.geometry.pointclouds import (
    fibonacci_sphere,
    min_spacing,
    random_cloud,
    regular_grid,
)
from repro.geometry.population import virus_population
from repro.geometry.virus import synthetic_virus

__all__ = [
    "fibonacci_sphere",
    "min_spacing",
    "random_cloud",
    "regular_grid",
    "synthetic_virus",
    "virus_population",
]
