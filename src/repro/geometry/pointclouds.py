"""Basic 3D point-cloud generators.

These supply the boundary-node sets whose pairwise Gaussian RBF
evaluations form the SPD matrix operator of Section IV-C.  All
generators return ``(n, 3)`` float64 arrays.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.validation import check_positive

__all__ = ["fibonacci_sphere", "regular_grid", "random_cloud", "min_spacing"]


def fibonacci_sphere(
    n: int, radius: float = 1.0, center: np.ndarray | None = None
) -> np.ndarray:
    """Nearly-uniform points on a sphere via the Fibonacci lattice.

    This is the workhorse for synthetic virus capsids: it gives an
    unstructured but quasi-uniform surface sampling akin to a surface
    mesh extracted from a triangulated molecular envelope.
    """
    check_positive("n", n)
    check_positive("radius", radius)
    i = np.arange(n, dtype=np.float64)
    golden = (1.0 + np.sqrt(5.0)) / 2.0
    theta = 2.0 * np.pi * i / golden
    z = 1.0 - (2.0 * i + 1.0) / n
    r_xy = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    pts = radius * np.column_stack([r_xy * np.cos(theta), r_xy * np.sin(theta), z])
    if center is not None:
        pts += np.asarray(center, dtype=np.float64)
    return pts


def regular_grid(n_per_dim: int, extent: float = 1.0) -> np.ndarray:
    """Points of a regular ``n³`` grid filling ``[0, extent]³``."""
    check_positive("n_per_dim", n_per_dim)
    check_positive("extent", extent)
    axis = np.linspace(0.0, extent, n_per_dim)
    xx, yy, zz = np.meshgrid(axis, axis, axis, indexing="ij")
    return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])


def random_cloud(
    n: int, extent: float = 1.0, seed: int | None = None
) -> np.ndarray:
    """Uniform random points in ``[0, extent]³``."""
    check_positive("n", n)
    check_positive("extent", extent)
    rng = np.random.default_rng(seed)
    return extent * rng.random((n, 3))


def min_spacing(points: np.ndarray) -> float:
    """Minimum pairwise distance, computed via a k-d tree in O(n log n).

    The paper's shape-parameter rule (Sec. IV-C) scales the Gaussian
    RBF by half this distance.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    if len(points) < 2:
        raise ValueError("need at least two points")
    tree = cKDTree(points)
    dist, _ = tree.query(points, k=2)
    nearest = dist[:, 1]
    d = float(nearest.min())
    if d == 0.0:
        raise ValueError("point cloud contains duplicate points")
    return d
