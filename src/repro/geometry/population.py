"""Virus population in a cube — the paper's evaluation workload.

Section VIII-A: "We vary the number of viruses in a cube with edge
length 1.7 um from 30 (i.e., 1.49M mesh points) to 1200 (i.e.,
52.57M)."  Each virion contributes 44,932 mesh points; virions are
placed at non-overlapping random positions, and the combined point
cloud is reordered along the Hilbert curve (Sec. IV-C).

At laptop scale the same generator is used with a reduced per-virion
resolution; the geometry *statistics* (packing fraction, cluster
diameter relative to cube edge) are preserved by scaling the virion
diameter with the cube edge.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.virus import VIRUS_DIAMETER, synthetic_virus
from repro.utils.hilbert import hilbert_order
from repro.utils.validation import check_positive

__all__ = ["virus_population", "CUBE_EDGE"]

#: Edge length of the enclosing cube in micrometres (paper: 1.7 um).
CUBE_EDGE = 1.7


def virus_population(
    n_viruses: int,
    points_per_virus: int = 44932,
    cube_edge: float = CUBE_EDGE,
    virus_diameter: float = VIRUS_DIAMETER,
    reorder: bool = True,
    seed: int | None = 0,
    max_placement_tries: int = 10000,
) -> np.ndarray:
    """Point cloud of ``n_viruses`` virions packed in a cube.

    Virion centers are drawn uniformly at random subject to a
    non-overlap constraint (center separation > one spiked diameter).

    Parameters
    ----------
    n_viruses:
        Number of virions (paper: 30 .. 1200).
    points_per_virus:
        Boundary points per virion (paper: 44,932; use smaller values
        for laptop-scale runs).
    cube_edge:
        Cube edge length.
    virus_diameter:
        Capsid diameter; must allow ``n_viruses`` non-overlapping
        placements inside the cube.
    reorder:
        Apply the Hilbert space-filling-curve permutation (Sec. IV-C).
    seed:
        RNG seed for placement and spike geometry.
    max_placement_tries:
        Rejection-sampling budget per virion.

    Returns
    -------
    ``(n_viruses * points_per_virus, 3)`` float64 array.
    """
    check_positive("n_viruses", n_viruses)
    check_positive("points_per_virus", points_per_virus)
    check_positive("cube_edge", cube_edge)
    check_positive("virus_diameter", virus_diameter)

    rng = np.random.default_rng(seed)
    # Spikes extend ~25% past the capsid radius; keep that margin.
    spiked_radius = 0.5 * virus_diameter * 1.30
    if 2.0 * spiked_radius >= cube_edge:
        raise ValueError(
            f"virus diameter {virus_diameter} does not fit cube edge {cube_edge}"
        )
    lo, hi = spiked_radius, cube_edge - spiked_radius

    centers = np.empty((n_viruses, 3))
    placed = 0
    tries = 0
    min_sep2 = (2.0 * spiked_radius) ** 2
    while placed < n_viruses:
        if tries >= max_placement_tries * n_viruses:
            raise RuntimeError(
                f"could not place {n_viruses} virions of diameter "
                f"{virus_diameter} in a cube of edge {cube_edge}"
            )
        tries += 1
        cand = lo + (hi - lo) * rng.random(3)
        if placed and np.min(
            np.sum((centers[:placed] - cand) ** 2, axis=1)
        ) < min_sep2:
            continue
        centers[placed] = cand
        placed += 1

    clouds = [
        synthetic_virus(
            n_points=points_per_virus,
            diameter=virus_diameter,
            center=centers[v],
            seed=None if seed is None else seed + 1 + v,
        )
        for v in range(n_viruses)
    ]
    points = np.vstack(clouds)
    if reorder:
        points = points[hilbert_order(points)]
    return points
