"""Synthetic SARS-CoV-2-like virion surface geometry.

The paper extracts the virus envelope from PDB 6VXX (spike
glycoprotein) and meshes it with 44,932 boundary points per virion.
The PDB data is unavailable offline, so we build the closest synthetic
equivalent (see DESIGN.md, substitutions): a spherical capsid sampled
with a Fibonacci lattice plus a corona of protruding spike clusters —
mushroom-shaped stalks capped by a head, matching the coarse geometry
of the trimeric spike.

What matters for the reproduction is not the exact coordinates but the
*geometry statistics* that control the RBF operator's rank structure:
a compact body of diameter ~100 nm, local point spacing roughly
uniform, and small dense clusters (spike heads) separated by gaps.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.pointclouds import fibonacci_sphere
from repro.utils.validation import check_positive

__all__ = ["synthetic_virus", "VIRUS_DIAMETER"]

#: Virion envelope diameter in micrometres (SARS-CoV-2: ~0.1 um).
VIRUS_DIAMETER = 0.1


def synthetic_virus(
    n_points: int = 44932,
    diameter: float = VIRUS_DIAMETER,
    n_spikes: int = 40,
    spike_height_frac: float = 0.25,
    spike_head_frac: float = 0.10,
    center: np.ndarray | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Surface point cloud of one synthetic virion.

    Parameters
    ----------
    n_points:
        Total boundary points (paper resolution: 44,932 per virion).
    diameter:
        Capsid diameter (same length unit as the enclosing cube).
    n_spikes:
        Number of spike proteins (SARS-CoV-2 carries ~24-40 trimers).
    spike_height_frac:
        Spike stalk length as a fraction of the capsid radius.
    spike_head_frac:
        Spike head radius as a fraction of the capsid radius.
    center:
        Optional ``(3,)`` translation of the virion center.
    seed:
        Seed controlling spike placement.

    Returns
    -------
    ``(n_points, 3)`` float64 array.
    """
    check_positive("n_points", n_points)
    check_positive("diameter", diameter)
    if n_spikes < 0:
        raise ValueError(f"n_spikes must be >= 0, got {n_spikes}")
    radius = 0.5 * diameter
    rng = np.random.default_rng(seed)

    # Budget: ~75% of points on the capsid, ~25% across spike heads.
    n_spike_pts_total = (n_points // 4) if n_spikes > 0 else 0
    n_capsid = n_points - n_spike_pts_total
    capsid = fibonacci_sphere(n_capsid, radius=radius)

    parts = [capsid]
    if n_spikes > 0:
        # Spike anchor directions: quasi-uniform via Fibonacci + jitter.
        anchors = fibonacci_sphere(n_spikes, radius=1.0)
        anchors += 0.05 * rng.standard_normal(anchors.shape)
        anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)

        per_spike = np.full(n_spikes, n_spike_pts_total // n_spikes)
        per_spike[: n_spike_pts_total % n_spikes] += 1
        head_r = spike_head_frac * radius
        tip = radius * (1.0 + spike_height_frac)
        for direction, m in zip(anchors, per_spike):
            if m == 0:
                continue
            head = fibonacci_sphere(int(m), radius=head_r, center=tip * direction)
            parts.append(head)

    pts = np.vstack(parts)
    if center is not None:
        pts = pts + np.asarray(center, dtype=np.float64)
    return pts
