"""Global configuration defaults for the HiCMA-PaRSEC reproduction.

All tolerances, default tile sizes, and numeric types live here so the
rest of the library never hard-codes them.  The values mirror the
paper's experimental setup (Section VIII-A) rescaled to laptop scale
where noted.
"""

from __future__ import annotations

import numpy as np

#: Floating-point dtype used for all matrix data (paper: double precision).
DTYPE = np.float64

#: Reduced-precision storage dtype for low-significance off-band tiles
#: under the ``"mixed"`` storage policy (compute stays DTYPE: kernels
#: promote on contact with fp64 operands).
STORAGE_DTYPE_SINGLE = np.float32

#: Default TLR accuracy threshold (paper Sec. VIII-A: 1e-4 unless noted).
DEFAULT_ACCURACY = 1.0e-4

#: Default tile size for laptop-scale runs.  The paper tunes
#: b = O(sqrt(N)); benchmarks tune this per matrix size the same way.
DEFAULT_TILE_SIZE = 256

#: Default Gaussian RBF shape parameter delta.  The paper picks
#: delta = 3.7e-4 for a 1.7 um cube; geometry here is rescaled to the
#: unit cube so the equivalent default is delta = half the minimum
#: point spacing (computed per point cloud; this is a fallback).
DEFAULT_SHAPE_PARAMETER = 3.7e-4

#: Maximum admissible rank as a fraction of the tile size.  Tiles whose
#: numerical rank exceeds this fraction are stored dense (HiCMA keeps a
#: maxrank buffer; we follow the same convention).
DENSE_RANK_FRACTION = 0.5

#: Relative tolerance used when validating factorization residuals in
#: tests: the residual may exceed the compression threshold by this
#: multiplicative slack because truncation errors accumulate over the
#: O(NT) updates each tile receives.
RESIDUAL_SLACK = 50.0

#: Seed used by deterministic test fixtures and examples.
DEFAULT_SEED = 42

# ---------------------------------------------------------------------
# compression method and storage-precision policy defaults
# ---------------------------------------------------------------------

#: Default compression method for operator builds and GEMM rank
#: rounding: ``"svd"`` (exact truncated SVD, the baseline) or
#: ``"rand"`` (adaptive randomized range-finder, H2OPUS-TLR style).
#: Overridable per build and via ``$REPRO_COMPRESSION``.
DEFAULT_COMPRESSION = "svd"

#: Environment variable overriding :data:`DEFAULT_COMPRESSION` when a
#: build does not pin the method explicitly.
COMPRESSION_ENV = "REPRO_COMPRESSION"

#: Default tile-storage precision policy: ``"fp64"`` stores every tile
#: in DTYPE; ``"mixed"`` stores low-significance off-band low-rank
#: tiles in fp32 (diagonal, band and dense tiles always stay fp64).
#: Overridable per build and via ``$REPRO_STORAGE_PRECISION``.
DEFAULT_STORAGE_PRECISION = "fp64"

#: Environment variable overriding :data:`DEFAULT_STORAGE_PRECISION`.
STORAGE_PRECISION_ENV = "REPRO_STORAGE_PRECISION"

#: Band half-width (in tiles) always kept fp64 under ``"mixed"``
#: storage: tiles with ``|m - k| <= band`` carry the numerically
#: significant near-field and feed the diagonal updates directly.
MIXED_PRECISION_BAND = 1

#: Safety margin for the per-tile significance test: a low-rank tile
#: is stored fp32 only when ``||tile||_2 * eps_fp32 <= margin * eps``
#: (``eps`` the compression accuracy), i.e. when the cast perturbation
#: is provably below the truncation error already accepted.
MIXED_PRECISION_MARGIN = 0.5


def default_shape_parameter(min_spacing: float) -> float:
    """Shape parameter from the paper's rule: half the minimum spacing.

    Section IV-C: ``delta = 1/2 * min ||x - x_bi||``.
    """
    if min_spacing <= 0.0:
        raise ValueError(f"min_spacing must be positive, got {min_spacing}")
    return 0.5 * min_spacing
