"""Global configuration defaults for the HiCMA-PaRSEC reproduction.

All tolerances, default tile sizes, and numeric types live here so the
rest of the library never hard-codes them.  The values mirror the
paper's experimental setup (Section VIII-A) rescaled to laptop scale
where noted.
"""

from __future__ import annotations

import numpy as np

#: Floating-point dtype used for all matrix data (paper: double precision).
DTYPE = np.float64

#: Default TLR accuracy threshold (paper Sec. VIII-A: 1e-4 unless noted).
DEFAULT_ACCURACY = 1.0e-4

#: Default tile size for laptop-scale runs.  The paper tunes
#: b = O(sqrt(N)); benchmarks tune this per matrix size the same way.
DEFAULT_TILE_SIZE = 256

#: Default Gaussian RBF shape parameter delta.  The paper picks
#: delta = 3.7e-4 for a 1.7 um cube; geometry here is rescaled to the
#: unit cube so the equivalent default is delta = half the minimum
#: point spacing (computed per point cloud; this is a fallback).
DEFAULT_SHAPE_PARAMETER = 3.7e-4

#: Maximum admissible rank as a fraction of the tile size.  Tiles whose
#: numerical rank exceeds this fraction are stored dense (HiCMA keeps a
#: maxrank buffer; we follow the same convention).
DENSE_RANK_FRACTION = 0.5

#: Relative tolerance used when validating factorization residuals in
#: tests: the residual may exceed the compression threshold by this
#: multiplicative slack because truncation errors accumulate over the
#: O(NT) updates each tile receives.
RESIDUAL_SLACK = 50.0

#: Seed used by deterministic test fixtures and examples.
DEFAULT_SEED = 42


def default_shape_parameter(min_spacing: float) -> float:
    """Shape parameter from the paper's rule: half the minimum spacing.

    Section IV-C: ``delta = 1/2 * min ||x - x_bi||``.
    """
    if min_spacing <= 0.0:
        raise ValueError(f"min_spacing must be positive, got {min_spacing}")
    return 0.5 * min_spacing
