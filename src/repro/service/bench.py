"""Serving-path benchmark: batched vs unbatched, cold vs warm.

Measures the two claims the service exists to deliver:

1. **Amortization** — a warm cache turns a request that would pay
   matgen + compression + factorization (the Fig. 11 dominant cost)
   into a pure triangular solve.
2. **Coalescing** — N concurrent single-RHS requests served as one
   blocked multi-RHS solve beat N one-at-a-time solves, because the
   Python tile loop and the skinny per-tile GEMMs are paid once per
   batch.

Used by ``python -m repro bench-serve`` and by
``benchmarks/test_service_throughput.py`` (which persists the result
as ``BENCH_service.json`` for the perf trajectory).
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import min_spacing, virus_population
from repro.service.cache import OperatorCache
from repro.service.server import SolveService
from repro.service.spec import OperatorSpec

__all__ = ["default_benchmark_spec", "run_throughput_benchmark"]


def default_benchmark_spec(
    viruses: int = 4,
    points_per_virus: int = 400,
    tile_size: int = 200,
    accuracy: float = 1.0e-6,
    seed: int = 1,
    compression: str | None = None,
    storage_precision: str | None = None,
) -> OperatorSpec:
    """The suite's standard sparse-regime workload as a servable spec."""
    pts = virus_population(
        viruses, points_per_virus=points_per_virus, cube_edge=1.7, seed=seed
    )
    return OperatorSpec(
        points=pts,
        shape_parameter=0.5 * min_spacing(pts) * 40,
        tile_size=tile_size,
        accuracy=accuracy,
        nugget=1e-4,
        compression=compression,
        storage_precision=storage_precision,
        label=f"bench-{viruses}x{points_per_virus}",
    )


def _drive(
    cache: OperatorCache,
    spec: OperatorSpec,
    rhs_list: list[np.ndarray],
    max_batch: int,
    sequential: bool,
    max_wait: float,
) -> tuple[float, dict]:
    """Serve every rhs once; return (elapsed seconds, metrics dict)."""
    with SolveService(
        cache=cache, workers=1, max_batch=max_batch, max_wait=max_wait
    ) as svc:
        t0 = time.perf_counter()
        if sequential:
            for rhs in rhs_list:
                svc.submit_solve(spec, rhs).result()
        else:
            handles = [svc.submit_solve(spec, rhs) for rhs in rhs_list]
            for h in handles:
                h.result()
        elapsed = time.perf_counter() - t0
        snapshot = svc.metrics.to_dict()
    return elapsed, snapshot


def run_throughput_benchmark(
    spec: OperatorSpec | None = None,
    requests: int = 32,
    repeats: int = 3,
    max_wait: float = 0.005,
    seed: int = 0,
    factor_workers: int | None = None,
) -> dict:
    """Benchmark the serving path; returns a JSON-safe result dict.

    ``sequential`` serves ``requests`` single-RHS solves strictly
    one-at-a-time (``max_batch=1``, wait for each result); ``batched``
    submits them concurrently and lets the batcher coalesce.  Both run
    against the same warm cache, so the comparison isolates batching.
    Cold/warm latency is measured separately around the first build;
    ``factor_workers`` threads execute that build's factorization DAG.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if spec is None:
        spec = default_benchmark_spec()
    rng = np.random.default_rng(seed)
    rhs_list = [rng.standard_normal(spec.n) for _ in range(requests)]

    cache = OperatorCache(factor_workers=factor_workers)

    # --- cold request: pays matgen + compression + factorization
    with SolveService(cache=cache, workers=1) as svc:
        t0 = time.perf_counter()
        x_cold = svc.submit_solve(spec, rhs_list[0]).result()
        cold_latency = time.perf_counter() - t0
        # --- warm request: cache hit, solve only
        t0 = time.perf_counter()
        svc.submit_solve(spec, rhs_list[0]).result()
        warm_latency = time.perf_counter() - t0

    # --- one-at-a-time baseline vs coalesced serving (warm cache)
    seq_best = batched_best = float("inf")
    batched_metrics: dict = {}
    for _ in range(repeats):
        elapsed, _ = _drive(
            cache, spec, rhs_list, max_batch=1, sequential=True, max_wait=max_wait
        )
        seq_best = min(seq_best, elapsed)
        elapsed, snapshot = _drive(
            cache,
            spec,
            rhs_list,
            max_batch=requests,
            sequential=False,
            max_wait=max_wait,
        )
        if elapsed < batched_best:
            batched_best, batched_metrics = elapsed, snapshot

    # correctness guard: the served solution must actually solve A x = b
    entry = cache.get_or_build(spec)
    from repro.linalg.matvec import tlr_matvec

    residual = float(
        np.linalg.norm(tlr_matvec(entry.operator, x_cold) - rhs_list[0])
        / np.linalg.norm(rhs_list[0])
    )

    return {
        "workload": {
            "label": spec.label,
            "n": spec.n,
            "tile_size": spec.tile_size,
            "accuracy": spec.accuracy,
            "kernel": spec.kernel,
            "fingerprint": spec.fingerprint,
        },
        "requests": requests,
        "repeats": repeats,
        "cold_latency_seconds": cold_latency,
        "warm_latency_seconds": warm_latency,
        "cold_over_warm": cold_latency / warm_latency if warm_latency else 0.0,
        "sequential": {
            "elapsed_seconds": seq_best,
            "throughput_rps": requests / seq_best if seq_best else 0.0,
        },
        "batched": {
            "elapsed_seconds": batched_best,
            "throughput_rps": requests / batched_best if batched_best else 0.0,
            "realized_max_batch": batched_metrics.get("batch", {}).get("max", 0),
        },
        "batched_speedup": seq_best / batched_best if batched_best else 0.0,
        "solve_residual": residual,
        "cache": cache.stats(),
    }
