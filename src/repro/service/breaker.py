"""Per-operator circuit breaker for the solve-serving subsystem.

A misbehaving operator — one whose factorization keeps failing — must
not consume a build attempt (matgen + compression + factorization) on
every request it receives.  The breaker tracks *consecutive* failures
per operator fingerprint and moves through the classic three states:

``closed``
    Normal operation.  Each failure increments the consecutive count;
    reaching ``failure_threshold`` opens the breaker.  Any success
    resets the count.
``open``
    Calls fail fast with :class:`CircuitOpenError` — no build is
    attempted.  After ``reset_timeout`` seconds the breaker half-opens.
``half-open``
    Exactly one probe call is admitted; concurrent calls still fail
    fast.  A successful probe closes the breaker; a failed probe
    re-opens it for another full ``reset_timeout``.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.service.errors import CircuitOpenError

__all__ = ["CircuitBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class _KeyState:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Thread-safe per-key (operator fingerprint) circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open a key's breaker.
    reset_timeout:
        Seconds an open breaker waits before admitting a half-open
        probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0.0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._keys: dict[str, _KeyState] = {}

    def _key(self, key: str) -> _KeyState:
        return self._keys.setdefault(key, _KeyState())

    def state(self, key: str) -> str:
        """The key's current state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            ks = self._keys.get(key)
            if ks is None:
                return _CLOSED
            if ks.state == _OPEN and (
                self._clock() - ks.opened_at >= self.reset_timeout
            ):
                return _HALF_OPEN
            return ks.state

    def allow(self, key: str) -> None:
        """Admit a call for ``key`` or raise :class:`CircuitOpenError`.

        An admitted call *must* be followed by :meth:`record_success`
        or :meth:`record_failure` — in the half-open state the probe
        slot is claimed here and released by the outcome report.
        """
        with self._lock:
            ks = self._key(key)
            if ks.state == _CLOSED:
                return
            now = self._clock()
            if ks.state == _OPEN:
                if now - ks.opened_at < self.reset_timeout:
                    raise CircuitOpenError(
                        f"circuit open for operator {key[:12]}: "
                        f"{ks.failures} consecutive failures; retry in "
                        f"{self.reset_timeout - (now - ks.opened_at):.1f}s"
                    )
                ks.state = _HALF_OPEN
                ks.probing = False
            # half-open: admit exactly one probe
            if ks.probing:
                raise CircuitOpenError(
                    f"circuit half-open for operator {key[:12]}: "
                    "a probe is already in flight"
                )
            ks.probing = True

    def record_success(self, key: str) -> None:
        """Report a successful call: closes the breaker, resets counts."""
        with self._lock:
            ks = self._key(key)
            ks.state = _CLOSED
            ks.failures = 0
            ks.probing = False

    def record_failure(self, key: str) -> bool:
        """Report a failed call; returns True if the breaker just opened."""
        with self._lock:
            ks = self._key(key)
            if ks.state == _HALF_OPEN:
                # failed probe: straight back to open for a full timeout
                ks.state = _OPEN
                ks.opened_at = self._clock()
                ks.probing = False
                ks.failures += 1
                return True
            ks.failures += 1
            if ks.state == _CLOSED and ks.failures >= self.failure_threshold:
                ks.state = _OPEN
                ks.opened_at = self._clock()
                return True
            return False

    def states(self) -> dict[str, str]:
        """Snapshot of every tracked key's state (for metrics export)."""
        with self._lock:
            keys = list(self._keys)
        return {k: self.state(k) for k in keys}
