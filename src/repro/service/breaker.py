"""Per-operator circuit breaker for the solve-serving subsystem.

A misbehaving operator — one whose factorization keeps failing — must
not consume a build attempt (matgen + compression + factorization) on
every request it receives.  The breaker tracks *consecutive* failures
per operator fingerprint and moves through the classic three states:

``closed``
    Normal operation.  Each failure increments the consecutive count;
    reaching ``failure_threshold`` opens the breaker.  Any success
    resets the count.
``open``
    Calls fail fast with :class:`CircuitOpenError` — no build is
    attempted.  After ``reset_timeout`` seconds the breaker half-opens.
``half-open``
    Exactly one probe call is admitted; concurrent calls still fail
    fast.  A successful probe closes the breaker; a failed probe
    re-opens it for another full ``reset_timeout``.

:class:`RetryBudget` is the breaker's companion on the *retry* path:
a per-key token bucket that bounds how many retries the service will
spend per operator per unit time, so an outage is not amplified by
every caller's retry loop hammering the failing dependency.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.service.errors import CircuitOpenError

__all__ = ["CircuitBreaker", "RetryBudget"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class _KeyState:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Thread-safe per-key (operator fingerprint) circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open a key's breaker.
    reset_timeout:
        Seconds an open breaker waits before admitting a half-open
        probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0.0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._keys: dict[str, _KeyState] = {}

    def _key(self, key: str) -> _KeyState:
        return self._keys.setdefault(key, _KeyState())

    def state(self, key: str) -> str:
        """The key's current state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            ks = self._keys.get(key)
            if ks is None:
                return _CLOSED
            if ks.state == _OPEN and (
                self._clock() - ks.opened_at >= self.reset_timeout
            ):
                return _HALF_OPEN
            return ks.state

    def allow(self, key: str) -> None:
        """Admit a call for ``key`` or raise :class:`CircuitOpenError`.

        An admitted call *must* be followed by :meth:`record_success`
        or :meth:`record_failure` — in the half-open state the probe
        slot is claimed here and released by the outcome report.
        """
        with self._lock:
            ks = self._key(key)
            if ks.state == _CLOSED:
                return
            now = self._clock()
            if ks.state == _OPEN:
                if now - ks.opened_at < self.reset_timeout:
                    raise CircuitOpenError(
                        f"circuit open for operator {key[:12]}: "
                        f"{ks.failures} consecutive failures; retry in "
                        f"{self.reset_timeout - (now - ks.opened_at):.1f}s"
                    )
                ks.state = _HALF_OPEN
                ks.probing = False
            # half-open: admit exactly one probe
            if ks.probing:
                raise CircuitOpenError(
                    f"circuit half-open for operator {key[:12]}: "
                    "a probe is already in flight"
                )
            ks.probing = True

    def record_success(self, key: str) -> None:
        """Report a successful call: closes the breaker, resets counts."""
        with self._lock:
            ks = self._key(key)
            ks.state = _CLOSED
            ks.failures = 0
            ks.probing = False

    def record_failure(self, key: str) -> bool:
        """Report a failed call; returns True if the breaker just opened."""
        with self._lock:
            ks = self._key(key)
            if ks.state == _HALF_OPEN:
                # failed probe: straight back to open for a full timeout
                ks.state = _OPEN
                ks.opened_at = self._clock()
                ks.probing = False
                ks.failures += 1
                return True
            ks.failures += 1
            if ks.state == _CLOSED and ks.failures >= self.failure_threshold:
                ks.state = _OPEN
                ks.opened_at = self._clock()
                return True
            return False

    def states(self) -> dict[str, str]:
        """Snapshot of every tracked key's state (for metrics export)."""
        with self._lock:
            keys = list(self._keys)
        return {k: self.state(k) for k in keys}

    # ------------------------------------------------------------------
    # warm-handoff state transfer
    # ------------------------------------------------------------------

    def export_state(self) -> dict[str, dict]:
        """Portable snapshot of every key's state for warm handoff.

        Monotonic clocks are process-local, so open timestamps are
        exported as *remaining* seconds until the half-open probe; the
        importer re-anchors them to its own clock.  A half-open key is
        exported as open with zero remaining (the in-flight probe died
        with the exporting process — the importer re-probes once,
        immediately, which is the correct conservative resume).
        """
        now = self._clock()
        out: dict[str, dict] = {}
        with self._lock:
            for key, ks in self._keys.items():
                state = ks.state
                remaining = 0.0
                if state == _OPEN:
                    remaining = max(
                        0.0, self.reset_timeout - (now - ks.opened_at)
                    )
                    if remaining == 0.0:
                        state = _HALF_OPEN
                if state == _CLOSED and ks.failures == 0:
                    continue  # default state carries no information
                out[key] = {
                    "state": state,
                    "failures": ks.failures,
                    "reset_remaining": remaining,
                }
        return out

    def import_state(self, payload: dict[str, dict]) -> int:
        """Adopt a handoff snapshot from :meth:`export_state`.

        Open keys stay open for their remaining timeout (re-anchored to
        this process's clock); half-open keys become immediately
        probeable.  Returns the number of keys imported.  Existing
        local state for a key is overwritten — the handoff is the
        fresher observation by construction (the predecessor served the
        traffic this process has not seen yet).
        """
        imported = 0
        now = self._clock()
        with self._lock:
            for key, snap in payload.items():
                ks = self._key(key)
                ks.failures = int(snap.get("failures", 0))
                ks.probing = False
                state = snap.get("state", _CLOSED)
                if state == _OPEN:
                    remaining = max(0.0, float(snap.get("reset_remaining", 0.0)))
                    ks.state = _OPEN
                    # re-anchor: half-opens after exactly `remaining`
                    ks.opened_at = now - (self.reset_timeout - remaining)
                elif state == _HALF_OPEN:
                    # open with an elapsed timeout: next allow() probes
                    ks.state = _OPEN
                    ks.opened_at = now - self.reset_timeout
                else:
                    ks.state = _CLOSED
                imported += 1
        return imported


class RetryBudget:
    """Per-key token bucket bounding retry attempts.

    First attempts are free — the budget only meters *retries*.  Each
    key starts with ``capacity`` tokens and refills continuously at
    ``refill_per_second`` up to the cap; a retry spends one token.
    When the bucket is dry, :meth:`try_spend` returns ``False`` and
    the caller must surface the original failure instead of retrying.

    Why a bucket and not a count: during a steady failure (bad
    operator store, dependency outage) every request would otherwise
    retry ``build_retries`` times, multiplying the offered load on the
    failing path exactly when it can least absorb it.  The bucket
    caps retry *rate* per operator while still allowing full retry
    depth for isolated transient failures.

    Thread-safe; clock injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: float = 10.0,
        refill_per_second: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0.0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_per_second < 0.0:
            raise ValueError(
                f"refill_per_second must be >= 0, got {refill_per_second}"
            )
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (tokens, last refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}

    def _refill(self, key: str, now: float) -> float:
        tokens, last = self._buckets.get(key, (self.capacity, now))
        tokens = min(
            self.capacity, tokens + (now - last) * self.refill_per_second
        )
        return tokens

    def tokens(self, key: str) -> float:
        """Current token count for ``key`` (for metrics/tests)."""
        with self._lock:
            return self._refill(key, self._clock())

    def try_spend(self, key: str, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` from ``key``'s bucket if available.

        Returns True (and debits) when the budget covers the retry;
        False (no debit) when it is exhausted.
        """
        with self._lock:
            now = self._clock()
            have = self._refill(key, now)
            if have < tokens:
                self._buckets[key] = (have, now)
                return False
            self._buckets[key] = (have - tokens, now)
            return True

    # ------------------------------------------------------------------
    # warm-handoff state transfer
    # ------------------------------------------------------------------

    def export_state(self) -> dict[str, float]:
        """Current token levels per key (full buckets are omitted —
        they are the default state and carry no information)."""
        now = self._clock()
        with self._lock:
            return {
                key: self._refill(key, now)
                for key in self._buckets
                if self._refill(key, now) < self.capacity
            }

    def import_state(self, payload: dict[str, float]) -> int:
        """Adopt token levels from a predecessor's :meth:`export_state`,
        re-anchored to this clock (refill resumes from import time).
        Returns the number of buckets imported."""
        now = self._clock()
        with self._lock:
            for key, tokens in payload.items():
                self._buckets[key] = (
                    min(self.capacity, max(0.0, float(tokens))),
                    now,
                )
        return len(payload)
