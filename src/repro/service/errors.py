"""Typed errors raised by the solve-serving subsystem.

Every rejection path has its own exception class so clients (and
tests) can react to overload, expiry, and shutdown deterministically
instead of parsing message strings.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BacklogFullError",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "RequestFailedError",
]


class ServiceError(RuntimeError):
    """Base class for all service-level failures."""


class BacklogFullError(ServiceError):
    """The bounded request queue is full; the request was never enqueued.

    Raised synchronously by ``submit`` — backpressure is immediate, the
    caller can retry, shed load, or fail over.
    """


class DeadlineExpiredError(ServiceError):
    """The request's deadline passed before execution started.

    Expired requests are *never* executed: the dispatcher and the
    worker both re-check the deadline and complete the handle with this
    error instead of running the solve.
    """


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down) and takes no work."""


class RequestFailedError(ServiceError):
    """The request itself was malformed (bad shape, unknown kind...)."""
