"""Typed errors raised by the solve-serving subsystem.

Every rejection path has its own exception class so clients (and
tests) can react to overload, expiry, and shutdown deterministically
instead of parsing message strings.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BacklogFullError",
    "ServiceOverloadedError",
    "ServiceDrainingError",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "RequestFailedError",
    "FactorizationFailedError",
    "CircuitOpenError",
    "RetryBudgetExhaustedError",
    "CorruptResultError",
    "ShardFailedError",
    "ShardUnavailableError",
    "reconstruct_error",
]


class ServiceError(RuntimeError):
    """Base class for all service-level failures."""


class BacklogFullError(ServiceError):
    """The bounded request queue is full; the request was never enqueued.

    Raised synchronously by ``submit`` — backpressure is immediate, the
    caller can retry, shed load, or fail over.  ``retry_after`` (when
    not ``None``) is the service's estimate, in seconds, of when
    capacity should free up — the ``Retry-After`` hint a gateway would
    forward with a 503.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ServiceOverloadedError(BacklogFullError):
    """Admission control shed the request: too many requests in flight.

    Distinct from :class:`BacklogFullError` (queue capacity) — this is
    the concurrency cap (``max_inflight``): queued work admitted now
    would just expire waiting.  Inherits the ``retry_after`` hint.
    """


class ServiceDrainingError(ServiceError):
    """The service is draining for handoff and admits no new work.

    Unlike :class:`ServiceClosedError`, in-flight and queued requests
    are still being completed; only *new* admissions are refused.
    """


class DeadlineExpiredError(ServiceError):
    """The request's deadline passed before execution started.

    Expired requests are *never* executed: the dispatcher and the
    worker both re-check the deadline and complete the handle with this
    error instead of running the solve.
    """


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down) and takes no work."""


class RequestFailedError(ServiceError):
    """The request itself was malformed (bad shape, non-finite values,
    unconvertible dtype, unknown kind...).  Raised synchronously by
    ``submit_*`` before the request is enqueued."""


class FactorizationFailedError(ServiceError):
    """Building the operator's factor failed after every retry.

    Carries the operator fingerprint, the attempt count and the
    underlying cause so clients can distinguish a bad operator from a
    bad request.
    """

    def __init__(self, fingerprint: str, attempts: int, cause: BaseException) -> None:
        self.fingerprint = fingerprint
        self.attempts = int(attempts)
        self.cause = cause
        super().__init__(
            f"factorization of operator {fingerprint[:12]} failed after "
            f"{attempts} attempt(s): {cause}"
        )


class CircuitOpenError(ServiceError):
    """The operator's circuit breaker is open: the request fails fast.

    A misbehaving operator (repeated factorization failures) is shed
    at the edge instead of burning a worker on every request; the
    breaker half-opens after its reset timeout to probe for recovery.
    """


class RetryBudgetExhaustedError(ServiceError):
    """The operator's retry budget is spent: no retry was attempted.

    Token-bucket retry budgets keep retries from amplifying an outage
    — when an operator's builds are failing steadily, retrying every
    request multiplies the load on the failing path.  Once the bucket
    is empty, failures surface immediately (first attempts are never
    budgeted, only retries).
    """


class CorruptResultError(ServiceError):
    """A computed result contained non-finite values: corrupt factor.

    The last line of defense against silent data corruption — a solve
    or logdet that produces NaN/Inf from finite inputs means the cached
    factor (or operator) is damaged.  The service fails the request
    with this error, drops and quarantines the cache entry so the next
    request triggers a clean rebuild, and never returns the poisoned
    numbers.
    """

    def __init__(self, fingerprint: str, kind: str) -> None:
        self.fingerprint = fingerprint
        self.kind = kind
        super().__init__(
            f"{kind} result for operator {fingerprint[:12]} contained "
            "non-finite values; cached factor is corrupt and has been "
            "dropped for rebuild"
        )


class ShardFailedError(ServiceError):
    """The request's shard died and the request could not be replayed.

    Raised on a fleet request handle when the owning shard process
    failed (SIGKILL, crash, hung-and-killed) and failover could not
    complete it: no surviving shard, replay attempts exhausted, or the
    respawn budget is spent.  An admitted request only ever surfaces
    this after the fleet has genuinely run out of places to send it.
    """


class ShardUnavailableError(ServiceError):
    """No live shard exists to route the request to.

    Raised synchronously at fleet submission when the hash ring is
    empty (every shard dead with the respawn budget exhausted, or the
    fleet not yet started).
    """


#: Service errors a shard can report across the process boundary that
#: reconstruct faithfully from their message alone.  Errors with richer
#: constructors (fingerprint + attempts + cause...) do not round-trip
#: through pickle safely, so shard replies carry ``(class name, text)``
#: and the fleet rebuilds the typed error here — unknown names degrade
#: to :class:`RequestFailedError` rather than crashing the router.
_WIRE_SAFE: dict[str, type] = {}


def reconstruct_error(name: str, message: str) -> "ServiceError":
    """Rebuild a typed service error from a shard's wire reply."""
    if not _WIRE_SAFE:
        _WIRE_SAFE.update(
            {
                cls.__name__: cls
                for cls in (
                    ServiceError,
                    BacklogFullError,
                    ServiceOverloadedError,
                    ServiceDrainingError,
                    DeadlineExpiredError,
                    ServiceClosedError,
                    RequestFailedError,
                    CircuitOpenError,
                    RetryBudgetExhaustedError,
                    ShardFailedError,
                    ShardUnavailableError,
                )
            }
        )
    cls = _WIRE_SAFE.get(name)
    if cls is not None:
        return cls(message)
    # FactorizationFailedError / CorruptResultError and any non-service
    # exception: preserve the text, lose the exotic constructor
    return RequestFailedError(f"{name}: {message}")
