"""Serving metrics: latency percentiles, hit rates, batch shapes.

Counters and reservoirs are updated from the dispatcher and worker
threads under one lock and snapshot to a plain dict (JSON-safe) on
demand.  Every timed service phase is also recorded as a
:class:`repro.runtime.tracing.TraceEvent`, so a serving run exports to
the same Chrome trace timeline as a factorization run — one
instrumentation story across the whole stack.
"""

from __future__ import annotations

import json
import threading
from collections import Counter

from repro.runtime.tracing import Trace, TraceEvent

__all__ = ["ServiceMetrics", "percentile"]


def percentile(samples: list[float], p: float) -> float:
    """Linear-interpolated percentile (``p`` in [0, 100]) of samples.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    """
    if not samples:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    s = sorted(samples)
    pos = (len(s) - 1) * (p / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(s) - 1)
    frac = pos - lo
    return s[lo] * (1.0 - frac) + s[hi] * frac


class ServiceMetrics:
    """Aggregated serving statistics plus a task-level trace."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.trace = Trace()
        self._counters: Counter[str] = Counter()
        self._latencies: dict[str, list[float]] = {}
        self._batch_sizes: list[int] = []
        self._bytes_resident = 0
        #: deadline slack (deadline minus completion time, seconds) per
        #: request kind at the moment the result was delivered —
        #: negative samples mean work finished past its deadline, the
        #: exact thing admission control exists to prevent.
        self._slack: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # recording (called by the service internals)
    # ------------------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] += delta

    def record_latency(self, kind: str, seconds: float) -> None:
        with self._lock:
            self._latencies.setdefault(kind, []).append(float(seconds))

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(size))

    def record_slack(self, kind: str, seconds: float) -> None:
        """Record remaining deadline slack at completion time."""
        with self._lock:
            self._slack.setdefault(kind, []).append(float(seconds))

    def set_bytes_resident(self, nbytes: int) -> None:
        with self._lock:
            self._bytes_resident = int(nbytes)

    def merge_counters(self, counters, prefix: str = "") -> None:
        """Fold another metrics snapshot's counters into this one.

        The fleet aggregates per-shard counter snapshots (shipped in
        heartbeats and drain replies) into its own metrics under a
        ``prefix`` (e.g. ``"shard_"``), so cache hit rates and shed
        counts across the whole fleet read from one place.  Merging is
        additive; call it with each shard's *delta* or final snapshot,
        not repeatedly with cumulative ones.
        """
        with self._lock:
            for name, value in dict(counters).items():
                self._counters[f"{prefix}{name}"] += int(value)

    def record_event(
        self,
        klass: str,
        params: tuple[int, ...],
        start: float,
        end: float,
        worker: int = 0,
        flops: float = 0.0,
    ) -> None:
        """Log one timed phase into the Chrome-exportable trace."""
        with self._lock:
            self.trace.record(
                TraceEvent(
                    klass=klass,
                    params=params,
                    start=start,
                    end=end,
                    flops=flops,
                    worker=worker,
                )
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def mean_latency(self, kind: str) -> float:
        """Mean recorded latency for ``kind`` (0.0 with no samples).

        Admission control uses this as its service-time estimate when
        computing a ``Retry-After`` hint for shed requests.
        """
        with self._lock:
            samples = self._latencies.get(kind)
            return (sum(samples) / len(samples)) if samples else 0.0

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every counter, gauge and percentile."""
        with self._lock:
            counters = dict(self._counters)
            latencies = {k: list(v) for k, v in self._latencies.items()}
            slack = {k: list(v) for k, v in self._slack.items()}
            batches = list(self._batch_sizes)
            resident = self._bytes_resident
        hits = counters.get("cache_hits", 0) + counters.get("cache_disk_hits", 0)
        lookups = hits + counters.get("cache_misses", 0)
        out: dict = {
            "counters": counters,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "bytes_resident": resident,
            "batch": {
                "count": len(batches),
                "max": max(batches) if batches else 0,
                "mean": (sum(batches) / len(batches)) if batches else 0.0,
            },
            "latency_seconds": {},
        }
        for kind, samples in latencies.items():
            out["latency_seconds"][kind] = {
                "count": len(samples),
                "mean": sum(samples) / len(samples),
                "p50": percentile(samples, 50),
                "p90": percentile(samples, 90),
                "p99": percentile(samples, 99),
                "max": max(samples),
            }
        if slack:
            out["deadline_slack_seconds"] = {}
            for kind, samples in slack.items():
                out["deadline_slack_seconds"][kind] = {
                    "count": len(samples),
                    "mean": sum(samples) / len(samples),
                    "p1": percentile(samples, 1),
                    "p10": percentile(samples, 10),
                    "p50": percentile(samples, 50),
                    "min": min(samples),
                    # completions past their deadline: must stay 0 —
                    # expired work is shed, never executed
                    "late": sum(1 for s in samples if s < 0.0),
                }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save_chrome_trace(self, path, **kwargs) -> None:
        """Export the serving timeline via :mod:`repro.runtime.tracing`."""
        self.trace.save_chrome_trace(path, **kwargs)
