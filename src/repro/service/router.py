"""Consistent-hash routing of operator fingerprints across shards.

The fleet's front door must answer one question cheaply and stably:
*which shard owns this operator?*  A modulo mapping would reshuffle
almost every fingerprint whenever a shard joins or leaves — each move
costs a full operator rebuild (or at best a disk reload) on the
receiving shard.  A consistent-hash ring bounds the churn to the
theoretical minimum: when a shard departs, only the keys on *its* arc
move (to the clockwise successors); every other key keeps its shard.

:class:`ConsistentHashRing` is the classic ketama-style construction:
each shard is hashed onto the ring at ``vnodes`` pseudo-random points
(virtual nodes flatten the per-shard load variance to roughly
``1/sqrt(vnodes)``), and a key is owned by the first shard point at or
clockwise-after the key's own hash.  The hash is BLAKE2b, keyed only
by shard name and fingerprint text — deterministic across processes,
machines and Python versions, so router decisions are reproducible and
testable.

:class:`FleetRouter` layers serving policy on the ring:

* **preference lists** — ``route()`` returns the first ``replication``
  *distinct* shards clockwise from the key.  The head is the primary;
  the tail are the replica shards that warm the same operator so a
  primary loss degrades latency (a disk reload at worst), not
  availability.
* **hotness tracking** — replicas are only warmed for operators that
  earn it: a fingerprint becomes *hot* once it has been routed
  ``hot_threshold`` times, and :meth:`FleetRouter.route` reports the
  crossing exactly once so the fleet can send each replica a single
  prewarm message.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass, field

__all__ = ["ConsistentHashRing", "FleetRouter", "RouteDecision"]


def _ring_hash(data: str) -> int:
    """Deterministic 64-bit ring position for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Ketama-style consistent hashing with virtual nodes.

    Not thread-safe by itself; :class:`FleetRouter` (and the fleet)
    serialize mutations behind their own locks.

    Parameters
    ----------
    nodes:
        Initial node names.
    vnodes:
        Ring points per node.  More points flatten the load spread
        (relative imbalance ~ ``1/sqrt(vnodes)``) at the cost of a
        larger sorted ring; 64–128 is the conventional sweet spot.
    """

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        #: sorted ring positions and the node owning each
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert ``node`` at its ``vnodes`` ring points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = _ring_hash(f"{node}#{v}")
            idx = bisect.bisect_left(self._points, point)
            # BLAKE2b collisions over 64 bits are negligible, but keep
            # insertion deterministic if one ever lands: order by name
            while (
                idx < len(self._points)
                and self._points[idx] == point
                and self._owners[idx] < node
            ):  # pragma: no cover - needs a 64-bit hash collision
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Remove ``node``'s points; its arc flows to the successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def lookup(self, key: str) -> str | None:
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        idx = bisect.bisect_right(self._points, _ring_hash(key))
        if idx == len(self._points):
            idx = 0  # wrap: the ring is circular
        return self._owners[idx]

    def preference(self, key: str, k: int) -> list[str]:
        """First ``k`` *distinct* nodes clockwise from ``key``'s hash.

        The head is the primary owner; the rest are the failover order
        — exactly the shards that inherit the key's arc if the ones
        before them leave, so replicating to them makes every single
        failure a warm handoff.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self._points:
            return []
        out: list[str] = []
        start = bisect.bisect_right(self._points, _ring_hash(key))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in out:
                out.append(owner)
                if len(out) == k:
                    break
        return out


@dataclass
class RouteDecision:
    """One routing answer: where a fingerprint goes, and whether it
    just crossed the hotness threshold (warm the replicas *now*)."""

    primary: str
    #: failover order after the primary (replication - 1 shards)
    replicas: list[str] = field(default_factory=list)
    #: True exactly once per fingerprint, on the request that makes it hot
    became_hot: bool = False
    #: requests routed for this fingerprint so far (this one included)
    count: int = 0


class FleetRouter:
    """Thread-safe routing policy: ring + replication + hotness.

    Parameters
    ----------
    ring:
        The shared hash ring (mutated by the fleet on join/leave).
    replication:
        Preference-list length (1 = no replicas).
    hot_threshold:
        Requests after which a fingerprint's replicas are warmed.  1
        replicates everything on first touch; higher values spend
        replica memory only on operators with proven traffic.
    """

    def __init__(
        self,
        ring: ConsistentHashRing,
        replication: int = 1,
        hot_threshold: int = 2,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, got {hot_threshold}")
        self.ring = ring
        self.replication = int(replication)
        self.hot_threshold = int(hot_threshold)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._hot: set[str] = set()

    def route(self, fingerprint: str, count: bool = True) -> RouteDecision | None:
        """Route one request for ``fingerprint`` (``None``: no shards).

        ``count=False`` re-resolves the preference list without
        advancing the hotness counter — the failover/replay path, which
        must not double-count a request it is re-homing.
        """
        with self._lock:
            pref = self.ring.preference(fingerprint, self.replication)
            if not pref:
                return None
            became_hot = False
            if count:
                c = self._counts.get(fingerprint, 0) + 1
                self._counts[fingerprint] = c
            else:
                c = self._counts.get(fingerprint, 0)
            if (
                self.replication > 1
                and c >= self.hot_threshold
                and fingerprint not in self._hot
            ):
                self._hot.add(fingerprint)
                became_hot = True
            return RouteDecision(
                primary=pref[0],
                replicas=pref[1:],
                became_hot=became_hot,
                count=c,
            )

    def add_node(self, node: str) -> None:
        """Insert a shard into the ring (its arc becomes routable)."""
        with self._lock:
            self.ring.add(node)

    def remove_node(self, node: str) -> None:
        """Remove a shard; only its arc moves (to ring successors)."""
        with self._lock:
            self.ring.remove(node)

    def live_nodes(self) -> set[str]:
        with self._lock:
            return self.ring.nodes

    def is_hot(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._hot

    def hot_fingerprints(self) -> set[str]:
        with self._lock:
            return set(self._hot)
