"""Sharded serving fleet: failover routing, replication, warm handoff.

The single-process :class:`~repro.service.server.SolveService` heals
its kernels (retry/rollback), its workers (supervised respawn) and its
disk entries (quarantine), but the process itself is one failure
domain: a SIGKILL loses every cached operator and in-flight request.
:class:`FleetService` removes that last single point of loss by
running **N shard processes**, each a full ``SolveService`` with its
own cache, worker pool and circuit breakers, behind a front-door
router:

* **routing** — operator fingerprints are consistent-hash-routed
  (:class:`~repro.service.router.FleetRouter`) so a shard owns a
  stable arc of the operator space and its cache stays hot for it;
* **replication** — operators with proven traffic are prewarmed on the
  next ``replication - 1`` shards clockwise, which are exactly the
  shards that inherit the arc if the primary dies: a shard loss
  degrades latency (one disk reload at worst), not availability;
* **supervision** — a :class:`~repro.service.health.ShardSupervisor`
  watches exit codes and heartbeat pipes, SIGKILLs hung shards, and
  meters respawns;
* **failover replay** — the dead shard's in-flight requests are
  re-sent (same request id) to the surviving owner of each key,
  honoring the original end-to-end deadlines.  Request ids dedup late
  results: the first completion wins, and a duplicate *answer* for a
  replayed solve is checked bitwise against the winner — replicas must
  agree with the shard they replaced, by construction of the
  deterministic build (`OperatorSpec.build` is bitwise reproducible);
* **warm handoff** — the shards share one sealed disk cache
  (crash-safe manifests, content-addressed filenames, atomic writes),
  so a respawned shard reloads factors instead of rebuilding, and each
  heartbeat piggybacks the shard's breaker/retry-budget state so even
  a *crash* hands off warm (:meth:`SolveService.export_handoff`).
  Graceful leave runs the full drain protocol (stop admissions, flush,
  seal) and returns the same handoff payload.

Process topology (``fork`` context, like the mp execution engine)::

    FleetService (front door)
      ├── request pipe ──>  shard-0: SolveService + cache + breakers
      │     heartbeat pipe <─┘  │
      │     result pipe <───────┘
      ├── request pipe ──>  shard-1: ...
      │     ...                 │
      └──── result pipe <───────┘

Each shard replies on its *own* single-writer result pipe and the
front door multiplexes them with ``connection.wait``.  A shared
``mp.Queue`` would serialize every reply through a cross-process
write lock held by the sender's feeder thread — a SIGKILL landing
inside that window (the fleet-chaos scenario) orphans the lock and
wedges every surviving shard's replies.  Per-shard pipes have no
shared lock to orphan: a dead shard reads as EOF, and its buffered
replies drain normally first.

The hash ring rebalances only the failed shard's arc: every other
fingerprint keeps its shard, so a failure never causes fleet-wide
cache churn.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

import numpy as np

from repro.service.errors import (
    DeadlineExpiredError,
    ServiceClosedError,
    ShardFailedError,
    ShardUnavailableError,
    reconstruct_error,
)
from repro.service.health import ShardFailure, ShardSupervisor
from repro.service.metrics import ServiceMetrics
from repro.service.router import ConsistentHashRing, FleetRouter
from repro.service.server import RequestHandle, SolveService
from repro.service.spec import OperatorSpec

__all__ = ["FleetService", "ShardStatus"]


def _set_process_title(title: str) -> None:
    """Best-effort ``PR_SET_NAME`` so chaos jobs can ``pgrep`` shards
    (comm is capped at 15 chars; failure is harmless)."""
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(15, title.encode()[:15], 0, 0, 0)  # PR_SET_NAME = 15
    except Exception:  # pragma: no cover - non-Linux / no libc
        pass


# ----------------------------------------------------------------------
# shard child process
# ----------------------------------------------------------------------


def _shard_main(
    name: str,
    epoch: int,
    config: dict,
    req_conn,
    beat_conn,
    res_conn,
    handoff: dict | None,
    parent_pid: int,
) -> None:
    """One shard: a full SolveService behind a request pipe.

    Replies travel on this shard's own result pipe tagged with
    ``(name, epoch, request id)`` so the front door can dedup late
    results from a previous life of this shard name.  The pipe's
    write end lives only in this process; forwarder threads share it
    under an in-process lock, so a SIGKILL can never orphan a lock
    any *other* shard depends on.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service.cache import OperatorCache

    _set_process_title(f"tlr-{name}")
    cache = OperatorCache(
        directory=config["cache_dir"],
        byte_budget=config["byte_budget"],
    )
    svc = SolveService(
        cache=cache,
        workers=config["workers"],
        backlog=config["backlog"],
        max_batch=config["max_batch"],
        max_wait=config["max_wait"],
        max_inflight=config["max_inflight"],
        factor_workers=config["factor_workers"],
        factor_engine=config["factor_engine"],
        build_retries=config["build_retries"],
        build_backoff=config["build_backoff"],
    )
    imported = svc.import_handoff(handoff)
    res_lock = threading.Lock()

    def _post(msg: tuple) -> None:
        try:
            with res_lock:
                res_conn.send(msg)
        except (BrokenPipeError, OSError):  # parent is gone
            pass

    _post(
        (
            "ready",
            name,
            epoch,
            os.getpid(),
            {
                "disk_entries": len(cache.disk_fingerprints()),
                "imported_breaker_keys": imported["breaker_keys"],
            },
        )
    )

    stop = threading.Event()
    completed = itertools.count()
    ncompleted = [0]

    def _beat_loop() -> None:
        last_seal = time.monotonic()
        while not stop.is_set():
            try:
                beat_conn.send(
                    {
                        "t": time.monotonic(),
                        "pid": os.getpid(),
                        "inflight": svc.inflight,
                        "entries": len(cache),
                        "completed": ncompleted[0],
                        # breaker/retry-budget state rides every beat:
                        # a SIGKILL later recovers from the last beat
                        "handoff": svc.export_handoff(),
                    }
                )
            except (BrokenPipeError, OSError):  # parent is gone
                stop.set()
                return
            now = time.monotonic()
            if now - last_seal >= config["checkpoint_interval"]:
                # periodic checkpoint: seal anything built since the
                # last interval so a crash still hands off warm
                try:
                    cache.seal()
                except OSError:  # pragma: no cover - disk trouble
                    pass
                last_seal = now
            stop.wait(config["heartbeat_interval"])

    beater = threading.Thread(target=_beat_loop, name=f"{name}-beat", daemon=True)
    beater.start()

    # forwarders wait on service handles and post replies; +2 so a
    # full complement of busy lanes still leaves a slot for prewarms
    forwarders = ThreadPoolExecutor(
        max_workers=config["workers"] + 2, thread_name_prefix=f"{name}-fwd"
    )
    # occupancy requests model a busy lane without BLAS: exactly
    # ``workers`` may sleep concurrently, like real solves
    occupancy = threading.BoundedSemaphore(config["workers"])

    def _reply_ok(req_id: int, value) -> None:
        ncompleted[0] = next(completed) + 1
        _post(("ok", name, epoch, req_id, value))

    def _reply_err(req_id: int, exc: BaseException) -> None:
        _post(("err", name, epoch, req_id, type(exc).__name__, str(exc)))

    def _await(req_id: int, handle) -> None:
        try:
            _reply_ok(req_id, handle.result())
        except BaseException as exc:
            _reply_err(req_id, exc)

    def _prewarm(req_id: int, spec) -> None:
        try:
            cache.get_or_build(spec)
            _reply_ok(req_id, spec.fingerprint)
        except BaseException as exc:
            _reply_err(req_id, exc)

    def _occupy(req_id: int, seconds: float, deadline: float | None) -> None:
        try:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExpiredError(f"request {req_id} deadline passed")
            with occupancy:
                time.sleep(seconds)
            _reply_ok(req_id, seconds)
        except BaseException as exc:
            _reply_err(req_id, exc)

    def _timeout_of(deadline: float | None) -> float | None:
        # CLOCK_MONOTONIC is machine-wide on Linux, so the absolute
        # deadline stamped by the front door is meaningful here
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0.0:
            raise DeadlineExpiredError("deadline passed before shard dispatch")
        return remaining

    draining = False
    try:
        while True:
            if os.getppid() != parent_pid:
                break  # orphaned: the front door died
            if not req_conn.poll(0.05):
                continue
            try:
                msg = req_conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "drain":
                req_id = msg[1]
                summary = svc.drain(timeout=config["drain_timeout"])
                summary["counters"] = dict(
                    svc.metrics.to_dict()["counters"]
                )
                summary["cache"] = cache.stats()
                _reply_ok(req_id, summary)
                draining = True
                break
            if kind == "prewarm":
                forwarders.submit(_prewarm, msg[1], msg[2])
                continue
            if kind == "occupy":
                _, req_id, seconds, deadline = msg
                forwarders.submit(_occupy, req_id, seconds, deadline)
                continue
            if kind == "solve":
                _, req_id, spec, rhs, deadline, refine = msg
                try:
                    handle = svc.submit_solve(
                        spec, rhs, timeout=_timeout_of(deadline), refine=refine
                    )
                except BaseException as exc:
                    _reply_err(req_id, exc)
                    continue
                forwarders.submit(_await, req_id, handle)
                continue
            if kind == "logdet":
                _, req_id, spec, deadline = msg
                try:
                    handle = svc.submit_logdet(
                        spec, timeout=_timeout_of(deadline)
                    )
                except BaseException as exc:
                    _reply_err(req_id, exc)
                    continue
                forwarders.submit(_await, req_id, handle)
                continue
    finally:
        forwarders.shutdown(wait=True)
        stop.set()
        # graceful exits complete accepted work; a drain already did
        svc.close(drain=not draining)
        beater.join(timeout=2.0)


# ----------------------------------------------------------------------
# front door
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    """One admitted fleet request, tracked until its handle settles."""

    req_id: int
    kind: str  # "solve" | "logdet" | "occupy"
    route_key: str
    handle: RequestHandle
    shard: str
    spec: OperatorSpec | None = None
    payload: object = None  # rhs array / occupancy seconds
    refine: bool = False
    deadline: float | None = None
    attempts: int = 1  # successful sends (replays increment)
    replayed: bool = False
    #: epoch of the shard handle the latest dispatch targeted, so a
    #: stale writer-thread failure can tell whether the request has
    #: already been re-homed
    sent_epoch: int = 0
    submitted_at: float = field(default_factory=time.monotonic)


@dataclass
class _ShardHandle:
    name: str
    epoch: int
    process: object
    req_send: object
    beat_recv: object
    #: read end of this shard's single-writer result pipe; None once
    #: the collector has seen EOF and closed it
    res_recv: object
    #: outbound request queue drained by this shard's writer thread —
    #: the only thread that touches ``req_send``, so a full pipe to a
    #: hung shard can never block the monitor or a client thread
    out_q: queue.Queue
    writer: threading.Thread | None = None
    state: str = "starting"  # starting | live | dead | removed
    spawned_at: float = field(default_factory=time.monotonic)
    last_beat: dict | None = None
    ready_info: dict | None = None


@dataclass(frozen=True)
class ShardStatus:
    """One shard's externally visible condition (``FleetService.status``)."""

    name: str
    state: str
    pid: int | None
    epoch: int
    inflight: int
    cache_entries: int
    completed: int


class FleetService:
    """Front door over N supervised shard processes.

    Mirrors the :class:`SolveService` client API (``submit_solve`` /
    ``submit_logdet`` returning handles) so callers migrate by
    swapping the constructor; everything fleet-specific (join/leave,
    chaos hooks, shard status) is additive.

    Parameters
    ----------
    shards:
        Initial shard process count.
    replication:
        Preference-list length for hot operators: the primary plus
        ``replication - 1`` prewarmed replicas (1 = no replication).
    hot_threshold:
        Requests after which an operator's replicas are prewarmed.
    cache_dir:
        Shared sealed-cache directory (the warm-handoff medium).
        ``None`` creates a private temporary directory for the fleet's
        lifetime — handoff still works, persistence across fleets
        doesn't.
    workers_per_shard, backlog, max_batch, max_wait, max_inflight,
    factor_workers, factor_engine, build_retries, build_backoff:
        Forwarded to each shard's ``SolveService``.
    byte_budget:
        Per-shard resident-bytes LRU budget (None = unbounded).
    heartbeat_interval / heartbeat_timeout:
        Shard beat cadence and the staleness bound after which a
        silent shard is SIGKILLed (default: 10 intervals).
    checkpoint_interval:
        Seconds between periodic cache seals inside each shard — the
        bound the respawn-to-warm-serving time is measured against.
    max_respawns:
        Fleet-lifetime shard respawn budget (default ``2*shards + 2``,
        the worker-supervision convention).
    max_replays:
        Send attempts per request before failover gives up with
        :class:`ShardFailedError`.
    start:
        Spawn shards and block until all are serving.  ``False`` for
        tests that stage the fleet manually (call :meth:`start`).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        replication: int = 2,
        hot_threshold: int = 2,
        cache_dir=None,
        workers_per_shard: int = 2,
        backlog: int = 256,
        max_batch: int = 32,
        max_wait: float = 0.002,
        max_inflight: int | None = None,
        factor_workers: int | None = None,
        factor_engine: str | None = None,
        build_retries: int = 1,
        build_backoff: float = 0.05,
        byte_budget: int | None = None,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: float | None = None,
        checkpoint_interval: float = 5.0,
        drain_timeout: float = 30.0,
        max_respawns: int | None = None,
        max_replays: int = 3,
        vnodes: int = 128,
        metrics: ServiceMetrics | None = None,
        start: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replication > shards:
            replication = shards  # can't replicate wider than the fleet
        if heartbeat_interval <= 0.0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout is None:
            heartbeat_timeout = 10.0 * heartbeat_interval
        if max_respawns is None:
            max_respawns = 2 * shards + 2
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.replication = int(replication)
        self.checkpoint_interval = float(checkpoint_interval)
        self.max_replays = int(max_replays)
        self._tmpdir = None
        if cache_dir is None:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(prefix="tlr-fleet-")
            cache_dir = self._tmpdir.name
        self._config = {
            "cache_dir": str(cache_dir),
            "workers": int(workers_per_shard),
            "backlog": int(backlog),
            "max_batch": int(max_batch),
            "max_wait": float(max_wait),
            "max_inflight": max_inflight,
            "factor_workers": factor_workers,
            "factor_engine": factor_engine,
            "build_retries": int(build_retries),
            "build_backoff": float(build_backoff),
            "byte_budget": byte_budget,
            "heartbeat_interval": float(heartbeat_interval),
            "checkpoint_interval": float(checkpoint_interval),
            "drain_timeout": float(drain_timeout),
        }
        self._ctx = multiprocessing.get_context("fork")
        self._router = FleetRouter(
            ConsistentHashRing(vnodes=vnodes),
            replication=self.replication,
            hot_threshold=hot_threshold,
        )
        self.supervisor = ShardSupervisor(
            max_respawns=max_respawns,
            heartbeat_timeout=heartbeat_timeout,
            )
        self._lock = threading.Lock()
        self._shards: dict[str, _ShardHandle] = {}
        self._pending: dict[int, _Pending] = {}
        #: request id -> (handle, target shard); the shard is recorded
        #: so a shard death settles its controls instead of leaking them
        self._controls: dict[int, tuple[RequestHandle, str]] = {}
        self._park: list[_Pending] = []
        #: results of replayed requests retained for dedup verification
        self._replay_results: OrderedDict[int, object] = OrderedDict()
        #: result pipes of dead shards, kept until their buffered
        #: replies drain to EOF (the collector owns all result reads)
        self._dead_conns: list = []
        self._respawns: list[dict] = []
        self._respawn_t0: dict[str, float] = {}
        self._req_ids = itertools.count(1)
        self._shard_index = itertools.count(0)
        self._closed = False
        self._started = False
        self._n_initial = int(shards)
        self._stop_event = threading.Event()
        self._monitor_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect_loop, name="tlr-fleet-collect", daemon=True
        )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="tlr-fleet-monitor", daemon=True
        )
        if start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, timeout: float = 120.0) -> None:
        """Spawn the initial shards and wait until all are serving."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._collector.start()
        self._monitor.start()
        for _ in range(self._n_initial):
            self.add_shard(wait=False)
        self.wait_ready(timeout=timeout)

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until every non-dead shard reports ready."""
        give_up = time.monotonic() + timeout
        while time.monotonic() < give_up:
            with self._lock:
                states = [h.state for h in self._shards.values()]
            if states and all(s in ("live", "dead", "removed") for s in states):
                if any(s == "live" for s in states):
                    return
            time.sleep(0.01)
        raise ShardUnavailableError(
            f"fleet failed to become ready within {timeout} s"
        )

    def close(self) -> None:
        """Stop every shard (completing accepted work) and shut down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Stop the monitor BEFORE asking shards to exit: a shard that
        # exits cleanly on "stop" must not be mistaken for a failure
        # and respawned behind our back (the replacement would miss
        # the stop round and leak past close).  Snapshot the handles
        # only after the monitor is down, so no respawn can slip in
        # between the snapshot and the stop round.
        self._monitor_stop.set()
        if self._monitor.is_alive():
            self._monitor.join(timeout=5.0)
        with self._lock:
            handles = list(self._shards.values())
        for h in handles:
            if h.state in ("starting", "live"):
                h.out_q.put((("stop",), None))
            h.out_q.put(None)  # retire the writer after the stop
        deadline = time.monotonic() + 10.0
        for h in handles:
            h.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if h.process.exitcode is None:
                self.supervisor._kill(h.process)
        self._stop_event.set()
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
        for h in handles:
            if h.writer is not None and h.writer.is_alive():
                h.writer.join(timeout=2.0)
        exc = ServiceClosedError("fleet closed")
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            controls = [c for c, _ in self._controls.values()]
            self._controls.clear()
            parked = list(self._park)
            self._park.clear()
        for p in pending + parked:
            if not p.handle.done():
                p.handle.set_exception(exc)
        for c in controls:
            if not c.done():
                c.set_exception(exc)
        with self._lock:
            for h in self._shards.values():
                if h.res_recv is not None:
                    h.res_recv.close()
                    h.res_recv = None
            for conn in self._dead_conns:
                conn.close()
            self._dead_conns.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shard membership
    # ------------------------------------------------------------------

    def add_shard(self, wait: bool = True, timeout: float = 120.0) -> str:
        """Join a new shard (graceful scale-up).  Its arc becomes live
        — stealing keys only from ring neighbors — once it reports
        ready; returns the shard name."""
        name = f"shard-{next(self._shard_index)}"
        self._spawn(name, epoch=0, handoff=None)
        if wait:
            give_up = time.monotonic() + timeout
            while time.monotonic() < give_up:
                with self._lock:
                    h = self._shards.get(name)
                    if h is not None and h.state == "live":
                        return name
                    if h is not None and h.state in ("dead", "removed"):
                        break
                time.sleep(0.01)
            raise ShardUnavailableError(f"{name} failed to become ready")
        return name

    def remove_shard(self, name: str, timeout: float = 60.0) -> dict:
        """Gracefully drain and retire one shard (warm handoff).

        The shard's arc is rebalanced to its ring successors *first*
        (no new traffic), then the drain protocol runs inside the
        shard: stop admissions, flush in-flight work, seal the cache.
        The returned summary carries the shard's handoff payload
        (breaker/retry-budget state) and final counters; the handoff
        state is retained so a future respawn of this name imports it.
        """
        with self._lock:
            h = self._shards.get(name)
            if h is None or h.state != "live":
                raise ShardUnavailableError(f"{name} is not a live shard")
        self._router.remove_node(name)
        ctrl = RequestHandle(next(self._req_ids), "drain")
        with self._lock:
            self._controls[ctrl.request_id] = (ctrl, name)
        h.out_q.put(
            (
                ("drain", ctrl.request_id),
                lambda: self._fail_control(ctrl.request_id, name),
            )
        )
        summary = ctrl.result(timeout=timeout)
        self.supervisor.beat(name, {"handoff": summary.get("handoff")})
        self.supervisor.detach(name)
        h.out_q.put(None)  # drain delivered: retire the writer
        h.process.join(timeout=10.0)
        if h.process.exitcode is None:  # pragma: no cover - wedged drain
            self.supervisor._kill(h.process)
        with self._lock:
            h.state = "removed"
        self.metrics.count("shards_removed")
        self.metrics.merge_counters(summary.get("counters", {}), prefix="shard_")
        return summary

    def kill_shard(self, shard: str | int) -> int:
        """Chaos hook: SIGKILL one shard process, returning its pid.
        The supervisor detects the death and runs the failover path —
        this is exactly the benchmark's mid-run shard loss."""
        name = shard if isinstance(shard, str) else f"shard-{shard}"
        with self._lock:
            h = self._shards.get(name)
            if h is None or h.state not in ("starting", "live"):
                raise ShardUnavailableError(f"{name} is not a live shard")
            pid = h.process.pid
        os.kill(pid, signal.SIGKILL)
        self.metrics.count("shards_killed")
        return pid

    def _spawn(self, name: str, epoch: int, handoff: dict | None) -> None:
        req_recv, req_send = self._ctx.Pipe(duplex=False)
        beat_recv, beat_send = self._ctx.Pipe(duplex=False)
        res_recv, res_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_shard_main,
            args=(
                name,
                epoch,
                self._config,
                req_recv,
                beat_send,
                res_send,
                handoff,
                os.getpid(),
            ),
            name=f"tlr-{name}",
            daemon=True,
        )
        proc.start()
        req_recv.close()
        beat_send.close()
        # The parent drops its copy of the write end right away: only
        # the shard holds it, so shard death reads as EOF downstream.
        res_send.close()
        handle = _ShardHandle(
            name=name,
            epoch=epoch,
            process=proc,
            req_send=req_send,
            beat_recv=beat_recv,
            res_recv=res_recv,
            out_q=queue.Queue(),
        )
        handle.writer = threading.Thread(
            target=self._writer_loop,
            args=(handle,),
            name=f"tlr-{name}-send",
            daemon=True,
        )
        handle.writer.start()
        with self._lock:
            self._shards[name] = handle
        self.supervisor.attach(name, proc)

    def _writer_loop(self, h: _ShardHandle) -> None:
        """Sole sender on one shard's request pipe.

        Decoupling pipe writes from the monitor and client threads
        means a hung shard whose pipe buffer fills can only wedge its
        own writer; heartbeat-staleness detection stays live on the
        monitor thread, and the SIGKILL it delivers closes the pipe's
        read end — the blocked send raises EPIPE, unblocking the
        writer, which then fails the queued work over to the failover
        path via each item's ``on_fail`` callback.  After the first
        broken send the writer keeps consuming (failing every item)
        until its ``None`` sentinel, so a message enqueued after the
        break is never silently dropped.
        """
        broken = False
        while True:
            item = h.out_q.get()
            if item is None:
                return
            msg, on_fail = item
            if not broken:
                try:
                    h.req_send.send(msg)
                    continue
                except (BrokenPipeError, OSError):
                    broken = True
            if on_fail is not None:
                on_fail()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def submit_solve(
        self,
        spec: OperatorSpec,
        rhs: np.ndarray,
        timeout: float | None = None,
        refine: bool = False,
    ) -> RequestHandle:
        """Queue ``A x = rhs`` on the shard owning ``spec``.

        Validation happens at the front door (malformed requests never
        cross a process boundary); the deadline is stamped here and
        honored at every stage on the shard, exactly as in the
        single-process service.
        """
        rhs = SolveService._validate_rhs(spec, rhs)
        return self._submit(
            kind="solve",
            route_key=spec.fingerprint,
            spec=spec,
            payload=rhs,
            refine=refine,
            timeout=timeout,
        )

    def submit_logdet(
        self, spec: OperatorSpec, timeout: float | None = None
    ) -> RequestHandle:
        """Queue a ``log det A`` request on the shard owning ``spec``."""
        return self._submit(
            kind="logdet",
            route_key=spec.fingerprint,
            spec=spec,
            timeout=timeout,
        )

    def submit_occupancy(
        self, route_key: str, seconds: float, timeout: float | None = None
    ) -> RequestHandle:
        """Queue a calibrated lane-occupancy request (no numerics).

        Holds one of the owning shard's ``workers`` lanes for
        ``seconds`` — the fleet analog of the parallel engines'
        replayed-DAG mode: it exercises the full dispatch path
        (routing, pipes, dedup, failover) with a known service time,
        isolating front-door capacity from BLAS throughput.  Used by
        the scaling benchmark and as a health probe.
        """
        if seconds < 0.0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        return self._submit(
            kind="occupy",
            route_key=str(route_key),
            payload=float(seconds),
            timeout=timeout,
        )

    def prewarm(self, spec: OperatorSpec, replicas: bool = True) -> list[RequestHandle]:
        """Build/load ``spec`` on its primary (and replica) shards now,
        returning one handle per prewarmed shard.  The benchmark's way
        of paying cold builds before timing, and the admin's way of
        staging an operator before a traffic cutover."""
        decision = self._router.route(spec.fingerprint, count=False)
        if decision is None:
            raise ShardUnavailableError("no live shard to prewarm on")
        targets = [decision.primary] + (decision.replicas if replicas else [])
        handles = []
        for name in targets:
            h = self._send_control(name, "prewarm", spec)
            if h is not None:
                handles.append(h)
        return handles

    # ------------------------------------------------------------------
    # submission internals
    # ------------------------------------------------------------------

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        if timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        return time.monotonic() + timeout

    def _submit(
        self,
        kind: str,
        route_key: str,
        spec: OperatorSpec | None = None,
        payload=None,
        refine: bool = False,
        timeout: float | None = None,
    ) -> RequestHandle:
        with self._lock:
            if self._closed:
                raise ServiceClosedError("fleet is closed")
        decision = self._router.route(route_key)
        if decision is None:
            self.metrics.count("rejected_no_shard")
            raise ShardUnavailableError("no live shard to route to")
        req = _Pending(
            req_id=next(self._req_ids),
            kind=kind,
            route_key=route_key,
            handle=RequestHandle(0, kind),
            shard=decision.primary,
            spec=spec,
            payload=payload,
            refine=refine,
            deadline=self._deadline(timeout),
        )
        req.handle.request_id = req.req_id
        with self._lock:
            self._pending[req.req_id] = req
        self.metrics.count("submitted")
        if decision.became_hot and spec is not None:
            # first crossing of the hot threshold: warm each replica
            # once, so the failover target already holds the factor
            for replica in decision.replicas:
                if self._send_control(replica, "prewarm", spec) is not None:
                    self.metrics.count("prewarms_sent")
        if not self._dispatch(req, decision.primary):
            # the primary died between routing and send: park it; the
            # monitor reroutes as soon as the supervisor turns over
            with self._lock:
                self._park.append(req)
        return req.handle

    def _wire_message(self, req: _Pending) -> tuple:
        if req.kind == "solve":
            return (
                "solve",
                req.req_id,
                req.spec,
                req.payload,
                req.deadline,
                req.refine,
            )
        if req.kind == "logdet":
            return ("logdet", req.req_id, req.spec, req.deadline)
        if req.kind == "occupy":
            return ("occupy", req.req_id, req.payload, req.deadline)
        raise AssertionError(f"unknown kind {req.kind!r}")

    def _dispatch(self, req: _Pending, shard: str) -> bool:
        """Queue ``req`` for ``shard``'s writer; False if the shard is
        not accepting work.  The pipe write itself happens on the
        shard's writer thread, so this never blocks: a broken pipe
        surfaces asynchronously by parking the request for the monitor
        to re-home."""
        with self._lock:
            h = self._shards.get(shard)
            if h is None or h.state not in ("starting", "live"):
                return False
            req.shard = shard
            req.sent_epoch = h.epoch
        h.out_q.put(
            (
                self._wire_message(req),
                lambda: self._park_failed_send(req, shard, h.epoch),
            )
        )
        return True

    def _park_failed_send(self, req: _Pending, shard: str, epoch: int) -> None:
        """Writer-thread callback: ``req``'s send hit a dead pipe.
        Park it for re-homing unless it already settled or the
        shard-failure path re-dispatched it first."""
        with self._lock:
            if req.handle.done():
                return
            if self._pending.get(req.req_id) is not req:
                return
            if req.shard != shard or req.sent_epoch != epoch:
                return  # already re-homed by failover
            if any(p is req for p in self._park):
                return
            self._park.append(req)

    def _send_control(self, shard: str, kind: str, spec) -> RequestHandle | None:
        """Fire a control request (prewarm) at one shard; None if the
        shard is not accepting work.  The control is tracked against
        its target shard, so a shard death settles the handle with
        :class:`ShardFailedError` instead of leaking it."""
        with self._lock:
            h = self._shards.get(shard)
            if h is None or h.state not in ("starting", "live"):
                return None
        ctrl = RequestHandle(next(self._req_ids), kind)
        with self._lock:
            self._controls[ctrl.request_id] = (ctrl, shard)
        h.out_q.put(
            (
                (kind, ctrl.request_id, spec),
                lambda: self._fail_control(ctrl.request_id, shard),
            )
        )
        return ctrl

    def _fail_control(self, req_id: int, shard: str) -> None:
        """Settle one control handle whose target shard is gone."""
        with self._lock:
            entry = self._controls.pop(req_id, None)
        if entry is None:
            return
        ctrl, _ = entry
        if not ctrl.done():
            ctrl.set_exception(
                ShardFailedError(
                    f"{ctrl.kind} request {req_id} lost shard {shard}"
                )
            )

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------

    def _collect_loop(self) -> None:
        # Sole reader of every result pipe (live shards' and dead
        # shards' alike): single-reader discipline is what lets a dead
        # shard's buffered replies drain in order before its EOF.
        while True:
            with self._lock:
                conns = [
                    h.res_recv
                    for h in self._shards.values()
                    if h.res_recv is not None
                ]
                conns.extend(self._dead_conns)
            if not conns:
                if self._stop_event.wait(0.05):
                    return
                continue
            ready = mp_connection.wait(conns, timeout=0.2)
            for conn in ready:
                while True:
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        # writer exited (or died); buffered frames are
                        # exhausted, so stop waiting on this pipe
                        self._retire_conn(conn)
                        break
                    self._dispatch_result(msg)
                    if not conn.poll(0):
                        break
            if self._stop_event.is_set() and not ready:
                return

    def _retire_conn(self, conn) -> None:
        with self._lock:
            for h in self._shards.values():
                if h.res_recv is conn:
                    h.res_recv = None
            if conn in self._dead_conns:
                self._dead_conns.remove(conn)
        conn.close()

    def _dispatch_result(self, msg: tuple) -> None:
        tag = msg[0]
        if tag == "ready":
            self._on_ready(*msg[1:])
        elif tag in ("ok", "err"):
            self._on_result(msg)

    def _on_ready(self, name: str, epoch: int, pid: int, info: dict) -> None:
        with self._lock:
            h = self._shards.get(name)
            if h is None or h.epoch != epoch or h.state != "starting":
                return  # a stale life of this name
            h.state = "live"
            h.ready_info = info
        self._router.add_node(name)
        t0 = self._respawn_t0.pop(name, None)
        if t0 is not None:
            self._respawns.append(
                {
                    "shard": name,
                    "epoch": epoch,
                    "respawn_seconds": time.monotonic() - t0,
                    "warm_disk_entries": info.get("disk_entries", 0),
                    "imported_breaker_keys": info.get(
                        "imported_breaker_keys", 0
                    ),
                }
            )
        self._flush_park()

    def _on_result(self, msg: tuple) -> None:
        tag, shard, epoch, req_id = msg[:4]
        with self._lock:
            entry = self._controls.pop(req_id, None)
        if entry is not None:
            ctrl, _ = entry
            if tag == "ok":
                ctrl.set_result(msg[4])
            else:
                ctrl.set_exception(reconstruct_error(msg[4], msg[5]))
            return
        with self._lock:
            req = self._pending.pop(req_id, None)
        if req is None:
            self._on_duplicate(req_id, tag, msg)
            return
        if tag == "ok":
            value = msg[4]
            req.handle.set_result(value)
            self.metrics.count("completed")
            self.metrics.record_latency(
                req.kind, time.monotonic() - req.submitted_at
            )
            if req.deadline is not None:
                self.metrics.record_slack(
                    req.kind, req.deadline - time.monotonic()
                )
            if req.replayed:
                # retain for the dedup-verify check if the first
                # life's answer is still in flight somewhere;
                # remember whether this request ran the deterministic
                # solo path (bitwise-comparable) or a coalescible one
                solo = req.kind != "solve" or (
                    getattr(req.payload, "ndim", 1) == 2
                )
                with self._lock:
                    self._replay_results[req_id] = (value, solo)
                    while len(self._replay_results) > 256:
                        self._replay_results.popitem(last=False)
        else:
            err = reconstruct_error(msg[4], msg[5])
            req.handle.set_exception(err)
            self.metrics.count(
                "expired" if isinstance(err, DeadlineExpiredError) else "failed"
            )

    def _on_duplicate(self, req_id: int, tag: str, msg: tuple) -> None:
        """A result for an already-settled request id: the dead shard's
        answer raced the replay's.  First completion won; the loser is
        dropped — but if both are *answers*, they must agree.  Requests
        on the deterministic solo path (2-D solves, logdet, occupancy)
        must agree *bitwise* — same fingerprint, same deterministic
        build, same RHS.  Coalescible 1-D solves may legitimately
        differ in last-bit rounding (the replay lands in a different
        batch, and blocked BLAS solves round per column count), so they
        are held to numerical equality instead.  A genuine disagreement
        is counted loudly as a correctness alarm."""
        self.metrics.count("stale_results")
        if tag != "ok":
            return
        with self._lock:
            kept = self._replay_results.get(req_id)
        if kept is None:
            return
        kept_value, solo = kept
        a, b = np.asarray(kept_value), np.asarray(msg[4])
        if np.array_equal(a, b):
            self.metrics.count("replay_verified_identical")
        elif not solo and a.shape == b.shape and np.allclose(
            a, b, rtol=1e-9, atol=0.0
        ):
            self.metrics.count("replay_verified_close")
        else:
            self.metrics.count("replay_mismatch")

    # ------------------------------------------------------------------
    # supervision and failover
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        # Runs against its own stop event so close() can retire the
        # monitor BEFORE stopping shards: otherwise a clean exit
        # during shutdown reads as a failure and gets respawned.
        interval = self._config["heartbeat_interval"] / 2.0
        while not self._monitor_stop.wait(interval):
            self._drain_beats()
            for failure in self.supervisor.poll():
                self._on_shard_failure(failure)
            self._flush_park()

    def _drain_beats(self) -> None:
        with self._lock:
            handles = [
                h
                for h in self._shards.values()
                if h.state in ("starting", "live")
            ]
        for h in handles:
            try:
                while h.beat_recv.poll(0):
                    payload = h.beat_recv.recv()
                    h.last_beat = payload
                    self.supervisor.beat(h.name, payload)
            except (EOFError, OSError):
                pass  # death shows up in the exit-code poll

    def _on_shard_failure(self, failure: ShardFailure) -> None:
        with self._lock:
            if self._closed:
                return  # close() owns shutdown; exits are not failures
            h = self._shards.get(failure.shard)
            if h is None or h.state in ("dead", "removed"):
                return
            h.state = "dead"
            if h.res_recv is not None:
                # Hand the pipe to the dead-conn pool: a respawn is
                # about to replace this handle, but replies the dying
                # shard raced out still sit in the buffer and must
                # drain through the normal dedup-verify path.
                self._dead_conns.append(h.res_recv)
                h.res_recv = None
            victims = [
                p for p in self._pending.values() if p.shard == failure.shard
            ]
            dead_ctrl_ids = [
                rid
                for rid, (_, s) in self._controls.items()
                if s == failure.shard
            ]
        self.metrics.count("shard_failures")
        if failure.hung:
            self.metrics.count("shards_hung_killed")
        # rebalance ONLY the dead shard's arc: every other fingerprint
        # keeps its shard (the consistent-hashing contract)
        self._router.remove_node(failure.shard)
        self.supervisor.detach(failure.shard)
        # Controls (prewarm/drain) are pinned to their shard — no
        # surviving replica can answer them — so settle their handles
        # rather than leaving callers blocked forever.
        for rid in dead_ctrl_ids:
            self._fail_control(rid, failure.shard)
        if victims:
            self.metrics.count("failovers")
        for p in victims:
            self._replay(p)
        # Retire the dead handle's writer once its backlog drains;
        # every leftover item fails through on_fail, which defers to
        # the replay the loop above already performed.
        h.out_q.put(None)
        if self.supervisor.can_respawn():
            self.supervisor.record_respawn(failure.shard)
            self._respawn_t0[failure.shard] = time.monotonic()
            last = self.supervisor.last_payload(failure.shard) or {}
            # warm handoff out of a crash: the sealed shared cache
            # restores the factors; the last beat restores the
            # breaker/retry-budget protection state
            self._spawn(
                failure.shard,
                epoch=h.epoch + 1,
                handoff=last.get("handoff"),
            )
            self.metrics.count("shards_respawned")
        else:
            self.metrics.count("respawn_budget_exhausted")

    def _replay(self, req: _Pending) -> None:
        """Re-home one in-flight request from a dead shard."""
        if req.handle.done():
            return
        now = time.monotonic()
        if req.deadline is not None and now >= req.deadline:
            with self._lock:
                self._pending.pop(req.req_id, None)
            req.handle.set_exception(
                DeadlineExpiredError(
                    f"request {req.req_id} expired during failover"
                )
            )
            self.metrics.count("expired")
            self.metrics.count("shed_failover")
            return
        if req.attempts >= self.max_replays:
            with self._lock:
                self._pending.pop(req.req_id, None)
            req.handle.set_exception(
                ShardFailedError(
                    f"request {req.req_id} lost {req.attempts} shard(s); "
                    "replay attempts exhausted"
                )
            )
            self.metrics.count("failed")
            return
        decision = self._router.route(req.route_key, count=False)
        if decision is None:
            # Park only while recovery is possible: a shard is coming
            # up, or the respawn budget could still produce one.  With
            # an empty ring and no replacement ever coming, re-parking
            # would strand a no-deadline caller forever — settle the
            # handle instead.
            with self._lock:
                recovering = any(
                    s.state in ("starting", "live")
                    for s in self._shards.values()
                )
            if not recovering and not self.supervisor.can_respawn():
                with self._lock:
                    self._pending.pop(req.req_id, None)
                req.handle.set_exception(
                    ShardUnavailableError(
                        f"request {req.req_id}: no live shard and the "
                        "respawn budget is exhausted"
                    )
                )
                self.metrics.count("failed")
                self.metrics.count("shed_no_shard")
                return
            with self._lock:
                self._park.append(req)
            return
        req.replayed = True
        if self._dispatch(req, decision.primary):
            req.attempts += 1
            self.metrics.count("requests_replayed")
        else:
            with self._lock:
                self._park.append(req)

    def _flush_park(self) -> None:
        with self._lock:
            if not self._park:
                return
            parked = list(self._park)
            self._park.clear()
        for req in parked:
            self._replay(req)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def shard_names(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    def live_shards(self) -> list[str]:
        with self._lock:
            return sorted(
                n for n, h in self._shards.items() if h.state == "live"
            )

    def status(self) -> list[ShardStatus]:
        """Per-shard condition from the latest heartbeats."""
        out = []
        with self._lock:
            for name in sorted(self._shards):
                h = self._shards[name]
                beat = h.last_beat or {}
                out.append(
                    ShardStatus(
                        name=name,
                        state=h.state,
                        pid=h.process.pid if h.process is not None else None,
                        epoch=h.epoch,
                        inflight=int(beat.get("inflight", 0)),
                        cache_entries=int(beat.get("entries", 0)),
                        completed=int(beat.get("completed", 0)),
                    )
                )
        return out

    def report(self) -> dict:
        """Fleet-level robustness accounting (benchmark evidence)."""
        counters = self.metrics.to_dict()["counters"]
        return {
            "supervisor": self.supervisor.report(),
            "respawns": list(self._respawns),
            "failovers": counters.get("failovers", 0),
            "requests_replayed": counters.get("requests_replayed", 0),
            "stale_results": counters.get("stale_results", 0),
            "replay_verified_identical": counters.get(
                "replay_verified_identical", 0
            ),
            "replay_verified_close": counters.get("replay_verified_close", 0),
            "replay_mismatch": counters.get("replay_mismatch", 0),
            "hot_fingerprints": len(self._router.hot_fingerprints()),
        }
