"""Shard health: heartbeat liveness and the shard respawn budget.

:class:`ShardSupervisor` generalizes the mp engine's
:class:`~repro.runtime.supervisor.WorkerSupervisor` from kernel worker
lanes to whole service processes.  The detection signal changes with
the population: a kernel worker is *busy or idle* — hang detection
keys off how long it has held one task — but a shard is a full
:class:`~repro.service.server.SolveService` whose event loop must stay
responsive even when no request is in flight.  So shards prove
liveness affirmatively, with heartbeats over a dedicated pipe, and a
shard whose last beat is older than ``heartbeat_timeout`` is declared
hung and SIGKILLed into the one recovery path (death), exactly as the
worker supervisor folds hangs into kills.

Heartbeats carry more than a timestamp: each beat piggybacks the
shard's warm-handoff payload (circuit-breaker and retry-budget state,
see :meth:`SolveService.export_handoff`) plus occupancy gauges.  That
makes *crash* recovery a warm handoff too — the fleet respawns a
SIGKILLed shard with the state from its last beat, so the replacement
does not re-probe known-bad operators at full rate, and the sealed
disk cache restores its factors without a rebuild.

A freshly attached shard gets a grace period of one ``heartbeat_timeout``
from attach time before staleness can fire: process startup (fork,
cache recovery scan) legitimately precedes the first beat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.runtime.supervisor import ProcessSupervisor

__all__ = ["ShardFailure", "ShardSupervisor"]


@dataclass(frozen=True)
class ShardFailure:
    """One detected shard failure, as the fleet consumes it."""

    #: shard name (stable across respawns — the ring arc identity)
    shard: str
    #: OS pid of the failed process
    pid: int
    #: exit code (negative = died by signal); for a hung shard this is
    #: the post-SIGKILL code (or ``None`` if it refused to die)
    exitcode: int | None
    #: True when the failure is a stale heartbeat resolved by SIGKILL
    hung: bool
    #: seconds since the last observed heartbeat at detection time
    beat_age: float


class ShardSupervisor(ProcessSupervisor):
    """Heartbeat liveness + respawn budget over service shards.

    Parameters
    ----------
    max_respawns:
        Total replacement shards allowed over the fleet's lifetime.
        0 disables recovery: a dead shard's arc permanently flows to
        its ring successors.
    heartbeat_timeout:
        Seconds without a heartbeat after which a live-looking shard is
        declared hung and killed.  ``None`` disables staleness
        detection (exit codes still detect deaths).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_respawns: int = 0,
        heartbeat_timeout: float | None = None,
        clock=time.monotonic,
    ) -> None:
        super().__init__(max_respawns=max_respawns, clock=clock)
        if heartbeat_timeout is not None and heartbeat_timeout <= 0.0:
            raise ValueError(
                f"heartbeat_timeout must be positive or None, "
                f"got {heartbeat_timeout}"
            )
        self.heartbeat_timeout = heartbeat_timeout
        #: shard -> last beat timestamp (attach time until the first beat)
        self._beats: dict[str, float] = {}
        #: shard -> payload of the last beat (warm-handoff state)
        self._payloads: dict[str, dict] = {}
        self.hung_killed = 0
        self.beats_seen = 0

    # ------------------------------------------------------------------
    # fleet-facing bookkeeping
    # ------------------------------------------------------------------

    def attach(self, shard: str, process) -> None:
        """Register (or replace, after a respawn) a shard's process.

        Attach time counts as a synthetic first beat, giving the new
        process one full timeout to come up before staleness can fire.
        """
        super().attach(shard, process)
        self._beats[shard] = self._clock()

    def detach(self, shard: str) -> None:
        super().detach(shard)
        self._beats.pop(shard, None)
        # the payload is deliberately kept: it is the warm-handoff
        # state a future respawn of this shard name imports

    def beat(self, shard: str, payload: dict[str, Any] | None = None) -> None:
        """Record one heartbeat (and its piggybacked handoff state)."""
        self._beats[shard] = self._clock()
        self.beats_seen += 1
        if payload is not None:
            self._payloads[shard] = payload

    def beat_age(self, shard: str) -> float | None:
        """Seconds since the shard's last beat (None if never attached)."""
        last = self._beats.get(shard)
        return None if last is None else self._clock() - last

    def last_payload(self, shard: str) -> dict[str, Any] | None:
        """The shard's most recent heartbeat payload — the state a
        respawn imports for warm handoff after a crash."""
        return self._payloads.get(shard)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def poll(self) -> list[ShardFailure]:
        """Detect dead and heartbeat-stale shards (stale ones are
        SIGKILLed here, folding hangs into the single death path).

        Each failure is reported exactly once: the fleet either
        respawns the shard (re-attaching a fresh process) or removes
        its arc for good, so a reported shard never re-enters the scan
        as the same corpse.
        """
        failures: list[ShardFailure] = []
        now = self._clock()
        dead = set()
        for shard, proc, code in self.poll_exits():
            dead.add(shard)
            failures.append(
                ShardFailure(
                    shard=shard,
                    pid=proc.pid,
                    exitcode=code,
                    hung=False,
                    beat_age=now - self._beats.get(shard, now),
                )
            )
        if self.heartbeat_timeout is not None:
            for shard in self.keys():
                if shard in dead:
                    continue
                age = now - self._beats.get(shard, now)
                if age >= self.heartbeat_timeout:
                    proc = self.process_of(shard)
                    self.hung_killed += 1
                    self._kill(proc)
                    failures.append(
                        ShardFailure(
                            shard=shard,
                            pid=proc.pid,
                            exitcode=proc.exitcode,
                            hung=True,
                            beat_age=age,
                        )
                    )
        return failures

    def report(self) -> dict[str, int]:
        """Counters for this fleet (merged into fleet reports)."""
        return {
            "respawns": self.respawns,
            "hung_killed": self.hung_killed,
            "beats_seen": self.beats_seen,
        }
