"""Operator specifications and content fingerprints.

A serving cache is only sound if its key captures *everything* that
determines the factored operator.  ``OperatorSpec`` pins the full
recipe — geometry, kernel, shape parameter, tile size, accuracy
threshold, rank cap, nugget — and derives a stable SHA-256 fingerprint
from the canonical byte representation of those fields.  Two specs
with the same fingerprint produce bitwise-identical operators, so a
fingerprint hit may skip generation, compression and factorization.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import DTYPE
from repro.kernels.rbf import (
    GaussianRBF,
    InverseMultiquadricRBF,
    MultiquadricRBF,
    RadialBasisFunction,
)
from repro.utils.validation import check_positive

__all__ = ["OperatorSpec", "BuiltOperator", "KERNELS"]

#: Registry of servable radial kernels by canonical name.
KERNELS: dict[str, type[RadialBasisFunction]] = {
    "gaussian": GaussianRBF,
    "multiquadric": MultiquadricRBF,
    "inverse-multiquadric": InverseMultiquadricRBF,
}


@dataclass(frozen=True)
class BuiltOperator:
    """The products of one (expensive) operator build."""

    #: compressed, unfactorized operator (for residuals / refinement)
    operator: "TLRMatrix"  # noqa: F821 - forward ref, resolved at runtime
    #: in-place TLR Cholesky factor
    factor: "TLRMatrix"  # noqa: F821
    #: wall-clock seconds spent in matgen + compression
    compress_seconds: float
    #: wall-clock seconds spent in the factorization
    factorize_seconds: float


@dataclass(frozen=True)
class OperatorSpec:
    """Everything needed to (re)build one servable TLR operator.

    ``label`` is display-only and deliberately excluded from the
    fingerprint: renaming a workload must not invalidate its cache
    entry.
    """

    points: np.ndarray
    shape_parameter: float
    tile_size: int
    accuracy: float
    kernel: str = "gaussian"
    nugget: float = 1.0e-8
    max_rank: int | None = None
    #: compression method for the build (``"svd"``/``"rand"``).  None
    #: defers to ``$REPRO_COMPRESSION`` and is pinned to the resolved
    #: method at construction, so the fingerprint and the build can
    #: never disagree about what an env-selected default meant.
    compression: str | None = None
    #: tile-storage precision (``"fp64"``/``"mixed"``); None defers to
    #: ``$REPRO_STORAGE_PRECISION``, pinned like ``compression``.
    storage_precision: str | None = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        pts = np.ascontiguousarray(self.points, dtype=DTYPE)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must have shape (n, 3), got {pts.shape}")
        pts.setflags(write=False)
        object.__setattr__(self, "points", pts)
        check_positive("shape_parameter", self.shape_parameter)
        check_positive("tile_size", self.tile_size)
        check_positive("accuracy", self.accuracy)
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from {sorted(KERNELS)}"
            )
        if self.nugget < 0.0:
            raise ValueError(f"nugget must be >= 0, got {self.nugget}")
        # pin env-resolved policy names (also fails fast on typos)
        from repro.linalg.lowrank import resolve_compression
        from repro.linalg.precision import resolve_storage

        object.__setattr__(
            self, "compression", resolve_compression(self.compression).method
        )
        object.__setattr__(
            self,
            "storage_precision",
            resolve_storage(self.storage_precision).mode,
        )

    @property
    def n(self) -> int:
        """Matrix order (number of points)."""
        return len(self.points)

    @property
    def fingerprint(self) -> str:
        """Stable hex digest identifying the built operator.

        Hashes the canonical float64 byte image of the geometry plus
        every numeric knob that changes the compressed factor.  Stable
        across processes and machines of the same endianness — safe to
        use as an on-disk cache key.
        """
        h = hashlib.sha256()
        header = (
            f"tlr-op-v1|kernel={self.kernel}"
            f"|delta={float(self.shape_parameter)!r}"
            f"|b={int(self.tile_size)}"
            f"|eps={float(self.accuracy)!r}"
            f"|nugget={float(self.nugget)!r}"
            f"|maxrank={self.max_rank if self.max_rank is None else int(self.max_rank)}"
            f"|n={self.n}|"
        )
        # non-default policies extend the header; the default build
        # keeps its pre-existing fingerprint (cache entries survive)
        if self.compression != "svd":
            header += f"comp={self.compression}|"
        if self.storage_precision != "fp64":
            header += f"prec={self.storage_precision}|"
        h.update(header.encode())
        h.update(self.points.tobytes())
        return h.hexdigest()

    def build(
        self, workers: int | None = None, engine: str | None = None
    ) -> BuiltOperator:
        """Generate, compress and factorize the operator (the cost a
        cache hit avoids).

        ``workers`` workers execute the factorization DAG on the
        ``engine`` backend (threads / mp / serial — see
        :func:`~repro.core.tlr_cholesky.tlr_cholesky`); the factor is
        bitwise identical across worker counts and backends, so the
        fingerprint stays a sound cache key.
        """
        from repro.core.hicma_parsec import hicma_parsec_factorize
        from repro.kernels.matgen import RBFMatrixGenerator
        from repro.linalg.tile_matrix import TLRMatrix

        t0 = time.perf_counter()
        gen = RBFMatrixGenerator(
            points=np.asarray(self.points),
            shape_parameter=self.shape_parameter,
            tile_size=self.tile_size,
            kernel=KERNELS[self.kernel](),
            nugget=self.nugget,
        )
        a = TLRMatrix.compress(
            gen.tile,
            gen.n,
            self.tile_size,
            self.accuracy,
            max_rank=self.max_rank,
            compression=self.compression,
            storage=self.storage_precision,
            # anchor the per-tile sampling seeds to the operator
            # identity: rebuilds of the same spec are bitwise identical
            seed_root=int(self.fingerprint[:16], 16),
        )
        operator = a.copy()
        t1 = time.perf_counter()
        factor = hicma_parsec_factorize(a, workers=workers, engine=engine).factor
        t2 = time.perf_counter()
        return BuiltOperator(
            operator=operator,
            factor=factor,
            compress_seconds=t1 - t0,
            factorize_seconds=t2 - t1,
        )

    def __repr__(self) -> str:
        name = self.label or "operator"
        return (
            f"OperatorSpec({name!r}, n={self.n}, kernel={self.kernel}, "
            f"b={self.tile_size}, eps={self.accuracy:g}, "
            f"fp={self.fingerprint[:12]})"
        )
