"""Byte-budgeted LRU cache of factored TLR operators.

The paper's Fig. 11 cost breakdown shows generation + compression +
factorization dominating end-to-end time; a serving system must pay
that once per operator, not once per request.  The cache keys entries
by :attr:`OperatorSpec.fingerprint`, bounds resident payload bytes
with LRU eviction, and (optionally) persists entries through
:mod:`repro.linalg.serialization` so a restarted — or evicted — server
reloads factors from disk instead of refactorizing.

Lookup outcomes, from cheapest to most expensive:

``hit``
    Factor resident in RAM: zero numerical work.
``disk hit``
    Factor reloaded from the persistence directory: deserialization
    only, still zero matgen/compression/factorization.
``miss``
    Full build via :meth:`OperatorSpec.build`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.linalg.serialization import load_tlr, save_tlr
from repro.linalg.tile_matrix import TLRMatrix
from repro.service.metrics import ServiceMetrics
from repro.service.spec import OperatorSpec

__all__ = ["CacheEntry", "OperatorCache"]


@dataclass
class CacheEntry:
    """One resident factored operator."""

    fingerprint: str
    #: compressed, unfactorized operator (residuals / iterative refinement)
    operator: TLRMatrix
    #: TLR Cholesky factor
    factor: TLRMatrix
    #: seconds spent building (0.0 when reloaded from disk)
    build_seconds: float = 0.0
    _logdet: float | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def nbytes(self) -> int:
        """Resident numerical payload (operator + factor)."""
        return self.operator.memory_bytes() + self.factor.memory_bytes()

    def logdet(self) -> float:
        """Memoized ``log det`` of the operator (read off the factor)."""
        from repro.core.solver import logdet

        with self._lock:
            if self._logdet is None:
                self._logdet = logdet(self.factor)
            return self._logdet


class OperatorCache:
    """LRU cache of :class:`CacheEntry` with a resident-bytes budget.

    Parameters
    ----------
    byte_budget:
        Maximum resident payload bytes.  ``None`` disables eviction.
        The most recently used entry is never evicted, so a single
        operator larger than the budget still serves (the budget bounds
        *steady-state* residency, not a single working set).
    directory:
        Persistence root.  When set, every build is written through and
        misses first try a disk reload.
    metrics:
        Optional :class:`ServiceMetrics` mirror for counters/gauges.
    factor_workers:
        Worker threads for cache-miss factorizations (forwarded to
        :meth:`OperatorSpec.build`).  ``None`` defers to the
        factorization default ($REPRO_WORKERS, else serial); ``<= 0``
        means one per CPU core.  Parallel builds cut the most
        expensive cache outcome — the cold build — without changing
        the factor.
    """

    def __init__(
        self,
        byte_budget: int | None = None,
        directory: str | os.PathLike | None = None,
        metrics: ServiceMetrics | None = None,
        factor_workers: int | None = None,
    ) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.byte_budget = byte_budget
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self.factor_workers = factor_workers
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._build_locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get_or_build(self, spec: OperatorSpec) -> CacheEntry:
        """Return the entry for ``spec``, building it at most once."""
        return self.acquire(spec)[0]

    def acquire(self, spec: OperatorSpec) -> tuple[CacheEntry, str]:
        """Like :meth:`get_or_build`, also reporting the lookup outcome
        (``"hit"``, ``"disk"`` or ``"build"``).

        Concurrent requests for the same fingerprint serialize on a
        per-fingerprint build lock (single-flight), so a thundering
        herd of cold requests pays one build, not one per request.
        """
        fp = spec.fingerprint
        entry = self._lookup(fp)
        if entry is not None:
            return entry, "hit"
        with self._build_lock(fp):
            entry = self._lookup(fp)  # built while we waited?
            if entry is not None:
                return entry, "hit"
            entry = self._load_from_disk(fp)
            outcome = "disk"
            if entry is None:
                outcome = "build"
                t0 = time.perf_counter()
                built = spec.build(workers=self.factor_workers)
                entry = CacheEntry(
                    fingerprint=fp,
                    operator=built.operator,
                    factor=built.factor,
                    build_seconds=time.perf_counter() - t0,
                )
                self._count("builds")
                self._count("misses")
                self._persist(entry)
            self._insert(entry)
            return entry, outcome

    def _lookup(self, fp: str) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                self._entries.move_to_end(fp)
        if entry is not None:
            self._count("hits")
        return entry

    def _build_lock(self, fp: str) -> threading.Lock:
        with self._lock:
            return self._build_locks.setdefault(fp, threading.Lock())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _paths(self, fp: str) -> tuple[Path, Path]:
        assert self.directory is not None
        return (
            self.directory / f"{fp}.operator.npz",
            self.directory / f"{fp}.factor.npz",
        )

    def _persist(self, entry: CacheEntry) -> None:
        if self.directory is None:
            return
        op_path, f_path = self._paths(entry.fingerprint)
        # uncompressed: warm reload speed matters more than disk bytes
        save_tlr(entry.operator, op_path, compressed=False)
        save_tlr(entry.factor, f_path, compressed=False)

    def _load_from_disk(self, fp: str) -> CacheEntry | None:
        if self.directory is None:
            return None
        op_path, f_path = self._paths(fp)
        if not (op_path.exists() and f_path.exists()):
            return None
        entry = CacheEntry(
            fingerprint=fp, operator=load_tlr(op_path), factor=load_tlr(f_path)
        )
        self._count("disk_hits")
        return entry

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------

    def _insert(self, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[entry.fingerprint] = entry
            self._entries.move_to_end(entry.fingerprint)
            evicted = 0
            if self.byte_budget is not None:
                while (
                    len(self._entries) > 1
                    and self._resident_bytes_locked() > self.byte_budget
                ):
                    self._entries.popitem(last=False)
                    evicted += 1
            resident = self._resident_bytes_locked()
        if evicted:
            self._count("evictions", evicted)
        if self.metrics is not None:
            self.metrics.set_bytes_resident(resident)

    def _resident_bytes_locked(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, spec_or_fp) -> bool:
        fp = (
            spec_or_fp.fingerprint
            if isinstance(spec_or_fp, OperatorSpec)
            else str(spec_or_fp)
        )
        with self._lock:
            return fp in self._entries

    def clear(self) -> None:
        """Drop resident entries (disk persistence is left intact)."""
        with self._lock:
            self._entries.clear()
        if self.metrics is not None:
            self.metrics.set_bytes_resident(0)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    _METRIC_NAMES = {
        "hits": "cache_hits",
        "disk_hits": "cache_disk_hits",
        "misses": "cache_misses",
        "builds": "cache_builds",
        "evictions": "cache_evictions",
    }

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)
        if self.metrics is not None:
            self.metrics.count(self._METRIC_NAMES[name], delta)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "builds": self.builds,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "resident_bytes": self._resident_bytes_locked(),
            }
