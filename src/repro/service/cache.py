"""Byte-budgeted LRU cache of factored TLR operators.

The paper's Fig. 11 cost breakdown shows generation + compression +
factorization dominating end-to-end time; a serving system must pay
that once per operator, not once per request.  The cache keys entries
by :attr:`OperatorSpec.fingerprint`, bounds resident payload bytes
with LRU eviction, and (optionally) persists entries through
:mod:`repro.linalg.serialization` so a restarted — or evicted — server
reloads factors from disk instead of refactorizing.

Lookup outcomes, from cheapest to most expensive:

``hit``
    Factor resident in RAM: zero numerical work.
``disk hit``
    Factor reloaded from the persistence directory: deserialization
    only, still zero matgen/compression/factorization.
``miss``
    Full build via :meth:`OperatorSpec.build`.

Disk entries are crash-safe: payloads are written atomically
(temp + fsync + rename, via :func:`repro.linalg.serialization.save_tlr`)
and sealed by a sidecar JSON manifest recording each file's size and
BLAKE2b digest — written *last*, so a manifest on disk implies its
payloads are complete.  Startup runs :meth:`OperatorCache.recover`:
stray temp files are deleted and torn/corrupt entries are quarantined
(renamed ``*.corrupt``) rather than trusted.  A reload that still
fails — bit rot under a valid-looking manifest, a truncated legacy
file — is caught, quarantined, counted (``disk_corrupt``), and falls
through to a fresh build: the cache never serves a factor it cannot
verify.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.linalg.serialization import load_tlr, save_tlr
from repro.linalg.tile_matrix import TLRMatrix
from repro.service.metrics import ServiceMetrics
from repro.service.spec import OperatorSpec
from repro.utils.atomic import atomic_write_bytes

__all__ = ["CacheEntry", "OperatorCache"]

_MANIFEST_VERSION = 1

#: Exceptions a corrupt/torn disk entry can surface as during reload.
_DISK_CORRUPTION_ERRORS = (ValueError, OSError, KeyError, zipfile.BadZipFile)


def _file_digest(path: Path) -> str:
    h = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass
class CacheEntry:
    """One resident factored operator."""

    fingerprint: str
    #: compressed, unfactorized operator (residuals / iterative refinement)
    operator: TLRMatrix
    #: TLR Cholesky factor
    factor: TLRMatrix
    #: seconds spent building (0.0 when reloaded from disk)
    build_seconds: float = 0.0
    _logdet: float | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def nbytes(self) -> int:
        """Resident numerical payload (operator + factor)."""
        return self.operator.memory_bytes() + self.factor.memory_bytes()

    def logdet(self) -> float:
        """Memoized ``log det`` of the operator (read off the factor)."""
        from repro.core.solver import logdet

        with self._lock:
            if self._logdet is None:
                self._logdet = logdet(self.factor)
            return self._logdet


class OperatorCache:
    """LRU cache of :class:`CacheEntry` with a resident-bytes budget.

    Parameters
    ----------
    byte_budget:
        Maximum resident payload bytes.  ``None`` disables eviction.
        The most recently used entry is never evicted, so a single
        operator larger than the budget still serves (the budget bounds
        *steady-state* residency, not a single working set).
    directory:
        Persistence root.  When set, every build is written through and
        misses first try a disk reload.
    metrics:
        Optional :class:`ServiceMetrics` mirror for counters/gauges.
    factor_workers:
        Worker threads for cache-miss factorizations (forwarded to
        :meth:`OperatorSpec.build`).  ``None`` defers to the
        factorization default ($REPRO_WORKERS, else serial); ``<= 0``
        means one per CPU core.  Parallel builds cut the most
        expensive cache outcome — the cold build — without changing
        the factor.
    factor_engine:
        Execution backend for those factorizations (``"threads"``,
        ``"mp"``, ``"serial"``); ``None`` defers to ``$REPRO_ENGINE``.
    """

    def __init__(
        self,
        byte_budget: int | None = None,
        directory: str | os.PathLike | None = None,
        metrics: ServiceMetrics | None = None,
        factor_workers: int | None = None,
        factor_engine: str | None = None,
    ) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.byte_budget = byte_budget
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self.factor_workers = factor_workers
        self.factor_engine = factor_engine
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._build_locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.disk_corrupt = 0
        if self.directory is not None:
            self.recover()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get_or_build(self, spec: OperatorSpec) -> CacheEntry:
        """Return the entry for ``spec``, building it at most once."""
        return self.acquire(spec)[0]

    def acquire(self, spec: OperatorSpec) -> tuple[CacheEntry, str]:
        """Like :meth:`get_or_build`, also reporting the lookup outcome
        (``"hit"``, ``"disk"`` or ``"build"``).

        Concurrent requests for the same fingerprint serialize on a
        per-fingerprint build lock (single-flight), so a thundering
        herd of cold requests pays one build, not one per request.
        """
        fp = spec.fingerprint
        entry = self._lookup(fp)
        if entry is not None:
            return entry, "hit"
        with self._build_lock(fp):
            entry = self._lookup(fp)  # built while we waited?
            if entry is not None:
                return entry, "hit"
            entry = self._load_from_disk(fp)
            outcome = "disk"
            if entry is None:
                outcome = "build"
                t0 = time.perf_counter()
                built = spec.build(
                    workers=self.factor_workers, engine=self.factor_engine
                )
                entry = CacheEntry(
                    fingerprint=fp,
                    operator=built.operator,
                    factor=built.factor,
                    build_seconds=time.perf_counter() - t0,
                )
                self._count("builds")
                self._count("misses")
                self._persist(entry)
            self._insert(entry)
            return entry, outcome

    def _lookup(self, fp: str) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                self._entries.move_to_end(fp)
        if entry is not None:
            self._count("hits")
        return entry

    def _build_lock(self, fp: str) -> threading.Lock:
        with self._lock:
            return self._build_locks.setdefault(fp, threading.Lock())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _paths(self, fp: str) -> tuple[Path, Path]:
        assert self.directory is not None
        return (
            self.directory / f"{fp}.operator.npz",
            self.directory / f"{fp}.factor.npz",
        )

    def _manifest_path(self, fp: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fp}.manifest.json"

    def _persist(self, entry: CacheEntry) -> None:
        if self.directory is None:
            return
        op_path, f_path = self._paths(entry.fingerprint)
        # uncompressed: warm reload speed matters more than disk bytes
        save_tlr(entry.operator, op_path, compressed=False)
        save_tlr(entry.factor, f_path, compressed=False)
        # Manifest last: its presence certifies both payloads landed
        # complete, so a crash between the writes leaves a pair that
        # recover() treats as unsealed, never a sealed torn entry.
        manifest = {
            "version": _MANIFEST_VERSION,
            "fingerprint": entry.fingerprint,
            "files": {
                p.name: {"bytes": p.stat().st_size, "blake2b": _file_digest(p)}
                for p in (op_path, f_path)
            },
            "created_at": time.time(),
        }
        atomic_write_bytes(
            self._manifest_path(entry.fingerprint),
            json.dumps(manifest, indent=1).encode(),
        )

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt file aside for post-mortem (best effort)."""
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def _quarantine_entry(self, fp: str) -> None:
        op_path, f_path = self._paths(fp)
        moved = 0
        for p in (op_path, f_path, self._manifest_path(fp)):
            if p.exists():
                self._quarantine(p)
                moved += 1
        if moved:
            self._count("disk_corrupt")

    def _load_from_disk(self, fp: str) -> CacheEntry | None:
        if self.directory is None:
            return None
        op_path, f_path = self._paths(fp)
        if not (op_path.exists() and f_path.exists()):
            return None
        try:
            # load_tlr re-verifies every tile against its embedded
            # BLAKE2b checksum, so bit rot raises instead of loading.
            entry = CacheEntry(
                fingerprint=fp,
                operator=load_tlr(op_path),
                factor=load_tlr(f_path),
            )
        except _DISK_CORRUPTION_ERRORS:
            # Torn, truncated, or rotten entry: quarantine it and fall
            # through to a clean rebuild — never serve what we cannot
            # verify, never crash the server over a bad disk file.
            self._quarantine_entry(fp)
            return None
        self._count("disk_hits")
        return entry

    def recover(self) -> dict[str, int]:
        """Startup scan of the persistence directory.

        Deletes stray atomic-write temp files (a crash mid-rename),
        validates every *sealed* entry (manifest present) against the
        manifest's sizes and digests, and quarantines entries that
        fail — a truncated payload, a missing file, a flipped bit, an
        unreadable manifest.  Unsealed payload pairs (legacy entries
        written before manifests existed) are left for lazy validation
        at reload time via their embedded tile checksums.

        Returns ``{"checked": ..., "quarantined": ..., "tmp_removed": ...}``.
        """
        if self.directory is None:
            return {"checked": 0, "quarantined": 0, "tmp_removed": 0}
        tmp_removed = 0
        for tmp in self.directory.glob(".*.tmp"):
            tmp.unlink(missing_ok=True)
            tmp_removed += 1
        checked = quarantined = 0
        for manifest_path in sorted(self.directory.glob("*.manifest.json")):
            checked += 1
            fp = manifest_path.name[: -len(".manifest.json")]
            try:
                manifest = json.loads(manifest_path.read_text())
                if manifest.get("version") != _MANIFEST_VERSION:
                    raise ValueError("unsupported manifest version")
                files = manifest["files"]
                if not files:
                    raise ValueError("manifest lists no files")
                for name, meta in files.items():
                    p = self.directory / name
                    if p.stat().st_size != int(meta["bytes"]):
                        raise ValueError(f"{name}: size mismatch")
                    if _file_digest(p) != meta["blake2b"]:
                        raise ValueError(f"{name}: digest mismatch")
            except _DISK_CORRUPTION_ERRORS:
                self._quarantine_entry(fp)
                quarantined += 1
        return {
            "checked": checked,
            "quarantined": quarantined,
            "tmp_removed": tmp_removed,
        }

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------

    def _insert(self, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[entry.fingerprint] = entry
            self._entries.move_to_end(entry.fingerprint)
            evicted = 0
            if self.byte_budget is not None:
                while (
                    len(self._entries) > 1
                    and self._resident_bytes_locked() > self.byte_budget
                ):
                    self._entries.popitem(last=False)
                    evicted += 1
            resident = self._resident_bytes_locked()
        if evicted:
            self._count("evictions", evicted)
        if self.metrics is not None:
            self.metrics.set_bytes_resident(resident)

    def _resident_bytes_locked(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, spec_or_fp) -> bool:
        fp = (
            spec_or_fp.fingerprint
            if isinstance(spec_or_fp, OperatorSpec)
            else str(spec_or_fp)
        )
        with self._lock:
            return fp in self._entries

    def invalidate(self, fp: str) -> None:
        """Drop one entry everywhere: resident copy out, disk copy
        quarantined.  Used when a served result proves the entry is
        corrupt — the next request rebuilds from scratch instead of
        re-serving poison."""
        with self._lock:
            self._entries.pop(fp, None)
            resident = self._resident_bytes_locked()
        if self.directory is not None:
            self._quarantine_entry(fp)
        if self.metrics is not None:
            self.metrics.set_bytes_resident(resident)

    def seal(self) -> int:
        """Persist every resident entry not yet sealed on disk.

        The drain protocol's warm-handoff step: a successor process
        pointed at the same directory recovers every operator this one
        built, instead of re-factorizing on its first requests.
        Returns the number of entries newly persisted (0 with no
        persistence directory).
        """
        if self.directory is None:
            return 0
        with self._lock:
            entries = list(self._entries.values())
        sealed = 0
        for entry in entries:
            if self._manifest_path(entry.fingerprint).exists():
                continue
            self._persist(entry)
            sealed += 1
        return sealed

    def fingerprints(self) -> list[str]:
        """Resident fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def disk_fingerprints(self) -> list[str]:
        """Fingerprints sealed on disk (manifest present), sorted.

        The fleet's warm-handoff inventory: a respawned shard pointed
        at this directory serves exactly these operators from disk
        instead of rebuilding.  Fleet shards share one directory, so
        an entry sealed by any shard warms every future failover.
        """
        if self.directory is None:
            return []
        suffix = ".manifest.json"
        return sorted(
            p.name[: -len(suffix)]
            for p in self.directory.glob(f"*{suffix}")
        )

    def clear(self) -> None:
        """Drop resident entries (disk persistence is left intact)."""
        with self._lock:
            self._entries.clear()
        if self.metrics is not None:
            self.metrics.set_bytes_resident(0)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    _METRIC_NAMES = {
        "hits": "cache_hits",
        "disk_hits": "cache_disk_hits",
        "misses": "cache_misses",
        "builds": "cache_builds",
        "evictions": "cache_evictions",
        "disk_corrupt": "cache_disk_corrupt",
    }

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)
        if self.metrics is not None:
            self.metrics.count(self._METRIC_NAMES[name], delta)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "builds": self.builds,
                "evictions": self.evictions,
                "disk_corrupt": self.disk_corrupt,
                "entries": len(self._entries),
                "resident_bytes": self._resident_bytes_locked(),
            }
