"""repro.service — batched, cached serving of TLR solve requests.

The layer above :mod:`repro.core` that the ROADMAP's serving goal
needs: a factored operator is an asset to amortize over many requests
(H2OPUS-TLR's framing of TLR factorizations as reusable solvers), not
a per-call expense.  The subsystem provides

- :class:`OperatorSpec` — a full recipe for a servable operator with a
  content :attr:`~OperatorSpec.fingerprint` as cache key;
- :class:`OperatorCache` — byte-budgeted LRU residency of factored
  operators with write-through disk persistence;
- :class:`RequestBatcher` — dynamic coalescing of concurrent
  single-RHS solves into blocked multi-RHS solves;
- :class:`SolveService` — bounded-backlog queue + dispatcher + worker
  pool with end-to-end deadline propagation, admission control
  (``max_inflight`` + ``Retry-After`` hints), typed overload
  rejection, build retry-with-backoff, graceful ``drain()`` for warm
  handoff, and input validation at the edge;
- :class:`CircuitBreaker` — per-operator shedding of repeatedly
  failing factorizations, with half-open recovery probes;
- :class:`RetryBudget` — per-operator token bucket keeping build
  retries from amplifying an outage;
- :class:`ServiceMetrics` — latency percentiles, hit rates, batch
  shapes, Chrome-trace export via :mod:`repro.runtime.tracing`;
- :class:`FleetService` — N supervised shard processes behind a
  consistent-hash front door (:class:`FleetRouter`), with heartbeat
  liveness (:class:`ShardSupervisor`), hot-operator replication,
  failover replay of in-flight requests, and warm handoff through the
  shared sealed cache.
"""

from repro.service.batching import RequestBatcher
from repro.service.breaker import CircuitBreaker, RetryBudget
from repro.service.cache import CacheEntry, OperatorCache
from repro.service.errors import (
    BacklogFullError,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExpiredError,
    FactorizationFailedError,
    RequestFailedError,
    RetryBudgetExhaustedError,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    ShardFailedError,
    ShardUnavailableError,
    reconstruct_error,
)
from repro.service.fleet import FleetService, ShardStatus
from repro.service.health import ShardFailure, ShardSupervisor
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.router import ConsistentHashRing, FleetRouter, RouteDecision
from repro.service.server import Request, RequestHandle, SolveService
from repro.service.spec import KERNELS, BuiltOperator, OperatorSpec

__all__ = [
    "OperatorSpec",
    "BuiltOperator",
    "KERNELS",
    "OperatorCache",
    "CacheEntry",
    "RequestBatcher",
    "SolveService",
    "Request",
    "RequestHandle",
    "ServiceMetrics",
    "percentile",
    "CircuitBreaker",
    "RetryBudget",
    "ServiceError",
    "BacklogFullError",
    "ServiceOverloadedError",
    "ServiceDrainingError",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "RequestFailedError",
    "FactorizationFailedError",
    "CircuitOpenError",
    "RetryBudgetExhaustedError",
    "CorruptResultError",
    "ShardFailedError",
    "ShardUnavailableError",
    "reconstruct_error",
    "FleetService",
    "ShardStatus",
    "ConsistentHashRing",
    "FleetRouter",
    "RouteDecision",
    "ShardFailure",
    "ShardSupervisor",
]
