"""repro.service — batched, cached serving of TLR solve requests.

The layer above :mod:`repro.core` that the ROADMAP's serving goal
needs: a factored operator is an asset to amortize over many requests
(H2OPUS-TLR's framing of TLR factorizations as reusable solvers), not
a per-call expense.  The subsystem provides

- :class:`OperatorSpec` — a full recipe for a servable operator with a
  content :attr:`~OperatorSpec.fingerprint` as cache key;
- :class:`OperatorCache` — byte-budgeted LRU residency of factored
  operators with write-through disk persistence;
- :class:`RequestBatcher` — dynamic coalescing of concurrent
  single-RHS solves into blocked multi-RHS solves;
- :class:`SolveService` — bounded-backlog queue + dispatcher + worker
  pool with per-request deadlines, typed overload rejection,
  build retry-with-backoff and input validation at the edge;
- :class:`CircuitBreaker` — per-operator shedding of repeatedly
  failing factorizations, with half-open recovery probes;
- :class:`ServiceMetrics` — latency percentiles, hit rates, batch
  shapes, Chrome-trace export via :mod:`repro.runtime.tracing`.
"""

from repro.service.batching import RequestBatcher
from repro.service.breaker import CircuitBreaker
from repro.service.cache import CacheEntry, OperatorCache
from repro.service.errors import (
    BacklogFullError,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExpiredError,
    FactorizationFailedError,
    RequestFailedError,
    ServiceClosedError,
    ServiceError,
)
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.server import Request, RequestHandle, SolveService
from repro.service.spec import KERNELS, BuiltOperator, OperatorSpec

__all__ = [
    "OperatorSpec",
    "BuiltOperator",
    "KERNELS",
    "OperatorCache",
    "CacheEntry",
    "RequestBatcher",
    "SolveService",
    "Request",
    "RequestHandle",
    "ServiceMetrics",
    "percentile",
    "CircuitBreaker",
    "ServiceError",
    "BacklogFullError",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "RequestFailedError",
    "FactorizationFailedError",
    "CircuitOpenError",
    "CorruptResultError",
]
