"""The solve-serving front end: bounded queue, dispatcher, worker pool.

Request lifecycle::

    submit_*()  --put-->  bounded queue  --dispatcher-->  RequestBatcher
                               |                               |
                     BacklogFullError               coalesced batches
                     (queue full)                              |
                                                        worker pool
                                                 (cache acquire + blocked
                                                  solve / logdet, deadline
                                                  re-check, handle completion)

The dispatcher decouples request arrival from execution (the fan-both
asynchronous-factorization lesson applied to serving): clients never
block on BLAS, and concurrent single-RHS requests against one factor
coalesce into a single blocked multi-RHS triangular solve.  Overload
is handled at the edge — a full backlog rejects *synchronously* with
:class:`BacklogFullError` — and expired deadlines are re-checked both
at dispatch and at execution start so a stale request never reaches
the numerics.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.config import DTYPE
from repro.service.batching import RequestBatcher
from repro.service.breaker import CircuitBreaker
from repro.service.cache import CacheEntry, OperatorCache
from repro.service.errors import (
    BacklogFullError,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExpiredError,
    FactorizationFailedError,
    RequestFailedError,
    ServiceClosedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.spec import OperatorSpec

__all__ = ["Request", "RequestHandle", "SolveService"]

_SENTINEL = object()
_request_ids = itertools.count(1)


class RequestHandle:
    """Client-side handle for one submitted request.

    ``result()`` blocks until the service completes the request and
    either returns the payload (solution array, logdet float) or
    raises the typed service error recorded for it.
    """

    def __init__(self, request_id: int, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind
        self._done = threading.Event()
        self._result = None
        self._exception: BaseException | None = None

    def set_result(self, value) -> None:
        self._result = value
        self._done.set()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} still pending")
        return self._exception

    def result(self, timeout: float | None = None):
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"RequestHandle(#{self.request_id}, {self.kind}, {state})"


@dataclass
class Request:
    """One unit of queued work (internal to the service)."""

    kind: str  # "solve" | "logdet"
    spec: OperatorSpec
    handle: RequestHandle
    rhs: np.ndarray | None = None
    refine: bool = False
    #: monotonic-clock absolute deadline (None = no deadline)
    deadline: float | None = None
    submitted_at: float = field(default_factory=time.monotonic)

    @property
    def batchable(self) -> bool:
        """Only single-column solves coalesce; everything else runs as
        its own (possibly already blocked) execution."""
        return self.kind == "solve" and self.rhs is not None and self.rhs.ndim == 1

    @property
    def batch_key(self) -> tuple:
        return (self.spec.fingerprint, self.kind, self.refine)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


class SolveService:
    """Batched, cached serving of solve/logdet requests on TLR factors.

    Parameters
    ----------
    cache:
        Operator cache (default: unbounded in-memory cache).  Its
        metrics mirror is re-pointed at this service's metrics.
    workers:
        Worker threads executing batches.  BLAS releases the GIL, so
        distinct operators genuinely overlap.
    backlog:
        Bound on queued-but-undispatched requests; submissions beyond
        it raise :class:`BacklogFullError` synchronously.
    max_batch / max_wait:
        Coalescing knobs (see :class:`RequestBatcher`).
    factor_workers:
        Worker threads for cache-miss factorizations: the parallel
        DAG engine executes the build's task graph with this many
        threads (``<= 0`` = one per core).  ``None`` leaves the
        cache's own setting untouched.
    factor_engine:
        Execution backend for those factorizations (``"threads"``,
        ``"mp"`` for the shared-memory process pool, or ``"serial"``).
        ``None`` leaves the cache's own setting untouched.
    build_retries:
        Re-attempts of a failed cache-miss factorization (with capped
        exponential backoff starting at ``build_backoff`` seconds).
        Exhausted retries complete the request with
        :class:`FactorizationFailedError`.
    breaker:
        Per-operator circuit breaker (default: a fresh
        :class:`~repro.service.breaker.CircuitBreaker` built from
        ``breaker_threshold`` / ``breaker_reset``).  An operator whose
        builds keep failing is shed at the edge with
        :class:`CircuitOpenError` instead of re-building every time;
        a half-open probe re-admits it once it recovers.
    start:
        Start the dispatcher immediately.  Tests pass ``False`` to
        stage requests deterministically, then call :meth:`start`.
    """

    def __init__(
        self,
        cache: OperatorCache | None = None,
        workers: int = 2,
        backlog: int = 128,
        max_batch: int = 32,
        max_wait: float = 0.002,
        metrics: ServiceMetrics | None = None,
        factor_workers: int | None = None,
        factor_engine: str | None = None,
        build_retries: int = 1,
        build_backoff: float = 0.05,
        breaker: CircuitBreaker | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        start: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        if build_retries < 0:
            raise ValueError(f"build_retries must be >= 0, got {build_retries}")
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = cache if cache is not None else OperatorCache()
        self.cache.metrics = self.metrics
        if factor_workers is not None:
            self.cache.factor_workers = factor_workers
        if factor_engine is not None:
            self.cache.factor_engine = factor_engine
        self.build_retries = int(build_retries)
        self.build_backoff = float(build_backoff)
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                failure_threshold=breaker_threshold, reset_timeout=breaker_reset
            )
        )
        self.backlog = int(backlog)
        self._queue: queue.Queue = queue.Queue(maxsize=self.backlog)
        self._batcher = RequestBatcher(max_batch=max_batch, max_wait=max_wait)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tlr-serve"
        )
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._drain_on_close = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="tlr-serve-dispatch", daemon=True
        )
        if start:
            self.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def submit_solve(
        self,
        spec: OperatorSpec,
        rhs: np.ndarray,
        timeout: float | None = None,
        refine: bool = False,
    ) -> RequestHandle:
        """Queue ``A x = rhs`` against the operator described by ``spec``.

        A 1-D ``rhs`` returns a 1-D solution and may be coalesced with
        concurrent requests on the same operator; a 2-D ``rhs`` is
        already a blocked solve and runs as submitted.

        The RHS is validated *before* enqueue: unconvertible dtypes,
        wrong shapes and non-finite entries (NaN/Inf would poison a
        batched solve for every coalesced neighbor) are rejected
        synchronously with :class:`RequestFailedError`.
        """
        rhs = self._validate_rhs(spec, rhs)
        return self._submit(
            Request(
                kind="solve",
                spec=spec,
                handle=RequestHandle(next(_request_ids), "solve"),
                rhs=rhs.copy(),
                refine=refine,
                deadline=self._deadline(timeout),
            )
        )

    def submit_logdet(
        self, spec: OperatorSpec, timeout: float | None = None
    ) -> RequestHandle:
        """Queue a ``log det A`` request (memoized per cached factor)."""
        return self._submit(
            Request(
                kind="logdet",
                spec=spec,
                handle=RequestHandle(next(_request_ids), "logdet"),
                deadline=self._deadline(timeout),
            )
        )

    def submit_deformation(
        self,
        spec: OperatorSpec,
        boundary_displacements: np.ndarray,
        timeout: float | None = None,
        refine: bool = False,
    ) -> RequestHandle:
        """Queue an RBF mesh-deformation weights solve: ``A W = d_b``.

        ``boundary_displacements`` is the ``(n, 3)`` displacement field
        of the boundary nodes; the result is the ``(n, 3)`` interpolation
        weight matrix (one blocked 3-RHS solve).
        """
        try:
            d_b = np.asarray(boundary_displacements, dtype=DTYPE)
        except (TypeError, ValueError) as exc:
            raise RequestFailedError(
                f"displacements are not convertible to "
                f"{np.dtype(DTYPE).name}: {exc}"
            ) from None
        if d_b.ndim != 2 or d_b.shape[1] != 3:
            raise RequestFailedError(
                f"displacements must have shape (n, 3), got {d_b.shape}"
            )
        return self.submit_solve(spec, d_b, timeout=timeout, refine=refine)

    def start(self) -> None:
        """Start the dispatcher (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._dispatcher.start()

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut the pipeline down.

        With ``drain=True`` (graceful) every already-accepted request
        is executed first; with ``drain=False`` queued requests fail
        with :class:`ServiceClosedError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            started = self._started
        if started:
            self._queue.put(_SENTINEL)
            self._dispatcher.join()
        # catch stragglers that raced the closed flag (and, for a
        # never-started service, everything staged in the queue)
        self._fail_queued(ServiceClosedError("service closed"))
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission internals
    # ------------------------------------------------------------------

    @staticmethod
    def _validate_rhs(spec: OperatorSpec, rhs) -> np.ndarray:
        """Reject malformed right-hand sides before they are enqueued."""
        try:
            rhs = np.asarray(rhs, dtype=DTYPE)
        except (TypeError, ValueError) as exc:
            raise RequestFailedError(
                f"rhs is not convertible to {np.dtype(DTYPE).name}: {exc}"
            ) from None
        if rhs.ndim not in (1, 2):
            raise RequestFailedError(f"rhs must be 1-D or 2-D, got {rhs.shape}")
        if rhs.shape[0] != spec.n:
            raise RequestFailedError(
                f"rhs has {rhs.shape[0]} rows, operator order is {spec.n}"
            )
        if rhs.size == 0:
            raise RequestFailedError(f"rhs is empty (shape {rhs.shape})")
        if not np.isfinite(rhs).all():
            bad = int(rhs.size - np.count_nonzero(np.isfinite(rhs)))
            raise RequestFailedError(
                f"rhs contains {bad} non-finite value(s) (NaN/Inf)"
            )
        return rhs

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        if timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        return time.monotonic() + timeout

    def _submit(self, req: Request) -> RequestHandle:
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            self.metrics.count("rejected_backlog")
            raise BacklogFullError(
                f"backlog full ({self.backlog} requests queued)"
            ) from None
        self.metrics.count("submitted")
        return req.handle

    def _fail_queued(self, exc: Exception) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                item.handle.set_exception(exc)
                self.metrics.count("failed")

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            flush_at = self._batcher.next_deadline()
            timeout = (
                None if flush_at is None else max(0.0, flush_at - time.monotonic())
            )
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            if item is _SENTINEL:
                self._shutdown_dispatch()
                return
            if item is not None:
                self._route(item)
            for batch in self._batcher.due():
                self._launch(batch)

    def _route(self, req: Request) -> None:
        if req.expired():
            self._expire(req)
            return
        if not req.batchable:
            self._launch([req])
            return
        batch = self._batcher.add(req.batch_key, req)
        if batch is not None:
            self._launch(batch)

    def _shutdown_dispatch(self) -> None:
        """Drain (or fail) everything accepted before the sentinel."""
        closed_exc = ServiceClosedError("service closed")
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                continue
            if self._drain_on_close:
                self._route(item)
            else:
                item.handle.set_exception(closed_exc)
                self.metrics.count("failed")
        for batch in self._batcher.flush_all():
            if self._drain_on_close:
                self._launch(batch)
            else:
                for req in batch:
                    req.handle.set_exception(closed_exc)
                    self.metrics.count("failed")

    def _launch(self, batch: list[Request]) -> None:
        self._executor.submit(self._execute_batch, batch)

    # ------------------------------------------------------------------
    # execution (worker threads)
    # ------------------------------------------------------------------

    def _worker_id(self) -> int:
        name = threading.current_thread().name
        try:
            return 1 + int(name.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _expire(self, req: Request) -> None:
        req.handle.set_exception(
            DeadlineExpiredError(f"request {req.handle.request_id} deadline passed")
        )
        self.metrics.count("expired")

    def _execute_batch(self, batch: list[Request]) -> None:
        live = []
        for req in batch:
            if req.expired():
                self._expire(req)
            else:
                live.append(req)
        if not live:
            return
        worker = self._worker_id()
        try:
            entry = self._acquire_entry(live[0].spec, worker)
            self._run_kind(live, entry, worker)
        except Exception as exc:  # typed service errors included
            for req in live:
                req.handle.set_exception(exc)
            self.metrics.count("failed", len(live))

    def _acquire_entry(self, spec: OperatorSpec, worker: int) -> CacheEntry:
        """Cache lookup guarded by the operator's circuit breaker, with
        retry-with-backoff around cache-miss factorizations."""
        fp = spec.fingerprint
        try:
            self.breaker.allow(fp)
        except CircuitOpenError:
            self.metrics.count("breaker_fast_fail")
            raise
        try:
            entry = self._acquire_with_retry(spec, worker)
        except Exception:
            if self.breaker.record_failure(fp):
                self.metrics.count("breaker_opened")
                self.metrics.record_event(
                    "BREAKER_OPEN", (spec.n,), self._now(), self._now(),
                    worker=worker,
                )
            raise
        self.breaker.record_success(fp)
        return entry

    def _acquire_with_retry(self, spec: OperatorSpec, worker: int) -> CacheEntry:
        attempts = self.build_retries + 1
        for attempt in range(attempts):
            t0 = self._now()
            try:
                entry, outcome = self.cache.acquire(spec)
            except Exception as exc:
                t1 = self._now()
                self.metrics.record_event(
                    "BUILD_FAILED", (spec.n, attempt + 1), t0, t1, worker=worker
                )
                if attempt + 1 >= attempts:
                    raise FactorizationFailedError(
                        spec.fingerprint, attempts, exc
                    ) from exc
                self.metrics.count("build_retries")
                time.sleep(
                    min(self.build_backoff * 2.0**attempt, 10 * self.build_backoff)
                )
                continue
            t1 = self._now()
            if outcome != "hit":
                self.metrics.record_event(
                    "BUILD" if outcome == "build" else "DISK_LOAD",
                    (spec.n,),
                    t0,
                    t1,
                    worker=worker,
                )
            return entry
        raise AssertionError("unreachable")

    def _condemn(self, entry: CacheEntry, kind: str) -> None:
        """A finite-input request produced non-finite numbers: the
        cached entry is corrupt.  Drop + quarantine it (next request
        rebuilds) and fail this one loudly — never serve the poison."""
        self.cache.invalidate(entry.fingerprint)
        self.metrics.count("corrupt_results")
        raise CorruptResultError(entry.fingerprint, kind)

    def _run_kind(self, live: list[Request], entry: CacheEntry, worker: int) -> None:
        from repro.core.solver import solve_cholesky
        from repro.linalg.matvec import refine_solve

        kind = live[0].kind
        t0 = self._now()
        if kind == "logdet":
            value = entry.logdet()
            if not np.isfinite(value):
                self._condemn(entry, kind)
            results = [value] * len(live)
            params: tuple[int, ...] = (len(live),)
        elif kind == "solve":
            if len(live) == 1:
                block = live[0].rhs
            else:
                block = np.stack([r.rhs for r in live], axis=1)
            if live[0].refine:
                x = refine_solve(entry.operator, entry.factor, block).x
            else:
                x = solve_cholesky(entry.factor, block)
            if not np.all(np.isfinite(x)):
                self._condemn(entry, kind)
            if len(live) == 1:
                results = [x]
            else:
                results = [np.ascontiguousarray(x[:, j]) for j in range(len(live))]
            ncols = 1 if block.ndim == 1 else block.shape[1]
            params = (len(live), ncols)
            self.metrics.record_batch(ncols)
        else:
            raise RequestFailedError(f"unknown request kind {kind!r}")
        t1 = self._now()
        self.metrics.record_event(
            kind.upper(), params, t0, t1, worker=worker
        )
        done_at = time.monotonic()
        for req, res in zip(live, results):
            req.handle.set_result(res)
            self.metrics.record_latency(kind, done_at - req.submitted_at)
        self.metrics.count("completed", len(live))
