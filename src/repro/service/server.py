"""The solve-serving front end: bounded queue, dispatcher, worker pool.

Request lifecycle::

    submit_*()  --put-->  bounded queue  --dispatcher-->  RequestBatcher
                               |                               |
                     BacklogFullError               coalesced batches
                     (queue full)                              |
                                                        worker pool
                                                 (cache acquire + blocked
                                                  solve / logdet, deadline
                                                  re-check, handle completion)

The dispatcher decouples request arrival from execution (the fan-both
asynchronous-factorization lesson applied to serving): clients never
block on BLAS, and concurrent single-RHS requests against one factor
coalesce into a single blocked multi-RHS triangular solve.

Overload control happens at the edge, in admission order:

1. **draining** — a draining service admits nothing new
   (:class:`ServiceDrainingError`) while completing accepted work;
2. **concurrency cap** — more than ``max_inflight`` admitted-but-
   incomplete requests sheds with :class:`ServiceOverloadedError`
   carrying a ``retry_after`` hint (estimated from observed service
   time and current occupancy), because work queued beyond the cap
   would mostly expire waiting;
3. **queue bound** — a full backlog rejects *synchronously* with
   :class:`BacklogFullError` (same ``retry_after`` hint).

Deadlines propagate through *every* stage rather than being checked
once: expired requests are shed at dispatch, pruned out of the
batcher's coalescing window, re-checked at execution start, re-checked
after a (possibly slow) cache-miss factorization, and the build-retry
loop gives up rather than sleep past the batch's deadline — so work
whose deadline has passed is never executed, and the deadline-slack
histogram's ``late`` count stays zero.  Retries are additionally
metered by a per-operator :class:`~repro.service.breaker.RetryBudget`
so a steadily failing build cannot be amplified by the retry loop.
"""

from __future__ import annotations

import itertools
import queue
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.config import DTYPE
from repro.service.batching import RequestBatcher
from repro.service.breaker import CircuitBreaker, RetryBudget
from repro.service.cache import CacheEntry, OperatorCache
from repro.service.errors import (
    BacklogFullError,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExpiredError,
    FactorizationFailedError,
    RequestFailedError,
    ServiceClosedError,
    ServiceDrainingError,
    ServiceOverloadedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.spec import OperatorSpec

__all__ = ["Request", "RequestHandle", "SolveService"]

_SENTINEL = object()
_request_ids = itertools.count(1)


class RequestHandle:
    """Client-side handle for one submitted request.

    ``result()`` blocks until the service completes the request and
    either returns the payload (solution array, logdet float) or
    raises the typed service error recorded for it.
    """

    def __init__(self, request_id: int, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind
        self._done = threading.Event()
        self._result = None
        self._exception: BaseException | None = None

    def set_result(self, value) -> None:
        self._result = value
        self._done.set()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} still pending")
        return self._exception

    def result(self, timeout: float | None = None):
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"RequestHandle(#{self.request_id}, {self.kind}, {state})"


@dataclass
class Request:
    """One unit of queued work (internal to the service)."""

    kind: str  # "solve" | "logdet"
    spec: OperatorSpec
    handle: RequestHandle
    rhs: np.ndarray | None = None
    refine: bool = False
    #: monotonic-clock absolute deadline (None = no deadline)
    deadline: float | None = None
    submitted_at: float = field(default_factory=time.monotonic)

    @property
    def batchable(self) -> bool:
        """Only single-column solves coalesce; everything else runs as
        its own (possibly already blocked) execution."""
        return self.kind == "solve" and self.rhs is not None and self.rhs.ndim == 1

    @property
    def batch_key(self) -> tuple:
        return (self.spec.fingerprint, self.kind, self.refine)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


class SolveService:
    """Batched, cached serving of solve/logdet requests on TLR factors.

    Parameters
    ----------
    cache:
        Operator cache (default: unbounded in-memory cache).  Its
        metrics mirror is re-pointed at this service's metrics.
    workers:
        Worker threads executing batches.  BLAS releases the GIL, so
        distinct operators genuinely overlap.
    backlog:
        Bound on queued-but-undispatched requests; submissions beyond
        it raise :class:`BacklogFullError` synchronously.
    max_batch / max_wait:
        Coalescing knobs (see :class:`RequestBatcher`).
    factor_workers:
        Worker threads for cache-miss factorizations: the parallel
        DAG engine executes the build's task graph with this many
        threads (``<= 0`` = one per core).  ``None`` leaves the
        cache's own setting untouched.
    factor_engine:
        Execution backend for those factorizations (``"threads"``,
        ``"mp"`` for the shared-memory process pool, or ``"serial"``).
        ``None`` leaves the cache's own setting untouched.
    build_retries:
        Re-attempts of a failed cache-miss factorization (with capped
        exponential backoff starting at ``build_backoff`` seconds).
        Exhausted retries complete the request with
        :class:`FactorizationFailedError`.
    breaker:
        Per-operator circuit breaker (default: a fresh
        :class:`~repro.service.breaker.CircuitBreaker` built from
        ``breaker_threshold`` / ``breaker_reset``).  An operator whose
        builds keep failing is shed at the edge with
        :class:`CircuitOpenError` instead of re-building every time;
        a half-open probe re-admits it once it recovers.
    max_inflight:
        Admission-control cap on admitted-but-incomplete requests
        (queued, batched, or executing).  Submissions beyond it shed
        with :class:`ServiceOverloadedError` carrying a ``retry_after``
        hint.  ``None`` (default) disables the cap — the backlog bound
        is then the only admission limit.
    retry_budget:
        Per-operator token bucket metering build *retries* (default: a
        fresh :class:`~repro.service.breaker.RetryBudget`).  Pass an
        explicit instance to tune capacity/refill, or construct one
        with ``capacity=float("inf")`` to restore unmetered retries.
    start:
        Start the dispatcher immediately.  Tests pass ``False`` to
        stage requests deterministically, then call :meth:`start`.
    """

    def __init__(
        self,
        cache: OperatorCache | None = None,
        workers: int = 2,
        backlog: int = 128,
        max_batch: int = 32,
        max_wait: float = 0.002,
        metrics: ServiceMetrics | None = None,
        factor_workers: int | None = None,
        factor_engine: str | None = None,
        build_retries: int = 1,
        build_backoff: float = 0.05,
        breaker: CircuitBreaker | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        max_inflight: int | None = None,
        retry_budget: RetryBudget | None = None,
        start: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        if build_retries < 0:
            raise ValueError(f"build_retries must be >= 0, got {build_retries}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 or None, got {max_inflight}"
            )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = cache if cache is not None else OperatorCache()
        self.cache.metrics = self.metrics
        if factor_workers is not None:
            self.cache.factor_workers = factor_workers
        if factor_engine is not None:
            self.cache.factor_engine = factor_engine
        self.build_retries = int(build_retries)
        self.build_backoff = float(build_backoff)
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                failure_threshold=breaker_threshold, reset_timeout=breaker_reset
            )
        )
        self.backlog = int(backlog)
        self.workers = int(workers)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        # Full-jitter backoff (AWS architecture blog's recommendation):
        # after a failover, N shards rebuilding the same hot operator
        # would otherwise sleep identical exponential pauses and re-hit
        # the compression pipeline in lockstep; drawing each pause
        # uniformly from [0, cap] decorrelates the herd.  OS-seeded:
        # determinism here would defeat the point.
        self._backoff_rng = random.Random()
        self._queue: queue.Queue = queue.Queue(maxsize=self.backlog)
        self._batcher = RequestBatcher(max_batch=max_batch, max_wait=max_wait)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tlr-serve"
        )
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._draining = False
        self._drain_on_close = True
        #: admitted-but-incomplete requests (queued + batched +
        #: executing); every completion path decrements via
        #: _complete/_fail, so this is the drain-progress gauge too
        self._inflight = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="tlr-serve-dispatch", daemon=True
        )
        if start:
            self.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def submit_solve(
        self,
        spec: OperatorSpec,
        rhs: np.ndarray,
        timeout: float | None = None,
        refine: bool = False,
    ) -> RequestHandle:
        """Queue ``A x = rhs`` against the operator described by ``spec``.

        A 1-D ``rhs`` returns a 1-D solution and may be coalesced with
        concurrent requests on the same operator; a 2-D ``rhs`` is
        already a blocked solve and runs as submitted.

        The RHS is validated *before* enqueue: unconvertible dtypes,
        wrong shapes and non-finite entries (NaN/Inf would poison a
        batched solve for every coalesced neighbor) are rejected
        synchronously with :class:`RequestFailedError`.
        """
        rhs = self._validate_rhs(spec, rhs)
        return self._submit(
            Request(
                kind="solve",
                spec=spec,
                handle=RequestHandle(next(_request_ids), "solve"),
                rhs=rhs.copy(),
                refine=refine,
                deadline=self._deadline(timeout),
            )
        )

    def submit_logdet(
        self, spec: OperatorSpec, timeout: float | None = None
    ) -> RequestHandle:
        """Queue a ``log det A`` request (memoized per cached factor)."""
        return self._submit(
            Request(
                kind="logdet",
                spec=spec,
                handle=RequestHandle(next(_request_ids), "logdet"),
                deadline=self._deadline(timeout),
            )
        )

    def submit_deformation(
        self,
        spec: OperatorSpec,
        boundary_displacements: np.ndarray,
        timeout: float | None = None,
        refine: bool = False,
    ) -> RequestHandle:
        """Queue an RBF mesh-deformation weights solve: ``A W = d_b``.

        ``boundary_displacements`` is the ``(n, 3)`` displacement field
        of the boundary nodes; the result is the ``(n, 3)`` interpolation
        weight matrix (one blocked 3-RHS solve).
        """
        try:
            d_b = np.asarray(boundary_displacements, dtype=DTYPE)
        except (TypeError, ValueError) as exc:
            raise RequestFailedError(
                f"displacements are not convertible to "
                f"{np.dtype(DTYPE).name}: {exc}"
            ) from None
        if d_b.ndim != 2 or d_b.shape[1] != 3:
            raise RequestFailedError(
                f"displacements must have shape (n, 3), got {d_b.shape}"
            )
        return self.submit_solve(spec, d_b, timeout=timeout, refine=refine)

    def start(self) -> None:
        """Start the dispatcher (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._dispatcher.start()

    def drain(self, timeout: float = 30.0) -> dict:
        """Gracefully drain for warm handoff; the service stays up.

        The drain protocol, in order:

        1. **stop admissions** — new submissions raise
           :class:`ServiceDrainingError` (in-flight work keeps its
           promises);
        2. **flush the pipeline** — wait (bounded by ``timeout``
           seconds) until every admitted request has completed: queue
           empty, batcher flushed by the live dispatcher, executors
           idle;
        3. **seal the cache** — persist every resident factor not yet
           on disk, so a successor process pointed at the same cache
           directory starts warm instead of re-factorizing.

        Returns a summary dict (``drained`` is False if ``timeout``
        expired with work still in flight — the remaining count is in
        ``inflight_remaining``).  Idempotent; call :meth:`close`
        afterwards to shut down, or nothing to hold for handoff.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            self._draining = True
        self.metrics.count("drains_started")
        t0 = time.monotonic()
        give_up = t0 + max(0.0, float(timeout))
        while True:
            with self._lock:
                inflight = self._inflight
            if inflight == 0 or time.monotonic() >= give_up:
                break
            time.sleep(0.005)
        sealed = self.cache.seal()
        self.metrics.count("cache_entries_sealed", sealed)
        summary = {
            "drained": inflight == 0,
            "inflight_remaining": inflight,
            "sealed_entries": sealed,
            "drain_seconds": time.monotonic() - t0,
            # protection state rides the handoff payload: the successor
            # imports it so open breakers stay open across the swap
            "handoff": self.export_handoff(),
        }
        if inflight == 0:
            self.metrics.count("drains_completed")
        return summary

    def resume(self) -> None:
        """Lift a drain: re-open admissions (handoff was aborted)."""
        with self._lock:
            self._draining = False

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Admitted-but-incomplete requests right now."""
        with self._lock:
            return self._inflight

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut the pipeline down.

        With ``drain=True`` (graceful) every already-accepted request
        is executed first; with ``drain=False`` queued requests fail
        with :class:`ServiceClosedError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            started = self._started
        if started:
            self._queue.put(_SENTINEL)
            self._dispatcher.join()
        # catch stragglers that raced the closed flag (and, for a
        # never-started service, everything staged in the queue)
        self._fail_queued(ServiceClosedError("service closed"))
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission internals
    # ------------------------------------------------------------------

    @staticmethod
    def _validate_rhs(spec: OperatorSpec, rhs) -> np.ndarray:
        """Reject malformed right-hand sides before they are enqueued."""
        try:
            rhs = np.asarray(rhs, dtype=DTYPE)
        except (TypeError, ValueError) as exc:
            raise RequestFailedError(
                f"rhs is not convertible to {np.dtype(DTYPE).name}: {exc}"
            ) from None
        if rhs.ndim not in (1, 2):
            raise RequestFailedError(f"rhs must be 1-D or 2-D, got {rhs.shape}")
        if rhs.shape[0] != spec.n:
            raise RequestFailedError(
                f"rhs has {rhs.shape[0]} rows, operator order is {spec.n}"
            )
        if rhs.size == 0:
            raise RequestFailedError(f"rhs is empty (shape {rhs.shape})")
        if not np.isfinite(rhs).all():
            bad = int(rhs.size - np.count_nonzero(np.isfinite(rhs)))
            raise RequestFailedError(
                f"rhs contains {bad} non-finite value(s) (NaN/Inf)"
            )
        return rhs

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        if timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        return time.monotonic() + timeout

    def _retry_after(self, kind: str) -> float:
        """Estimated seconds until capacity frees up (Retry-After hint).

        Occupancy model: the backlog ahead of a retrying client is
        ``inflight`` requests served by ``workers`` lanes at the
        observed mean service time (batching makes this pessimistic,
        which is the right bias for a shedding hint).
        """
        with self._lock:
            inflight = self._inflight
        mean = self.metrics.mean_latency(kind) or 0.05
        return max(0.05, mean * (inflight / max(self.workers, 1)))

    def _submit(self, req: Request) -> RequestHandle:
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._draining:
                self.metrics.count("rejected_draining")
                raise ServiceDrainingError(
                    "service is draining and admits no new work"
                )
            overloaded = (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            )
            if not overloaded:
                self._inflight += 1
        if overloaded:
            # retry_after reads metrics/lock — computed outside the lock
            self.metrics.count("shed_admission")
            raise ServiceOverloadedError(
                f"{self.max_inflight} requests already in flight "
                f"(max_inflight cap)",
                retry_after=self._retry_after(req.kind),
            )
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            with self._lock:
                self._inflight -= 1
            self.metrics.count("rejected_backlog")
            raise BacklogFullError(
                f"backlog full ({self.backlog} requests queued)",
                retry_after=self._retry_after(req.kind),
            ) from None
        self.metrics.count("submitted")
        return req.handle

    # ------------------------------------------------------------------
    # completion (the only paths that settle a handle)
    # ------------------------------------------------------------------

    def _complete(self, req: Request, value) -> None:
        req.handle.set_result(value)
        with self._lock:
            self._inflight -= 1
        if req.deadline is not None:
            self.metrics.record_slack(
                req.kind, req.deadline - time.monotonic()
            )

    def _fail(self, req: Request, exc: BaseException, counter: str = "failed") -> None:
        req.handle.set_exception(exc)
        with self._lock:
            self._inflight -= 1
        self.metrics.count(counter)

    def _fail_queued(self, exc: Exception) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                self._fail(item, exc)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            flush_at = self._batcher.next_deadline()
            timeout = (
                None if flush_at is None else max(0.0, flush_at - time.monotonic())
            )
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            if item is _SENTINEL:
                self._shutdown_dispatch()
                return
            if item is not None:
                self._route(item)
            # Deadline propagation into the coalescing window: requests
            # that expired while batched are shed here, before the
            # batch launches, so they neither execute nor hold the
            # size trigger back for live neighbors.
            now = time.monotonic()
            for req in self._batcher.prune(lambda r: r.expired(now)):
                self._expire(req, stage="batcher")
            for batch in self._batcher.due():
                self._launch(batch)

    def _route(self, req: Request) -> None:
        if req.expired():
            self._expire(req, stage="dispatch")
            return
        if not req.batchable:
            self._launch([req])
            return
        batch = self._batcher.add(req.batch_key, req)
        if batch is not None:
            self._launch(batch)

    def _shutdown_dispatch(self) -> None:
        """Drain (or fail) everything accepted before the sentinel."""
        closed_exc = ServiceClosedError("service closed")
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                continue
            if self._drain_on_close:
                self._route(item)
            else:
                self._fail(item, closed_exc)
        for batch in self._batcher.flush_all():
            if self._drain_on_close:
                self._launch(batch)
            else:
                for req in batch:
                    self._fail(req, closed_exc)

    def _launch(self, batch: list[Request]) -> None:
        self._executor.submit(self._execute_batch, batch)

    # ------------------------------------------------------------------
    # execution (worker threads)
    # ------------------------------------------------------------------

    def _worker_id(self) -> int:
        name = threading.current_thread().name
        try:
            return 1 + int(name.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _expire(self, req: Request, stage: str = "dispatch") -> None:
        """Shed one expired request, tagged with the pipeline stage
        that caught it (``shed_<stage>`` counter) — the shed-location
        histogram is how overload tests prove deadlines propagate
        instead of being checked once and discarded."""
        req.handle.set_exception(
            DeadlineExpiredError(f"request {req.handle.request_id} deadline passed")
        )
        with self._lock:
            self._inflight -= 1
        self.metrics.count("expired")
        self.metrics.count(f"shed_{stage}")

    def _execute_batch(self, batch: list[Request]) -> None:
        live = []
        for req in batch:
            if req.expired():
                self._expire(req, stage="execute")
            else:
                live.append(req)
        if not live:
            return
        worker = self._worker_id()
        deadlines = [r.deadline for r in live if r.deadline is not None]
        batch_deadline = min(deadlines) if deadlines else None
        try:
            entry = self._acquire_entry(live[0].spec, worker, batch_deadline)
        except DeadlineExpiredError:
            # the build-retry loop refused to sleep past the batch
            # deadline; whoever actually expired is shed as expired,
            # stragglers with slack left are failed (their budget was
            # consumed by the build attempt)
            for req in live:
                if req.expired():
                    self._expire(req, stage="build")
                else:
                    self._fail(
                        req,
                        DeadlineExpiredError(
                            "batch deadline passed during factorization"
                        ),
                    )
            return
        except Exception as exc:  # typed service errors included
            for req in live:
                self._fail(req, exc)
            return
        # a cache-miss factorization can take longer than any request
        # deadline: re-check before spending BLAS time on dead work
        still = []
        for req in live:
            if req.expired():
                self._expire(req, stage="post_build")
            else:
                still.append(req)
        if not still:
            return
        try:
            self._run_kind(still, entry, worker)
        except Exception as exc:
            for req in still:
                self._fail(req, exc)

    def _acquire_entry(
        self,
        spec: OperatorSpec,
        worker: int,
        deadline: float | None = None,
    ) -> CacheEntry:
        """Cache lookup guarded by the operator's circuit breaker, with
        retry-with-backoff around cache-miss factorizations."""
        fp = spec.fingerprint
        try:
            self.breaker.allow(fp)
        except CircuitOpenError:
            self.metrics.count("breaker_fast_fail")
            raise
        try:
            entry = self._acquire_with_retry(spec, worker, deadline)
        except DeadlineExpiredError:
            # not an operator failure — don't charge the breaker
            raise
        except Exception:
            if self.breaker.record_failure(fp):
                self.metrics.count("breaker_opened")
                self.metrics.record_event(
                    "BREAKER_OPEN", (spec.n,), self._now(), self._now(),
                    worker=worker,
                )
            raise
        self.breaker.record_success(fp)
        return entry

    def _acquire_with_retry(
        self,
        spec: OperatorSpec,
        worker: int,
        deadline: float | None = None,
    ) -> CacheEntry:
        attempts = self.build_retries + 1
        fp = spec.fingerprint
        for attempt in range(attempts):
            t0 = self._now()
            try:
                entry, outcome = self.cache.acquire(spec)
            except Exception as exc:
                t1 = self._now()
                self.metrics.record_event(
                    "BUILD_FAILED", (spec.n, attempt + 1), t0, t1, worker=worker
                )
                if attempt + 1 >= attempts:
                    raise FactorizationFailedError(
                        spec.fingerprint, attempts, exc
                    ) from exc
                pause = self._backoff_pause(attempt)
                if deadline is not None and (
                    time.monotonic() + pause >= deadline
                ):
                    # sleeping would carry the batch past its deadline:
                    # give up now instead of burning a doomed rebuild
                    self.metrics.count("shed_build")
                    raise DeadlineExpiredError(
                        f"build retry for operator {fp[:12]} would "
                        "overrun the batch deadline"
                    ) from exc
                if not self.retry_budget.try_spend(fp):
                    # the operator's retry budget is dry: surface the
                    # failure instead of amplifying the outage
                    self.metrics.count("retry_budget_exhausted")
                    raise FactorizationFailedError(
                        spec.fingerprint, attempt + 1, exc
                    ) from exc
                self.metrics.count("build_retries")
                time.sleep(pause)
                continue
            t1 = self._now()
            if outcome != "hit":
                self.metrics.record_event(
                    "BUILD" if outcome == "build" else "DISK_LOAD",
                    (spec.n,),
                    t0,
                    t1,
                    worker=worker,
                )
            return entry
        raise AssertionError("unreachable")

    def _backoff_pause(self, attempt: int) -> float:
        """Full-jitter pause before build retry ``attempt + 1``.

        Drawn uniformly from ``[0, cap]`` where ``cap`` is the capped
        exponential ``build_backoff * 2**attempt``: retrying shards
        spread across the whole window instead of synchronizing on the
        exponential's discrete steps (the post-failover thundering-herd
        pattern this exists to break).
        """
        cap = min(self.build_backoff * 2.0**attempt, 10 * self.build_backoff)
        return self._backoff_rng.uniform(0.0, cap)

    # ------------------------------------------------------------------
    # warm-handoff state transfer
    # ------------------------------------------------------------------

    def export_handoff(self) -> dict:
        """Portable protection state for a successor process.

        The warm-handoff payload: circuit-breaker states (open /
        half-open / failure counts, clock re-anchored on import) and
        retry-budget token levels.  The factors themselves hand off
        through the sealed disk cache (:meth:`OperatorCache.seal`);
        this is the part that lives only in memory — without it a
        respawned shard would re-probe known-bad operators at full
        rate until it relearned every open breaker the hard way.
        """
        return {
            "breaker": self.breaker.export_state(),
            "retry_budget": self.retry_budget.export_state(),
        }

    def import_handoff(self, payload: dict | None) -> dict:
        """Adopt a predecessor's :meth:`export_handoff` payload.

        Returns ``{"breaker_keys": ..., "retry_budget_keys": ...}``
        import counts (both 0 for an empty/None payload).
        """
        if not payload:
            return {"breaker_keys": 0, "retry_budget_keys": 0}
        breaker_keys = self.breaker.import_state(payload.get("breaker", {}))
        budget_keys = self.retry_budget.import_state(
            payload.get("retry_budget", {})
        )
        if breaker_keys:
            self.metrics.count("handoff_breaker_keys", breaker_keys)
        return {
            "breaker_keys": breaker_keys,
            "retry_budget_keys": budget_keys,
        }

    def _condemn(self, entry: CacheEntry, kind: str) -> None:
        """A finite-input request produced non-finite numbers: the
        cached entry is corrupt.  Drop + quarantine it (next request
        rebuilds) and fail this one loudly — never serve the poison."""
        self.cache.invalidate(entry.fingerprint)
        self.metrics.count("corrupt_results")
        raise CorruptResultError(entry.fingerprint, kind)

    def _run_kind(self, live: list[Request], entry: CacheEntry, worker: int) -> None:
        from repro.core.solver import solve_cholesky
        from repro.linalg.matvec import refine_solve

        kind = live[0].kind
        t0 = self._now()
        if kind == "logdet":
            value = entry.logdet()
            if not np.isfinite(value):
                self._condemn(entry, kind)
            results = [value] * len(live)
            params: tuple[int, ...] = (len(live),)
        elif kind == "solve":
            if len(live) == 1:
                block = live[0].rhs
            else:
                block = np.stack([r.rhs for r in live], axis=1)
            if live[0].refine:
                x = refine_solve(entry.operator, entry.factor, block).x
            else:
                x = solve_cholesky(entry.factor, block)
            if not np.all(np.isfinite(x)):
                self._condemn(entry, kind)
            if len(live) == 1:
                results = [x]
            else:
                results = [np.ascontiguousarray(x[:, j]) for j in range(len(live))]
            ncols = 1 if block.ndim == 1 else block.shape[1]
            params = (len(live), ncols)
            self.metrics.record_batch(ncols)
        else:
            raise RequestFailedError(f"unknown request kind {kind!r}")
        t1 = self._now()
        self.metrics.record_event(
            kind.upper(), params, t0, t1, worker=worker
        )
        done_at = time.monotonic()
        for req, res in zip(live, results):
            self._complete(req, res)
            self.metrics.record_latency(kind, done_at - req.submitted_at)
        self.metrics.count("completed", len(live))
