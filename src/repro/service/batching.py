"""Dynamic request batching (inference-server-style coalescing).

Single-RHS solve requests against the same cached factor are far
cheaper executed as one blocked multi-RHS triangular solve: the
Python tile loop and the per-tile skinny GEMMs are paid once per
*batch* instead of once per *request*.  The batcher groups pending
requests by an opaque batch key (the server uses
``(fingerprint, kind, ...)``) and releases a group when either

- it reaches ``max_batch`` requests (size trigger), or
- ``max_wait`` seconds have passed since the group's oldest request
  arrived (latency trigger).

The class is pure data-structure logic — no threads, injectable
clock — so the coalescing policy is deterministic and unit-testable;
the service's dispatcher thread supplies the timing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Hashable

from repro.utils.validation import check_positive

__all__ = ["RequestBatcher"]


class RequestBatcher:
    """Coalesce items into per-key batches under size/latency triggers."""

    def __init__(
        self,
        max_batch: int = 32,
        max_wait: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_positive("max_batch", max_batch)
        if max_wait < 0.0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._clock = clock
        #: key -> (arrival time of the oldest pending item, items)
        self._pending: dict[Hashable, tuple[float, list[Any]]] = {}

    def add(self, key: Hashable, item: Any) -> list[Any] | None:
        """Queue ``item`` under ``key``; return the batch if it filled.

        A ``max_batch`` of 1 degenerates to unbatched operation: every
        add returns immediately as its own batch.
        """
        first, items = self._pending.pop(key, (self._clock(), []))
        items.append(item)
        if len(items) >= self.max_batch:
            return items
        self._pending[key] = (first, items)
        return None

    def due(self) -> list[list[Any]]:
        """Pop every group whose latency window has expired."""
        now = self._clock()
        ready = [
            key
            for key, (first, _) in self._pending.items()
            if now - first >= self.max_wait
        ]
        return [self._pending.pop(key)[1] for key in ready]

    def prune(self, predicate: Callable[[Any], bool]) -> list[Any]:
        """Remove (and return) every pending item matching ``predicate``.

        Deadline propagation into the coalescing window: a request
        whose deadline expires *while batched* must be shed here, not
        carried into the batch and discovered dead at execution time —
        its presence would also hold the size trigger back for live
        requests.  Groups left empty are dropped; surviving groups
        keep their original arrival timestamp (the latency window is
        an oldest-item promise, not a per-item one).
        """
        removed: list[Any] = []
        for key in list(self._pending):
            first, items = self._pending[key]
            dead = [it for it in items if predicate(it)]
            if not dead:
                continue
            removed.extend(dead)
            live = [it for it in items if not predicate(it)]
            if live:
                self._pending[key] = (first, live)
            else:
                del self._pending[key]
        return removed

    def flush_all(self) -> list[list[Any]]:
        """Pop every pending group regardless of its window (shutdown)."""
        batches = [items for (_, items) in self._pending.values()]
        self._pending.clear()
        return batches

    def next_deadline(self) -> float | None:
        """Absolute clock time of the earliest pending flush, if any."""
        if not self._pending:
            return None
        return min(first for (first, _) in self._pending.values()) + self.max_wait

    @property
    def pending_count(self) -> int:
        return sum(len(items) for (_, items) in self._pending.values())

    def __len__(self) -> int:
        return len(self._pending)
