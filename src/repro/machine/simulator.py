"""Discrete-event simulator of distributed task-graph execution.

Simulates a PaRSEC-style run of a :class:`~repro.runtime.dag.TaskGraph`
over ``P`` processes: each process has ``cores_per_node`` workers and
one network injection link; tasks run where the *execution*
distribution maps their output tile (breaking owner-computes when an
execution distribution different from the data distribution is given,
Section VII-B); messages flow along dependency edges crossing
processes, deduplicated per (producer, destination) like PaRSEC's
broadcast collectives, and serialized on the sender's injection link.

The simulator is exact w.r.t. the model (no statistical shortcuts) and
is used for small/medium graphs; paper-scale estimates come from
:mod:`repro.machine.analytic`, which is validated against this
simulator at overlapping sizes (see tests).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.distribution.base import Distribution
from repro.machine.costmodel import CostModel
from repro.machine.models import MachineModel
from repro.runtime.dag import TaskGraph
from repro.runtime.task import Task

__all__ = ["DistributedSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run."""

    makespan: float
    n_tasks: int
    n_messages: int
    comm_bytes: float
    #: core-seconds of kernel execution per process
    busy_per_process: np.ndarray
    time_by_class: dict[str, float]
    writeback_bytes: float
    cores_per_node: int = 1
    events: list[tuple[str, tuple[int, ...], int, float, float]] = field(
        default_factory=list
    )

    @property
    def avg_utilization(self) -> float:
        """Mean core busy fraction over the makespan."""
        if self.makespan <= 0.0:
            return 0.0
        return float(
            self.busy_per_process.mean() / (self.makespan * self.cores_per_node)
        )


def _is_dense_kernel(
    task: Task, b: int, rank_of: Callable[[int, int], int]
) -> bool:
    """True for kernels operating on full dense tiles (POTRF and dense
    TRSM/SYRK/GEMM), which HiCMA-PaRSEC runs with nested parallelism."""
    if task.klass == "POTRF":
        return True
    if task.klass in ("TRSM", "SYRK"):
        m, k = task.params
        return rank_of(m, k) >= b
    m, n, k = task.params
    return rank_of(m, k) >= b and rank_of(n, k) >= b


def _task_duration(
    cm: CostModel, task: Task, b: int, rank_of: Callable[[int, int], int]
) -> float:
    if task.klass == "POTRF":
        return cm.potrf_time(b)
    if task.klass == "TRSM":
        m, k = task.params
        return cm.trsm_time(b, rank_of(m, k))
    if task.klass == "SYRK":
        m, k = task.params
        return cm.syrk_time(b, rank_of(m, k))
    if task.klass == "GEMM":
        m, n, k = task.params
        return cm.gemm_time(b, rank_of(m, k), rank_of(n, k), rank_of(m, n))
    raise ValueError(f"unknown task class {task.klass!r}")


class DistributedSimulator:
    """Event-driven simulation of one task graph on a machine model."""

    def __init__(
        self,
        machine: MachineModel,
        n_processes: int,
        cost_model: CostModel | None = None,
        record_events: bool = False,
        nested_parallelism: bool = True,
        cp_parallel_efficiency: float = 0.75,
    ) -> None:
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.machine = machine
        self.nproc = int(n_processes)
        self.cost = cost_model if cost_model is not None else CostModel(machine)
        self.record_events = record_events
        #: run dense tile kernels (POTRF and dense TRSM/SYRK/GEMM) over
        #: all the node's cores, as HiCMA-PaRSEC's nested parallelism
        #: does (optimization inherited from Cao et al. [10])
        self.nested_parallelism = nested_parallelism
        self.cp_parallel_efficiency = cp_parallel_efficiency

    # ------------------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        tile_size: int,
        rank_of: Callable[[int, int], int],
        data_dist: Distribution,
        exec_dist: Distribution | None = None,
    ) -> SimulationResult:
        """Simulate ``graph`` and return timing/communication metrics.

        Parameters
        ----------
        graph:
            The task graph (from :func:`repro.core.trimming.cholesky_tasks`
            + :func:`repro.runtime.dag.build_graph`).
        tile_size, rank_of:
            Tile edge and rank lookup (stored rank estimate per tile;
            0 = null, >= tile_size = dense).
        data_dist:
            Where tiles live (the user's distribution).
        exec_dist:
            Where tasks run (defaults to ``data_dist`` =
            owner-computes).
        """
        if data_dist.nproc != self.nproc:
            raise ValueError("data distribution nproc != simulator nproc")
        if exec_dist is not None and exec_dist.nproc != self.nproc:
            raise ValueError("exec distribution nproc != simulator nproc")
        xd = exec_dist if exec_dist is not None else data_dist
        cm = self.cost
        b = tile_size
        n = len(graph)
        cores = self.machine.cores_per_node

        # --- static task properties ---------------------------------
        proc_of = np.empty(n, dtype=np.int64)
        dur = np.empty(n, dtype=np.float64)
        need = np.ones(n, dtype=np.int64)  # cores required
        out_bytes = np.empty(n, dtype=np.float64)
        cp_speed = max(1.0, cores * self.cp_parallel_efficiency)
        for i, t in enumerate(graph.tasks):
            w = t.writes[0]
            proc_of[i] = xd.owner(*w)
            dur[i] = _task_duration(cm, t, b, rank_of)
            out_bytes[i] = cm.tile_bytes(b, rank_of(*w))
            if self.nested_parallelism and (
                _is_dense_kernel(t, b, rank_of) or dur[i] > 0.01
            ):
                # dense kernels and any sizeable kernel run with
                # nested parallelism over the node's cores ([10])
                dur[i] /= cp_speed
                need[i] = cores

        # --- initial data fetches ------------------------------------
        # A read with no earlier writer consumes the tile's initial
        # version, stored at its data owner; remote consumers fetch it.
        # Fetches can start at time 0 (the PTG is known up front) but
        # serialize on the owner's injection link.
        first_writer_seq: dict[tuple[int, int], int] = {}
        initial_fetch: dict[tuple[tuple[int, int], int], float] = {}
        link_free = np.zeros(self.nproc, dtype=np.float64)
        fetch_bytes = 0.0
        fetch_msgs = 0
        ready_floor = np.zeros(n, dtype=np.float64)
        for i, t in enumerate(graph.tasks):
            p = int(proc_of[i])
            for d in t.reads:
                if first_writer_seq.get(d, n + 1) < i:
                    continue  # produced earlier by another task
                owner = data_dist.owner(*d)
                if owner == p:
                    continue
                key = (d, p)
                if key not in initial_fetch:
                    size = cm.tile_bytes(b, rank_of(*d))
                    start = link_free[owner]
                    link_free[owner] = start + size / self.machine.network_bandwidth
                    initial_fetch[key] = (
                        start + cm.transfer_time(size)
                    )
                    fetch_bytes += size
                    fetch_msgs += 1
                ready_floor[i] = max(ready_floor[i], initial_fetch[key])
            for d in t.writes:
                first_writer_seq.setdefault(d, i)
        # Tiles written remotely also need their initial version there
        # (RW access); handled above since RW tiles appear in reads.

        # --- event loop ----------------------------------------------
        remaining = np.array([graph.in_degree(i) for i in range(n)], dtype=np.int64)
        data_ready = ready_floor  # max arrival over satisfied deps
        free_cores = np.full(self.nproc, cores, dtype=np.int64)
        ready_q: list[list] = [[] for _ in range(self.nproc)]  # per-proc heaps
        seq = itertools.count()
        events: list[tuple[float, int, int, int]] = []  # (time, seq, kind, task)
        _READY, _DONE = 0, 1

        sent: dict[tuple[int, int], float] = {}
        comm_bytes = fetch_bytes
        n_messages = fetch_msgs
        busy = np.zeros(self.nproc, dtype=np.float64)
        time_by_class: dict[str, float] = {}
        rec: list[tuple[str, tuple[int, ...], int, float, float]] = []

        for i in range(n):
            if remaining[i] == 0:
                heapq.heappush(events, (data_ready[i], next(seq), _READY, i))

        def try_start(p: int, now: float) -> None:
            # Pop ready tasks in priority order, skipping (and keeping)
            # tasks whose core requirement doesn't fit yet.
            skipped: list = []
            while free_cores[p] > 0 and ready_q[p]:
                entry = heapq.heappop(ready_q[p])
                i = entry[2]
                if need[i] > free_cores[p]:
                    skipped.append(entry)
                    continue
                free_cores[p] -= need[i]
                end = now + dur[i]
                busy[p] += dur[i] * need[i]
                t = graph.tasks[i]
                time_by_class[t.klass] = time_by_class.get(t.klass, 0.0) + dur[i]
                if self.record_events:
                    rec.append((t.klass, t.params, p, now, end))
                heapq.heappush(events, (end, next(seq), _DONE, i))
            for entry in skipped:
                heapq.heappush(ready_q[p], entry)

        makespan = 0.0
        n_done = 0
        while events:
            now, _, kind, i = heapq.heappop(events)
            p = int(proc_of[i])
            if kind == _READY:
                t = graph.tasks[i]
                heapq.heappush(ready_q[p], (-t.priority, next(seq), i))
                try_start(p, now)
                continue
            # task done
            n_done += 1
            makespan = max(makespan, now)
            free_cores[p] += need[i]
            for j in graph.successors.get(i, ()):
                q = int(proc_of[j])
                if q == p:
                    arrival = now
                else:
                    key = (i, q)
                    if key in sent:
                        arrival = sent[key]  # one message per (producer, dest)
                    else:
                        size = out_bytes[i]
                        start = max(now, link_free[p])
                        link_free[p] = start + size / self.machine.network_bandwidth
                        arrival = start + cm.transfer_time(size)
                        sent[key] = arrival
                        comm_bytes += size
                        n_messages += 1
                data_ready[j] = max(data_ready[j], arrival)
                remaining[j] -= 1
                if remaining[j] == 0:
                    heapq.heappush(
                        events, (data_ready[j], next(seq), _READY, j)
                    )
            try_start(p, now)

        if n_done != n:
            raise RuntimeError(f"simulated {n_done} of {n} tasks (deadlock?)")

        # --- write-back of remotely-executed tiles --------------------
        # Breaking owner-computes costs at most one extra transfer per
        # tile to return the final version to its data owner (overlapped
        # with computation; reported, not added to makespan).
        writeback = 0.0
        seen_wb: set[tuple[int, int]] = set()
        for i, t in enumerate(graph.tasks):
            w = t.writes[0]
            if w in seen_wb:
                continue
            seen_wb.add(w)
            if data_dist.owner(*w) != int(proc_of[i]):
                writeback += cm.tile_bytes(b, rank_of(*w))

        return SimulationResult(
            makespan=makespan,
            n_tasks=n,
            n_messages=n_messages,
            comm_bytes=comm_bytes,
            busy_per_process=busy,
            time_by_class=time_by_class,
            writeback_bytes=writeback,
            cores_per_node=cores,
            events=rec,
        )
