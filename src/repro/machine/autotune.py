"""Model-driven tile-size auto-tuning.

Section VIII-C: "Auto-tuning the tile size with a model is an
important aspect but beyond the scope of the paper."  With the
analytic performance model in hand, the tuning is a one-dimensional
search: evaluate the predicted time-to-solution over a geometric grid
of tile sizes around the paper's ``b = O(sqrt(N))`` anchor and refine
around the best point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.lorapo import FrameworkConfig
from repro.core.rank_model import SyntheticRankField
from repro.machine.analytic import AnalyticModel
from repro.machine.models import MachineModel

__all__ = ["tune_tile_size", "TuningResult"]


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    best_tile_size: int
    best_time: float
    #: every evaluated (tile_size, predicted_seconds) pair
    evaluations: list[tuple[int, float]]


def tune_tile_size(
    machine: MachineModel,
    n_nodes: int,
    config: FrameworkConfig,
    n: int,
    shape_parameter: float,
    accuracy: float,
    candidates: list[int] | None = None,
    refine: bool = True,
    pair_budget: int = 2_000_000,
) -> TuningResult:
    """Pick the tile size minimizing the model's time-to-solution.

    Parameters
    ----------
    candidates:
        Explicit tile sizes to evaluate; default is a geometric grid
        (x2 steps) spanning 1/8x .. 8x of the ``sqrt(N)`` anchor.
    refine:
        After the coarse sweep, evaluate the two midpoints around the
        winner (golden-section-flavoured single refinement).
    """
    if candidates is None:
        anchor = max(256, int(2440 * math.sqrt(n / 2.99e6)))
        candidates = sorted(
            {
                max(128, int(anchor * 2.0**e))
                for e in (-3, -2, -1, 0, 1, 2, 3)
            }
        )

    def predict(b: int) -> float:
        field = SyntheticRankField.from_parameters(
            n, b, shape_parameter=shape_parameter, accuracy=accuracy
        )
        model = AnalyticModel(
            machine, n_nodes, config, pair_budget=pair_budget
        )
        return model.factorization_time(field).makespan

    evals: list[tuple[int, float]] = [(b, predict(b)) for b in candidates]
    evals.sort()
    best_b, best_t = min(evals, key=lambda e: e[1])

    if refine and len(evals) >= 3:
        idx = [b for b, _ in evals].index(best_b)
        neighbours = []
        if idx > 0:
            neighbours.append(int(math.sqrt(evals[idx - 1][0] * best_b)))
        if idx < len(evals) - 1:
            neighbours.append(int(math.sqrt(best_b * evals[idx + 1][0])))
        for b in neighbours:
            if all(b != e[0] for e in evals):
                t = predict(b)
                evals.append((b, t))
                if t < best_t:
                    best_b, best_t = b, t
        evals.sort()

    return TuningResult(best_tile_size=best_b, best_time=best_t, evaluations=evals)
