"""Closed-form at-scale performance model.

For paper-scale problems (NT ~ 10^4 tiles, up to 2048 nodes) per-task
event simulation is intractable, but the quantities that determine the
makespan are computable directly from the symbolic structure:

* ``T_cp`` — the critical path: the sequential POTRF → first-TRSM →
  first-SYRK chain per panel (Section IV-B), including the network
  hops between panel owners; the band distribution removes the
  POTRF→TRSM hop (Section VII-A).  Critical-path kernels exploit
  PaRSEC's nested parallelism over the node's cores.
* ``T_work`` — the busiest process's kernel time divided by its cores,
  computed exactly (or panel-sampled at extreme scale) from the rank
  field and the *execution* distribution — this is where the diamond
  distribution's balance shows up (Section VII-B).
* ``T_comm`` — the busiest process's communication time from received
  bytes and message counts; DAG trimming removes the broadcasts and
  control messages of null tiles (Section VI).

``makespan = max(T_cp, T_work, T_comm)`` — each component a lower
bound, their maximum the model's estimate.  The model is validated
against the exact discrete-event simulator at overlapping scales (see
``tests/machine/test_analytic_vs_des.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.lorapo import FrameworkConfig
from repro.core.rank_model import SyntheticRankField, analyze_mask_fast
from repro.machine.costmodel import CostModel
from repro.machine.models import MachineModel

__all__ = ["AnalyticModel", "AnalyticResult"]

#: Cap on exact per-panel GEMM aggregation; beyond it panels are
#: strided-sampled and contributions rescaled.
_PAIR_BUDGET = 20_000_000

#: Kernels whose single-core time exceeds this run with nested
#: parallelism over the node's cores (HiCMA-PaRSEC inherits this for
#: its large kernels from Cao et al. [10]).
NESTED_THRESHOLD_S = 0.01


@dataclass
class AnalyticResult:
    """Makespan estimate and its components (seconds)."""

    makespan: float
    #: the paper's *optimistic* roofline (Sec. VIII-G): the sequential
    #: POTRF/TRSM/SYRK kernel chain, no communication
    t_critical_path: float
    #: the dependency-chain time actually limiting progress: the
    #: optimistic chain plus network hops plus the serialized SYRK
    #: accumulation into each diagonal tile (RW chains)
    t_cp_effective: float
    t_work: float
    t_comm: float
    n_tasks: int
    n_null_tasks: int
    comm_bytes: float
    total_kernel_seconds: float
    initial_density: float
    final_density: float

    @property
    def cp_efficiency(self) -> float:
        """Critical-path roofline efficiency (Fig. 13): the optimistic
        bound over the achieved time-to-solution."""
        if self.makespan <= 0.0:
            return 1.0
        return self.t_critical_path / self.makespan


class AnalyticModel:
    """Performance model for one (machine, nodes, framework) setup."""

    def __init__(
        self,
        machine: MachineModel,
        n_nodes: int,
        config: FrameworkConfig,
        cp_parallel_efficiency: float = 0.75,
        pair_budget: int = _PAIR_BUDGET,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if pair_budget < 1:
            raise ValueError(f"pair_budget must be >= 1, got {pair_budget}")
        self.pair_budget = int(pair_budget)
        self.machine = machine
        self.nproc = int(n_nodes)  # one process per node (paper setup)
        self.config = config
        self.cost = CostModel(machine)
        #: nested-parallelism efficiency of critical-path kernels
        self.cp_parallel_efficiency = cp_parallel_efficiency
        self.data_dist = config.data_distribution(self.nproc)
        self.exec_dist = (
            config.exec_distribution(self.nproc)
            if config.exec_distribution is not None
            else self.data_dist
        )

    # ------------------------------------------------------------------

    def factorization_time(self, field: SyntheticRankField) -> AnalyticResult:
        """Estimate the TLR Cholesky time-to-solution for a rank field.

        The estimate is the Graham-style composition
        ``T = T_cp + T_work + T_comm``: in practice the off-critical-
        path work and communication of a panel overlap the critical
        path of *later* panels only partially, and the additive bound
        tracks measured TLR Cholesky behaviour much better than the
        pure max (the paper's Fig. 13 reports 75.4% critical-path
        efficiency — i.e. a 25% additive contribution — for the best
        configuration).
        """
        nt = field.nt
        b = field.tile_size
        cm = self.cost
        m = self.machine
        trim = self.config.trim

        mask = field.initial_mask()
        fast = analyze_mask_fast(mask)
        final = fast["final_mask"]
        rank_d = np.minimum(field.rank_by_distance[:nt], b)

        # Null-tile semantics (FrameworkConfig.null_rank_floor): the
        # rank a symbolically-null tile is *processed at*.  0 = true
        # null (kernel no-op, control message); > 0 = Lorapo-style
        # fixed-rank processing of every tile.
        floor = self.config.null_rank_floor
        if floor == "mean":
            # the mean rank over ALL off-diagonal tiles (null tiles
            # count as rank 0): the average tile Lorapo stores and
            # processes in place of a true null
            tiles_per_d = (nt - np.arange(1, nt)).astype(np.float64)
            wsum = float(tiles_per_d.sum())
            floor = (
                float(
                    (
                        field.density_by_distance[1:nt]
                        * rank_d[1:nt]
                        * tiles_per_d
                    ).sum()
                    / wsum
                )
                if wsum > 0
                else 1.0
            )
            floor = max(1.0, floor)
        floor = 0.0 if floor is None else float(floor)

        # --- critical path -------------------------------------------
        sub_rank = int(rank_d[1]) if nt > 1 else b
        cp_speed = max(1.0, m.cores_per_node * self.cp_parallel_efficiency)
        t_panel = (
            cm.potrf_time(b)
            + cm.trsm_time(b, sub_rank)
            + cm.syrk_time(b, sub_rank)
        ) / cp_speed
        # Column-broadcast participants: with trimming only processes
        # owning non-null panel tiles join; otherwise the full column
        # process group.  The tree depth delays the critical TRSM.
        col_group = max(
            1, len(self.exec_dist.column_group(0, min(nt, 4 * self.nproc)))
        )
        mean_col_nnz = float(fast["nnz_col"][: max(nt - 1, 1)].mean()) if nt > 1 else 0.0
        n_bcast = col_group if (not trim or floor > 0) else min(
            col_group, max(1.0, mean_col_nnz * col_group / max(nt, 1) + 1.0)
        )
        # The critical TRSM owner sits, in expectation, halfway down
        # the binomial broadcast tree.
        depth = max(1, math.ceil(math.log2(n_bcast + 1) / 2.0))
        band = _has_band(self.exec_dist)
        # POTRF -> first TRSM: local under the band mapping, else the
        # dense diagonal tile crosses the network via the broadcast.
        hop_potrf = 0.0 if band else depth * cm.transfer_time(cm.tile_bytes(b, b))
        # TRSM -> next panel's SYRK: one transfer of the subdiagonal.
        hop_trsm = cm.transfer_time(cm.tile_bytes(b, sub_rank))
        # The paper's optimistic roofline: kernels only.
        t_cp_optimistic = nt * t_panel
        # SYRK accumulation chains: every update into (m, m) holds an
        # RW dependency on the diagonal tile, so the n contributions
        # serialize; they pipeline over the panels between the first
        # contribution and POTRF(m), and whatever does not fit extends
        # the effective critical path (accumulated below, then used in
        # the makespan).
        diag_chain = np.zeros(nt)  # serialized SYRK seconds into (m, m)
        first_contrib = np.full(nt, nt, dtype=np.int64)

        # --- per-process kernel work and communication ----------------
        work = np.zeros(self.nproc)  # seconds of kernel time per process
        recv = np.zeros(self.nproc)  # bytes received per process
        msgs = np.zeros(self.nproc)  # messages received per process

        dense_tile_bytes = cm.tile_bytes(b, b)
        n_tasks = nt  # POTRFs
        n_null = 0

        # Task space: symbolically non-zero tiles when trimmed; every
        # tile otherwise.
        if trim:
            total_pairs = int(fast["n_gemm_col"].sum())
        else:
            total_pairs = sum(
                (nt - 1 - k) * (nt - 2 - k) // 2 for k in range(nt - 1)
            )
        # Panel-strided sampling beyond the pair budget; cap the stride
        # so at least ~16 panels are sampled (panel sizes vary
        # quadratically with k, so too few samples would bias the
        # estimate toward the large early panels).
        stride = max(1, math.ceil(total_pairs / self.pair_budget))
        stride = min(stride, max(1, nt // 16))

        for k in range(nt - 1):
            occ = final[k + 1 :, k]
            if trim:
                rows = np.nonzero(occ)[0] + (k + 1)
                # fill-in tiles may sit beyond the profile's null
                # cutoff; they are non-null, so floor their rank at 2
                r_rows = np.maximum(
                    field.rank_lookup(rows, np.full_like(rows, k)), 2
                )
            else:
                rows = np.arange(k + 1, nt)
                looked = np.maximum(
                    field.rank_lookup(rows, np.full_like(rows, k)), 2
                )
                r_rows = np.where(occ, looked, floor)
                n_null += int(2 * np.count_nonzero(r_rows == 0))
            if len(rows) == 0:
                continue

            # TRSM / SYRK tasks of panel k.
            trsm_owners = _owners(self.exec_dist, rows, np.full_like(rows, k))
            syrk_owners = _owners(self.exec_dist, rows, rows)
            syrk_times = cm.syrk_time_vec(b, r_rows)
            np.add.at(work, trsm_owners, cm.trsm_time_vec(b, r_rows))
            np.add.at(work, syrk_owners, syrk_times)
            n_tasks += 2 * len(rows) + len(rows) * (len(rows) - 1) // 2
            # Diagonal accumulation chains (real contributions only).
            # Sizeable SYRKs run with nested parallelism ([10]), so
            # the serialized chain advances at the parallel rate.
            live = r_rows > 0
            chain_t = np.where(
                syrk_times > NESTED_THRESHOLD_S,
                syrk_times / cp_speed,
                syrk_times,
            )
            np.add.at(diag_chain, rows[live], chain_t[live])
            np.minimum.at(first_contrib, rows[live], k)

            # POTRF(k) broadcast of the dense diagonal tile.
            dests = np.unique(trsm_owners[r_rows > 0] if trim else trsm_owners)
            dests = dests[dests != self.exec_dist.owner(k, k)]
            np.add.at(recv, dests, dense_tile_bytes)
            np.add.at(msgs, dests, 1.0)

            # GEMM tasks (panel-sampled beyond the pair budget).
            if len(rows) > 1 and (k % stride == 0):
                scale = float(stride)
                ii, jj = np.triu_indices(len(rows), k=1)  # ii < jj
                gm = rows[jj]  # target (m, n) with m > n
                gn = rows[ii]
                ka = r_rows[jj]
                kb = r_rows[ii]
                kc = np.where(
                    final[gm, gn],
                    np.maximum(field.rank_lookup(gm, gn), 2),
                    floor if floor > 0 else 1.0,
                )
                towners = _owners(self.exec_dist, gm, gn)
                tt = cm.gemm_time_vec(b, ka, kb, kc)
                np.add.at(work, towners, tt * scale)
                if not trim and floor == 0.0:
                    n_null += int(np.count_nonzero((ka == 0) | (kb == 0)) * scale)
                # Operand tiles (m,k) and (n,k) reach each distinct
                # consumer process once (PaRSEC dedups per dest).
                for op_rows, op_ranks in ((gm, ka), (gn, kb)):
                    key = op_rows.astype(np.int64) * self.nproc + towners
                    uniq, first = np.unique(key, return_index=True)
                    ob = cm.tile_bytes_vec(b, op_ranks[first])
                    dest = (uniq % self.nproc).astype(np.int64)
                    np.add.at(recv, dest, ob * scale)
                    np.add.at(msgs, dest, 1.0 * scale)

        # Remapped execution: off-band tiles fetched/written back at
        # most twice (Section VII-B); spread uniformly.
        if self.exec_dist is not self.data_dist:
            moved = 0.0
            for d in range(2, nt):
                moved += (
                    2
                    * cm.tile_bytes(b, int(rank_d[d]))
                    * (nt - d)
                    * float(field.density_by_distance[d])
                )
            recv += moved / self.nproc
            msgs += (2 * nt) / self.nproc

        # Effective critical path: per panel, the larger of the panel
        # kernel chain (+hops) and the portion of the diagonal SYRK
        # chain that its pipelining span cannot hide.
        span = np.maximum(np.arange(nt) - first_contrib, 1)
        increments = np.where(first_contrib < nt, diag_chain / span, 0.0)
        per_panel = np.maximum(t_panel + hop_potrf + hop_trsm, increments)
        per_panel[0] = t_panel  # first panel has no incoming hops
        t_cp_effective = float(per_panel.sum())

        # PTG discovery: every process walks the task index space
        # (startup enumeration + successor iteration), a per-process
        # cost independent of the process count — the overhead whose
        # removal makes trimming pay off more as everything else
        # strong-scales (Fig. 6).
        t_discovery = n_tasks * m.predicate_overhead / m.cores_per_node

        t_work = (
            float(work.max()) / m.cores_per_node + t_discovery
            if self.nproc
            else t_discovery
        )
        t_comm = float(
            np.max(
                1.5 * recv / m.network_bandwidth
                + msgs * (m.network_latency + m.message_overhead)
            )
        )

        makespan = t_cp_effective + t_work + t_comm
        return AnalyticResult(
            makespan=makespan,
            t_critical_path=t_cp_optimistic,
            t_cp_effective=t_cp_effective,
            t_work=t_work,
            t_comm=t_comm,
            n_tasks=int(n_tasks),
            n_null_tasks=int(n_null),
            comm_bytes=float(recv.sum()),
            total_kernel_seconds=float(work.sum()),
            initial_density=float(fast["initial_density"]),
            final_density=float(fast["final_density"]),
        )

    # ------------------------------------------------------------------

    def generation_time(self, field: SyntheticRankField) -> float:
        """Dense generation of all lower-triangle tiles (parallel)."""
        nt = field.nt
        n_tiles = nt * (nt + 1) // 2
        per_tile = self.cost.generation_time(field.tile_size)
        return n_tiles * per_tile / (self.nproc * self.machine.cores_per_node)

    def compression_time(self, field: SyntheticRankField) -> float:
        """Randomized compression of all off-diagonal tiles (parallel)
        — the post-optimization bottleneck of Fig. 11.  The sketch
        rank follows the field's near-diagonal rank (plus
        oversampling); every tile pays it, null tiles included — one
        must compress a tile to discover it vanishes."""
        nt = field.nt
        n_tiles = nt * (nt - 1) // 2
        sketch_rank = int(max(field.rank_by_distance[1 : max(2, nt)].max(), 32))
        per_tile = self.cost.compression_time(field.tile_size, sketch_rank)
        return n_tiles * per_tile / (self.nproc * self.machine.cores_per_node)

    def trimming_analysis_time(self, field: SyntheticRankField) -> float:
        """Cost of Algorithm 1 itself (Fig. 6 right): O(d^2 NT^3)
        index operations at memory speed, distributed over processes."""
        nt = field.nt
        d = field.initial_density()
        ops = max(nt * nt, (d * nt) ** 2 * nt)
        return 8.0 * ops / self.machine.core_mem_bandwidth / self.nproc


def _owners(dist, m_arr: np.ndarray, k_arr: np.ndarray) -> np.ndarray:
    """Vectorized owner lookup."""
    return np.asarray(dist.owner_vec(m_arr, k_arr), dtype=np.int64)


def _has_band(dist) -> bool:
    """True if the execution mapping pins the subdiagonal to the
    diagonal owner (the band property of Fig. 3c)."""
    try:
        return all(dist.owner(k + 1, k) == dist.owner(k, k) for k in range(8))
    except IndexError:
        return False
