"""Machine models and distributed-execution simulation.

Two simulators share the same machine/cost models:

* :mod:`repro.machine.simulator` — an exact discrete-event simulator
  for small/medium task graphs (validates scheduling and distribution
  effects task by task);
* :mod:`repro.machine.analytic` — a closed-form performance model for
  paper-scale problems (NT ~ 10^4, thousands of nodes), combining the
  critical-path bound, per-process work/communication maxima and
  runtime overheads.
"""

from repro.machine.models import FUGAKU, SHAHEEN_II, MachineModel
from repro.machine.costmodel import CostModel
from repro.machine.simulator import DistributedSimulator, SimulationResult
from repro.machine.analytic import AnalyticModel, AnalyticResult
from repro.machine.autotune import TuningResult, tune_tile_size

__all__ = [
    "tune_tile_size",
    "TuningResult",
    "MachineModel",
    "SHAHEEN_II",
    "FUGAKU",
    "CostModel",
    "DistributedSimulator",
    "SimulationResult",
    "AnalyticModel",
    "AnalyticResult",
]
