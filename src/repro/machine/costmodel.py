"""Task-duration and message-cost model.

Task durations follow a per-task roofline: a kernel with ``f`` flops
touching ``v`` bytes runs at ``min(gemm_rate, AI * mem_bandwidth)``
with arithmetic intensity ``AI = f / v``, plus the runtime's per-task
management overhead.  This automatically penalizes the skinny TLR
kernels (low AI) relative to dense tile kernels — the granularity
effect Section V highlights — without hand-tuned per-kernel
efficiencies.

Message costs are ``latency + bytes / bandwidth`` plus a per-message
runtime overhead; broadcasts use a binomial tree, so their cost grows
with ``log2`` of the participant count — which is why reducing the
column-broadcast participant set (band distribution, trimming) pays
off at scale (Section VII-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.linalg import flops as fl
from repro.machine.models import MachineModel

__all__ = ["CostModel"]

_ITEM = 8  # bytes per float64


@dataclass(frozen=True)
class CostModel:
    """Maps (kernel, tile size, ranks) to seconds, and bytes to seconds.

    ``compression`` mirrors the library's build-time method knob
    (``"svd"`` or ``"rand"``): it selects which flop formula prices
    tile compression and GEMM rank rounding, so the simulator and the
    scheduler cost randomized builds the way the kernels actually run
    them.
    """

    machine: MachineModel
    compression: str = "svd"

    def __post_init__(self) -> None:
        if self.compression not in ("svd", "rand"):
            raise ValueError(
                f"compression must be 'svd' or 'rand', "
                f"got {self.compression!r}"
            )

    @property
    def randomized(self) -> bool:
        return self.compression == "rand"

    # ------------------------------------------------------------------
    # kernel timing
    # ------------------------------------------------------------------

    def _exec_seconds(
        self, flops: float, touched_bytes: float, efficiency: float = 1.0
    ) -> float:
        if flops <= 0.0:
            return self.machine.task_overhead
        m = self.machine
        ai = flops / max(touched_bytes, 1.0)
        rate = min(m.core_gemm_flops, ai * m.core_mem_bandwidth) * efficiency
        return m.task_overhead + flops / rate

    def kernel_seconds(self, flops: float) -> float:
        """Compute-bound floor estimate for one kernel of ``flops``.

        Used by the stall watchdog to scale its timeout: a kernel this
        model predicts will run for seconds must not be declared
        stalled on a timeout tuned for millisecond tiles.  The roofline
        memory term is deliberately ignored — it would only *lengthen*
        the estimate, and the watchdog already multiplies by a generous
        safety factor, so the flop term alone sets the scale.
        """
        m = self.machine
        rate = m.core_gemm_flops * m.tlr_kernel_efficiency
        return m.task_overhead + max(float(flops), 0.0) / rate

    def potrf_time(self, b: int) -> float:
        return self._exec_seconds(fl.potrf_flops(b), _ITEM * b * b)

    def trsm_time(self, b: int, rank: int) -> float:
        """rank 0 = null no-op; rank >= b = dense operand."""
        if rank <= 0:
            return self.machine.task_overhead
        if rank >= b:
            return self._exec_seconds(fl.trsm_dense_flops(b), _ITEM * 2 * b * b)
        return self._exec_seconds(
            fl.trsm_tlr_flops(b, rank),
            _ITEM * (b * b + 2 * b * rank),
            self.machine.tlr_kernel_efficiency,
        )

    def syrk_time(self, b: int, rank: int) -> float:
        if rank <= 0:
            return self.machine.task_overhead
        if rank >= b:
            return self._exec_seconds(fl.syrk_dense_flops(b), _ITEM * 2 * b * b)
        return self._exec_seconds(
            fl.syrk_tlr_flops(b, rank),
            _ITEM * (b * b + 2 * b * rank),
            self.machine.tlr_kernel_efficiency,
        )

    def gemm_time(self, b: int, ka: int, kb: int, kc: int) -> float:
        if ka <= 0 or kb <= 0:
            return self.machine.task_overhead
        if ka >= b and kb >= b:
            return self._exec_seconds(fl.gemm_dense_flops(b), _ITEM * 3 * b * b)
        kc = max(1, kc)
        touched = _ITEM * 2 * b * (ka + kb + 2 * kc)
        gemm_flops = (
            fl.gemm_tlr_flops_rand if self.randomized else fl.gemm_tlr_flops
        )
        return self._exec_seconds(
            gemm_flops(b, ka, kb, kc),
            touched,
            self.machine.tlr_kernel_efficiency,
        )

    def compression_time(self, b: int, rank: int | None = None) -> float:
        """Compression of one dense tile (Fig. 11's dominant part).

        Under ``compression="svd"``: rank-revealing QR to ``rank`` when
        given, full SVD otherwise.  Under ``"rand"``: the adaptive
        range-finder priced by the detected rank (falling back to the
        full-SVD count when no rank is known — the adaptive sampler
        cannot be priced without one).
        """
        if self.randomized and rank is not None:
            return self._exec_seconds(
                fl.randomized_compression_flops(b, rank), _ITEM * 3 * b * b
            )
        return self._exec_seconds(
            fl.compression_flops(b, rank), _ITEM * 3 * b * b
        )

    def generation_time(self, b: int) -> float:
        """Dense generation of one RBF tile: ~c flops per entry,
        memory-bound (exp + distance per entry)."""
        return self._exec_seconds(20.0 * b * b, _ITEM * 2 * b * b)

    # ------------------------------------------------------------------
    # message timing
    # ------------------------------------------------------------------

    def tile_bytes(self, b: int, rank: int) -> float:
        """Wire size of a tile: dense ``b^2``, low-rank ``2 b k``,
        null tiles cost only a control header."""
        if rank <= 0:
            return 128.0  # dependency-release control message
        if rank >= b:
            return float(_ITEM * b * b)
        return float(_ITEM * 2 * b * rank)

    def transfer_time(self, nbytes: float) -> float:
        m = self.machine
        return m.message_overhead + m.network_latency + nbytes / m.network_bandwidth

    def broadcast_time(self, nbytes: float, n_dest: int) -> float:
        """Binomial-tree broadcast to ``n_dest`` remote participants."""
        if n_dest <= 0:
            return 0.0
        depth = math.ceil(math.log2(n_dest + 1))
        return depth * self.transfer_time(nbytes)

    # ------------------------------------------------------------------
    # vectorized helpers (analytic model)
    # ------------------------------------------------------------------

    def trsm_time_vec(self, b: int, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`trsm_time` over a rank array."""
        ranks = np.asarray(ranks, dtype=np.float64)
        dense = ranks >= b
        f = np.where(dense, fl.trsm_dense_flops(b), b * b * np.maximum(ranks, 0.0))
        v = _ITEM * np.where(dense, 2.0 * b * b, b * b + 2.0 * b * ranks)
        return self._exec_seconds_vec(f, v, ranks > 0, dense)

    def syrk_time_vec(self, b: int, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.float64)
        dense = ranks >= b
        f = np.where(
            dense,
            fl.syrk_dense_flops(b),
            4.0 * b * ranks**2 + 2.0 * b * b * ranks,
        )
        v = _ITEM * np.where(dense, 2.0 * b * b, b * b + 2.0 * b * ranks)
        return self._exec_seconds_vec(f, v, ranks > 0, dense)

    def gemm_time_vec(
        self, b: int, ka: np.ndarray, kb: np.ndarray, kc: np.ndarray
    ) -> np.ndarray:
        ka = np.asarray(ka, dtype=np.float64)
        kb = np.asarray(kb, dtype=np.float64)
        kc = np.maximum(np.asarray(kc, dtype=np.float64), 1.0)
        kp = np.minimum(ka, kb)
        big = kc + kp
        if self.randomized:
            # vectorized gemm_tlr_flops_rand (p = detected rank + 8)
            p = kc + 8.0
            tlr_f = (
                4.0 * b * ka * kb
                + 6.0 * b * big * p
                + 26.0 * b * p**2
                + 2.0 * b * p * kc
            )
        else:
            tlr_f = (
                4.0 * b * ka * kb
                + 4.0 * b * big**2
                + 22.0 * big**3
                + 4.0 * b * big * kc
            )
        dense = (ka >= b) & (kb >= b)
        f = np.where(dense, fl.gemm_dense_flops(b), tlr_f)
        v = _ITEM * np.where(dense, 3.0 * b * b, 2.0 * b * (ka + kb + 2.0 * kc))
        return self._exec_seconds_vec(f, v, (ka > 0) & (kb > 0), dense)

    def _exec_seconds_vec(
        self,
        flops: np.ndarray,
        touched: np.ndarray,
        active: np.ndarray,
        dense: np.ndarray,
    ) -> np.ndarray:
        m = self.machine
        ai = flops / np.maximum(touched, 1.0)
        rate = np.minimum(m.core_gemm_flops, ai * m.core_mem_bandwidth)
        rate = rate * np.where(dense, 1.0, m.tlr_kernel_efficiency)
        out = m.task_overhead + np.where(active, flops / np.maximum(rate, 1.0), 0.0)
        return out

    def tile_bytes_vec(self, b: int, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.float64)
        return np.where(
            ranks <= 0,
            128.0,
            np.where(ranks >= b, float(_ITEM * b * b), _ITEM * 2.0 * b * ranks),
        )
