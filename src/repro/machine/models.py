"""Hardware models of the paper's two evaluation platforms.

Section VIII-A:

* **Shaheen II** — Cray XC40; 2 x 16-core Intel Haswell @ 2.3 GHz and
  128 GB DDR4 per node; Aries interconnect.
* **Fugaku** — 48-core Fujitsu A64FX @ 2.2 GHz with 32 GB HBM2 per
  node; Tofu-D interconnect.

Rates are *effective* double-precision rates for large dense GEMM
(peak x a realistic efficiency), not vendor peaks; what matters for
the reproduced figures is the ratio between compute, memory and
network speeds, which these numbers preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "SHAHEEN_II", "FUGAKU"]


@dataclass(frozen=True)
class MachineModel:
    """Per-node hardware description used by the cost model."""

    name: str
    #: cores per node (one MPI process per node, PaRSEC threads inside)
    cores_per_node: int
    #: effective dense-GEMM rate per core [flop/s]
    core_gemm_flops: float
    #: per-core sustained memory bandwidth [byte/s] — bounds the rate
    #: of low-arithmetic-intensity TLR kernels via a roofline
    core_mem_bandwidth: float
    #: network injection bandwidth per node [byte/s]
    network_bandwidth: float
    #: point-to-point network latency [s]
    network_latency: float
    #: runtime (PaRSEC) per-task management overhead [s]
    task_overhead: float
    #: per-message runtime/communication-engine overhead [s]
    message_overhead: float
    #: PTG execution-space predicate evaluation [s/index]: every
    #: process enumerates the task index space during discovery and
    #: successor iteration, REGARDLESS of how many processes share the
    #: work — the per-process cost DAG trimming removes (Section VI)
    predicate_overhead: float = 1.0e-7
    #: efficiency of low-rank kernels relative to the roofline: TLR
    #: TRSM/SYRK/GEMM are dominated by skinny QR/SVD and small-core
    #: GEMMs that run far below dgemm rates (the low arithmetic
    #: intensity Section V highlights; HiCMA reports similar ratios)
    tlr_kernel_efficiency: float = 0.30

    @property
    def node_gemm_flops(self) -> float:
        return self.cores_per_node * self.core_gemm_flops


#: Cray XC40: Haswell 2.3 GHz, 16 DP flops/cycle -> 36.8 Gflop/s peak
#: per core; ~80% dgemm efficiency. DDR4: ~120 GB/s per node.
#: Aries: ~8 GB/s injection, ~1.5 us latency.
SHAHEEN_II = MachineModel(
    name="Shaheen II",
    cores_per_node=32,
    core_gemm_flops=29.0e9,
    core_mem_bandwidth=120.0e9 / 32,
    network_bandwidth=8.0e9,
    network_latency=1.5e-6,
    task_overhead=4.0e-6,
    message_overhead=1.0e-6,
)

#: A64FX: 2.2 GHz, SVE 512-bit -> 70.4 Gflop/s peak per core; ~75%
#: dgemm efficiency. HBM2: 1 TB/s per node. Tofu-D: ~6.8 GB/s
#: injection, ~1 us latency. More, slower cores than Shaheen; much
#: higher memory bandwidth (TLR kernels run relatively faster, dense
#: kernels relatively slower per core).
FUGAKU = MachineModel(
    name="Fugaku",
    cores_per_node=48,
    core_gemm_flops=52.0e9,
    core_mem_bandwidth=1.0e12 / 48,
    network_bandwidth=6.8e9,
    network_latency=1.0e-6,
    task_overhead=5.0e-6,
    message_overhead=1.2e-6,
)
