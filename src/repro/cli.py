"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version and available machine models / configurations.
``factorize``
    Real-numerics TLR Cholesky on a synthetic virus workload; prints
    density, rank statistics, task counts and the factorization
    residual.
``simulate``
    At-scale performance estimation (the analytic model) for a chosen
    machine, node count and framework configuration.
``deform``
    End-to-end RBF mesh deformation demo.
``serve``
    In-process demo of the batched, cached solve-serving subsystem
    (:mod:`repro.service`); prints cache/batch/latency metrics.
``bench-serve``
    Serving-path throughput benchmark: batched vs one-at-a-time
    request handling, cold vs warm cache latency.
``serve-fleet``
    Sharded serving-fleet demo (:class:`repro.service.FleetService`):
    consistent-hash routing over supervised shard processes, with
    optional mid-run chaos (``--kill-shard``) to demonstrate failover
    replay and warm respawn.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Data-sparse TLR Cholesky (HiCMA-PaRSEC reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and model inventory")

    f = sub.add_parser("factorize", help="real-numerics TLR Cholesky demo")
    f.add_argument("--viruses", type=int, default=4)
    f.add_argument("--points-per-virus", type=int, default=400)
    f.add_argument("--tile-size", type=int, default=200)
    f.add_argument("--accuracy", type=float, default=1e-6)
    f.add_argument("--shape-multiplier", type=float, default=30.0,
                   help="shape parameter as a multiple of half min spacing")
    f.add_argument("--no-trim", action="store_true",
                   help="disable DAG trimming (Lorapo-style full DAG)")
    f.add_argument("--workers", type=int, default=None,
                   help="DAG worker threads (default $REPRO_WORKERS or "
                        "serial; 0 = one per core)")
    f.add_argument("--engine", type=str, default=None,
                   choices=["threads", "mp", "serial"],
                   help="execution backend: 'threads' (GIL-bound glue, "
                        "BLAS overlaps), 'mp' (shared-memory process "
                        "pool, true parallelism), 'serial' (default "
                        "$REPRO_ENGINE or threads); the factor is "
                        "bitwise identical on all backends")
    f.add_argument("--compression", type=str, default=None,
                   choices=["svd", "rand"],
                   help="tile compression method: 'svd' (exact truncated "
                        "SVD) or 'rand' (adaptive randomized range-finder, "
                        "deterministically seeded — bitwise identical "
                        "across engines); default $REPRO_COMPRESSION or "
                        "svd")
    f.add_argument("--storage-precision", type=str, default=None,
                   choices=["fp64", "mixed"],
                   help="tile storage precision: 'fp64' or 'mixed' (fp32 "
                        "for low-significance off-band low-rank tiles; "
                        "compute stays fp64); default "
                        "$REPRO_STORAGE_PRECISION or fp64")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--trace", type=str, default=None,
                   help="write a Chrome trace JSON of the execution "
                        "(one lane per worker)")
    f.add_argument("--inject-faults", type=str, default=None, metavar="SPEC",
                   help="deterministic fault plan, e.g. 'all:0.1' or "
                        "'GEMM:0.2,TRSM:delay:0.05' "
                        "(CLASS:RATE or CLASS:KIND:RATE, kinds: "
                        "transient/delay/corrupt/crash/bitflip; 'crash' "
                        "kills the process with exit 137, 'bitflip' "
                        "silently flips one bit of an operand tile)")
    f.add_argument("--max-retries", type=int, default=3,
                   help="per-task transient-failure retries with tile "
                        "rollback (0 = fail fast with TaskFailedError)")
    f.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the injected fault plan")
    f.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                   help="periodically checkpoint the completed-task "
                        "frontier + dirty tiles into DIR (atomic, "
                        "checksummed); a killed run resumes with --resume")
    f.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                   help="checkpoint cadence in retired tasks "
                        "(default: 25)")
    f.add_argument("--checkpoint-every-seconds", type=float, default=None,
                   metavar="S",
                   help="additional wall-clock checkpoint cadence")
    f.add_argument("--resume", action="store_true",
                   help="resume from the newest valid checkpoint in "
                        "--checkpoint-dir (fresh run if none); the "
                        "resumed factor is bitwise identical to an "
                        "uninterrupted run")
    f.add_argument("--verify-tiles", action="store_true",
                   help="verify per-tile BLAKE2b checksums before every "
                        "kernel and once at run end (also: "
                        "$REPRO_VERIFY_TILES=1)")
    f.add_argument("--save-factor", type=str, default=None, metavar="PATH",
                   help="save the computed factor as a checksummed .npz "
                        "(atomic write)")

    s = sub.add_parser("simulate", help="at-scale performance estimate")
    s.add_argument("--machine", choices=["shaheen", "fugaku"], default="shaheen")
    s.add_argument("--nodes", type=int, default=512)
    s.add_argument("--matrix-size", type=float, default=2.99e6)
    s.add_argument("--tile-size", type=int, default=0,
                   help="0 = the paper's sqrt(N) tuning rule")
    s.add_argument("--shape", type=float, default=3.7e-4)
    s.add_argument("--accuracy", type=float, default=1e-4)
    s.add_argument(
        "--config",
        choices=["lorapo", "trim", "band", "hicma"],
        default="hicma",
    )

    d = sub.add_parser("deform", help="RBF mesh deformation demo")
    d.add_argument("--points", type=int, default=1000)
    d.add_argument("--angle-degrees", type=float, default=5.0)
    d.add_argument("--accuracy", type=float, default=1e-6)

    t = sub.add_parser("tune", help="model-driven tile-size auto-tuning")
    t.add_argument("--machine", choices=["shaheen", "fugaku"], default="shaheen")
    t.add_argument("--nodes", type=int, default=64)
    t.add_argument("--matrix-size", type=float, default=2.99e6)
    t.add_argument("--shape", type=float, default=3.7e-4)
    t.add_argument("--accuracy", type=float, default=1e-4)

    sv = sub.add_parser(
        "serve", help="in-process solve-serving demo (repro.service)"
    )
    sv.add_argument("--viruses", type=int, default=2)
    sv.add_argument("--points-per-virus", type=int, default=200)
    sv.add_argument("--tile-size", type=int, default=100)
    sv.add_argument("--accuracy", type=float, default=1e-6)
    sv.add_argument("--operators", type=int, default=2,
                    help="number of distinct cached operators to serve")
    sv.add_argument("--requests", type=int, default=48,
                    help="total solve/logdet requests to fire")
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--factor-workers", type=int, default=None,
                    help="DAG worker threads for cache-miss "
                         "factorizations (0 = one per core)")
    sv.add_argument("--factor-engine", type=str, default=None,
                    choices=["threads", "mp", "serial"],
                    help="execution backend for cache-miss "
                         "factorizations (default $REPRO_ENGINE)")
    sv.add_argument("--backlog", type=int, default=256)
    sv.add_argument("--max-inflight", type=int, default=None,
                    help="admission-control cap on in-flight requests; "
                         "excess submissions shed with a Retry-After "
                         "hint (default: uncapped)")
    sv.add_argument("--request-timeout", type=float, default=None,
                    help="per-request deadline in seconds, propagated "
                         "through every pipeline stage (default: none)")
    sv.add_argument("--drain", action="store_true",
                    help="after serving, run the graceful drain "
                         "protocol (stop admissions, flush, seal the "
                         "cache for warm handoff) and print its summary")
    sv.add_argument("--max-batch", type=int, default=16)
    sv.add_argument("--max-wait", type=float, default=0.005,
                    help="batching window in seconds")
    sv.add_argument("--cache-budget-mb", type=float, default=None,
                    help="resident-bytes LRU budget (default: unbounded)")
    sv.add_argument("--cache-dir", type=str, default=None,
                    help="disk persistence directory for built factors")
    sv.add_argument("--compression", type=str, default=None,
                    choices=["svd", "rand"],
                    help="compression method for cache-miss operator "
                         "builds (part of the cache fingerprint)")
    sv.add_argument("--storage-precision", type=str, default=None,
                    choices=["fp64", "mixed"],
                    help="tile storage precision for cache-miss builds")
    sv.add_argument("--trace", type=str, default=None,
                    help="write a Chrome trace JSON of the serving run")
    sv.add_argument("--seed", type=int, default=0)

    fl = sub.add_parser(
        "serve-fleet", help="sharded serving-fleet demo (repro.service.fleet)"
    )
    fl.add_argument("--shards", type=int, default=2,
                    help="shard processes behind the front door")
    fl.add_argument("--replication", type=int, default=2,
                    help="preference-list length for hot operators "
                         "(primary + replicas; 1 disables replication)")
    fl.add_argument("--kill-shard", type=int, default=None, metavar="I",
                    help="chaos: SIGKILL shard I halfway through the "
                         "request stream and report the failover")
    fl.add_argument("--operators", type=int, default=3,
                    help="distinct operators routed across the fleet")
    fl.add_argument("--requests", type=int, default=48,
                    help="total solve/logdet requests to fire")
    fl.add_argument("--viruses", type=int, default=2)
    fl.add_argument("--points-per-virus", type=int, default=200)
    fl.add_argument("--tile-size", type=int, default=100)
    fl.add_argument("--accuracy", type=float, default=1e-6)
    fl.add_argument("--workers-per-shard", type=int, default=2)
    fl.add_argument("--cache-dir", type=str, default=None,
                    help="shared sealed-cache directory (the warm-handoff "
                         "medium; default: private temp dir)")
    fl.add_argument("--request-timeout", type=float, default=60.0,
                    help="per-request end-to-end deadline in seconds")
    fl.add_argument("--heartbeat-interval", type=float, default=0.1)
    fl.add_argument("--checkpoint-interval", type=float, default=2.0,
                    help="seconds between periodic cache seals in each "
                         "shard (bounds respawn-to-warm time)")
    fl.add_argument("--seed", type=int, default=0)

    bs = sub.add_parser(
        "bench-serve", help="serving-path throughput benchmark"
    )
    bs.add_argument("--requests", type=int, default=32)
    bs.add_argument("--repeats", type=int, default=3)
    bs.add_argument("--viruses", type=int, default=4)
    bs.add_argument("--points-per-virus", type=int, default=400)
    bs.add_argument("--tile-size", type=int, default=200)
    bs.add_argument("--accuracy", type=float, default=1e-6)
    bs.add_argument("--workers", type=int, default=None,
                    help="DAG worker threads for the cold build "
                         "(0 = one per core)")
    bs.add_argument("--json", type=str, default=None,
                    help="also write the result dict to this JSON file")
    return p


def _cmd_info() -> int:
    import repro
    from repro import FUGAKU, SHAHEEN_II

    print(f"repro {repro.__version__} — HiCMA-PaRSEC reproduction (IPDPS'22)")
    print("\nmachine models:")
    for m in (SHAHEEN_II, FUGAKU):
        print(
            f"  {m.name:12s} {m.cores_per_node} cores/node, "
            f"{m.core_gemm_flops/1e9:.0f} Gflop/s/core, "
            f"{m.network_bandwidth/1e9:.1f} GB/s network"
        )
    print("\nframework configurations: lorapo, trim, band, hicma")
    return 0


def _cmd_factorize(args) -> int:
    from repro import (
        RBFMatrixGenerator,
        TLRMatrix,
        min_spacing,
        tlr_cholesky,
        virus_population,
    )

    pts = virus_population(
        args.viruses, points_per_virus=args.points_per_virus, seed=args.seed
    )
    delta = 0.5 * min_spacing(pts) * args.shape_multiplier
    gen = RBFMatrixGenerator(
        pts, delta, tile_size=args.tile_size, nugget=100 * args.accuracy
    )
    a = TLRMatrix.compress(
        gen.tile,
        gen.n,
        args.tile_size,
        args.accuracy,
        compression=args.compression,
        storage=args.storage_precision,
        seed_root=args.seed,
    )
    stats = a.off_diagonal_rank_stats()
    print(f"N={gen.n}, NT={a.n_tiles}, density={a.density():.3f}, "
          f"ranks max/avg {stats['max']:.0f}/{stats['avg']:.1f}")
    if a.compression_stats is not None:
        cs = a.compression_stats.to_dict()
        print(f"compression: method={a.compression.method} "
              f"svd={cs['svd_tiles']} rand={cs['rand_tiles']} "
              f"probe-dense={cs['probe_dense']} "
              f"sampled-rank avg/max {cs['sampled_rank_avg']:.1f}/"
              f"{cs['sampled_rank_max']} fp32-tiles={cs['fp32_tiles']}")
    from repro.runtime.faults import (
        FaultInjector,
        FaultPlan,
        RetryPolicy,
        TaskFailedError,
    )
    from repro.runtime.parallel import resolve_workers

    injector = None
    retry = None
    if args.inject_faults:
        # hard_crash: an injected 'crash' takes the whole process down
        # with exit 137 (SIGKILL semantics) — the checkpoint/resume
        # path is exercised exactly as a real kill would.
        injector = FaultInjector(
            FaultPlan.parse(args.inject_faults, seed=args.fault_seed),
            hard_crash=True,
        )
        if args.max_retries > 0:
            retry = RetryPolicy(
                max_retries=args.max_retries, backoff_seconds=0.001
            )
    manager = None
    resume_from = None
    if args.checkpoint_dir:
        from repro.runtime.checkpoint import CheckpointManager, load_checkpoint

        manager = CheckpointManager(
            args.checkpoint_dir,
            every_tasks=args.checkpoint_every,
            every_seconds=args.checkpoint_every_seconds,
        )
        if args.resume:
            resume_from = load_checkpoint(args.checkpoint_dir)
            if resume_from is None:
                print("no usable checkpoint found; starting from scratch")
    elif args.resume:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    nworkers = resolve_workers(args.workers)
    try:
        result = tlr_cholesky(
            a,
            trim=not args.no_trim,
            workers=args.workers,
            fault_injector=injector,
            retry=retry,
            checkpoint=manager,
            resume_from=resume_from,
            verify_tiles=True if args.verify_tiles else None,
            engine=args.engine,
        )
    except TaskFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if injector is not None:
            print(f"faults injected: {dict(injector.counters)}", file=sys.stderr)
        return 1
    print(f"tasks: {len(result.graph)} {result.graph.task_counts()}")
    print(f"factorization: {result.elapsed:.3f} s "
          f"({'trimmed' if not args.no_trim else 'full DAG'}, "
          f"{nworkers} worker{'s' if nworkers != 1 else ''})")
    if injector is not None:
        print(f"faults injected: {injector.counters.get('total', 0)} "
              f"{dict(injector.counters)}")
        print(f"task retries: {result.retries} "
              f"(max {args.max_retries} per task)")
    if manager is not None:
        print(f"checkpoints: {result.checkpoints_written} written, "
              f"{result.resumed_tasks} tasks resumed, "
              f"{result.tiles_healed} tiles healed")
    print(f"residual: {result.residual(gen.dense()):.2e}")
    if args.save_factor:
        from repro.linalg.serialization import save_tlr

        save_tlr(result.factor, args.save_factor)
        print(f"factor written to {args.save_factor}")
    if args.trace:
        result.trace.save_chrome_trace(
            args.trace, process_name="repro.factorize", label_worker_lanes=True
        )
        print(f"trace written to {args.trace}")
    return 0


def _cmd_simulate(args) -> int:
    from repro import FUGAKU, SHAHEEN_II, AnalyticModel, SyntheticRankField
    from repro.core.hicma_parsec import BAND_ONLY, HICMA_PARSEC, TRIM_ONLY
    from repro.core.lorapo import LORAPO

    machine = SHAHEEN_II if args.machine == "shaheen" else FUGAKU
    config = {
        "lorapo": LORAPO,
        "trim": TRIM_ONLY,
        "band": BAND_ONLY,
        "hicma": HICMA_PARSEC,
    }[args.config]
    n = int(args.matrix_size)
    b = args.tile_size or max(256, int(2440 * np.sqrt(n / 2.99e6)))
    field = SyntheticRankField.from_parameters(
        n, b, shape_parameter=args.shape, accuracy=args.accuracy
    )
    r = AnalyticModel(machine, args.nodes, config).factorization_time(field)
    print(f"{config.name} on {machine.name}, {args.nodes} nodes")
    print(f"N={n/1e6:.2f}M, tile {b}, NT={field.nt}, "
          f"density {r.initial_density:.4f} -> {r.final_density:.4f}")
    print(f"time-to-solution : {r.makespan:10.2f} s")
    print(f"  critical path  : {r.t_critical_path:10.2f} s")
    print(f"  work           : {r.t_work:10.2f} s")
    print(f"  communication  : {r.t_comm:10.2f} s")
    print(f"tasks            : {r.n_tasks:,} ({r.n_null_tasks:,} null)")
    print(f"cp efficiency    : {r.cp_efficiency:.1%}")
    return 0


def _cmd_deform(args) -> int:
    from repro import RBFMeshDeformation, random_cloud, synthetic_virus
    from repro.apps import rigid_rotation

    boundary = synthetic_virus(n_points=args.points, seed=0)
    d_b = rigid_rotation(boundary, angle=np.deg2rad(args.angle_degrees))
    volume = random_cloud(300, extent=0.3, seed=1) - 0.15
    solver = RBFMeshDeformation(boundary, accuracy=args.accuracy)
    res = solver.deform(volume, d_b)
    print(f"boundary points   : {len(boundary)}")
    print(f"boundary error    : {res.boundary_error:.2e}")
    print(f"max volume motion : {np.abs(res.volume_displacements).max():.2e}")
    for k, v in res.timings.items():
        if isinstance(v, float):
            print(f"  {k:26s}: {v:.3f}")
    return 0


def _cmd_tune(args) -> int:
    from repro import FUGAKU, SHAHEEN_II
    from repro.core.hicma_parsec import HICMA_PARSEC
    from repro.machine.autotune import tune_tile_size

    machine = SHAHEEN_II if args.machine == "shaheen" else FUGAKU
    res = tune_tile_size(
        machine,
        args.nodes,
        HICMA_PARSEC,
        n=int(args.matrix_size),
        shape_parameter=args.shape,
        accuracy=args.accuracy,
    )
    print(f"tile-size tuning on {machine.name}, {args.nodes} nodes, "
          f"N={args.matrix_size/1e6:.2f}M")
    for b, t in res.evaluations:
        marker = "  <-- best" if b == res.best_tile_size else ""
        print(f"  b={b:6d}: {t:10.2f} s{marker}")
    return 0


def _cmd_serve(args) -> int:
    from repro.geometry import min_spacing, virus_population
    from repro.service import OperatorCache, OperatorSpec, SolveService

    budget = (
        int(args.cache_budget_mb * 1e6) if args.cache_budget_mb else None
    )
    cache = OperatorCache(byte_budget=budget, directory=args.cache_dir)
    specs = []
    for i in range(args.operators):
        pts = virus_population(
            args.viruses,
            points_per_virus=args.points_per_virus,
            cube_edge=1.7,
            seed=args.seed + i,
        )
        specs.append(
            OperatorSpec(
                points=pts,
                shape_parameter=0.5 * min_spacing(pts) * 40,
                tile_size=args.tile_size,
                accuracy=args.accuracy,
                nugget=1e-4,
                compression=args.compression,
                storage_precision=args.storage_precision,
                label=f"op-{i}",
            )
        )
    rng = np.random.default_rng(args.seed)
    from repro.service import ServiceError

    shed = 0
    drain_summary = None
    with SolveService(
        cache=cache,
        workers=args.workers,
        backlog=args.backlog,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        factor_workers=args.factor_workers,
        factor_engine=args.factor_engine,
        max_inflight=args.max_inflight,
    ) as svc:
        handles = []
        for i in range(args.requests):
            spec = specs[i % len(specs)]
            try:
                if i % 8 == 7:
                    handles.append(
                        svc.submit_logdet(spec, timeout=args.request_timeout)
                    )
                else:
                    handles.append(
                        svc.submit_solve(
                            spec,
                            rng.standard_normal(spec.n),
                            timeout=args.request_timeout,
                        )
                    )
            except ServiceError:
                shed += 1  # admission control: typed, synchronous
        for h in handles:
            try:
                h.result()
            except ServiceError:
                shed += 1  # expired in the pipeline: typed, async
        if args.drain:
            drain_summary = svc.drain()
        snapshot = svc.metrics.to_dict()
        if args.trace:
            names = {0: "dispatcher"}
            names.update(
                {1 + w: f"solve-worker-{w}" for w in range(args.workers)}
            )
            svc.metrics.save_chrome_trace(
                args.trace, process_name="repro.service", thread_names=names
            )
    print(f"served {args.requests} requests over {args.operators} operator(s), "
          f"{args.workers} worker(s)")
    c = snapshot["counters"]
    print(f"completed={c.get('completed', 0)} "
          f"builds={c.get('cache_builds', 0)} "
          f"hit-rate={snapshot['cache_hit_rate']:.2%} "
          f"resident={snapshot['bytes_resident']/1e6:.1f} MB")
    b = snapshot["batch"]
    print(f"batches: {b['count']} (mean size {b['mean']:.1f}, max {b['max']})")
    for kind, lat in sorted(snapshot["latency_seconds"].items()):
        print(f"latency[{kind}]: p50 {lat['p50']*1e3:.1f} ms, "
              f"p90 {lat['p90']*1e3:.1f} ms, p99 {lat['p99']*1e3:.1f} ms")
    if shed:
        print(f"shed/expired: {shed} "
              f"(admission={c.get('shed_admission', 0)}, "
              f"backlog={c.get('rejected_backlog', 0)}, "
              f"expired={c.get('expired', 0)})")
    if drain_summary is not None:
        print(f"drain: completed={drain_summary['drained']} "
              f"in {drain_summary['drain_seconds']*1e3:.0f} ms, "
              f"sealed {drain_summary['sealed_entries']} cache entries, "
              f"{drain_summary['inflight_remaining']} left in flight")
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _cmd_serve_fleet(args) -> int:
    from repro.geometry import min_spacing, virus_population
    from repro.service import FleetService, OperatorSpec, ServiceError

    specs = []
    for i in range(args.operators):
        pts = virus_population(
            args.viruses,
            points_per_virus=args.points_per_virus,
            cube_edge=1.7,
            seed=args.seed + i,
        )
        specs.append(
            OperatorSpec(
                points=pts,
                shape_parameter=0.5 * min_spacing(pts) * 40,
                tile_size=args.tile_size,
                accuracy=args.accuracy,
                nugget=1e-4,
                label=f"op-{i}",
            )
        )
    rng = np.random.default_rng(args.seed)
    shed = 0
    killed = None
    with FleetService(
        shards=args.shards,
        replication=args.replication,
        workers_per_shard=args.workers_per_shard,
        cache_dir=args.cache_dir,
        heartbeat_interval=args.heartbeat_interval,
        checkpoint_interval=args.checkpoint_interval,
    ) as fleet:
        print(f"fleet up: {len(fleet.live_shards())} shard(s) "
              f"{fleet.live_shards()}")
        handles = []
        for i in range(args.requests):
            spec = specs[i % len(specs)]
            try:
                if i % 8 == 7:
                    handles.append(
                        fleet.submit_logdet(spec, timeout=args.request_timeout)
                    )
                else:
                    handles.append(
                        fleet.submit_solve(
                            spec,
                            rng.standard_normal(spec.n),
                            timeout=args.request_timeout,
                        )
                    )
            except ServiceError:
                shed += 1
            if args.kill_shard is not None and i == args.requests // 2:
                try:
                    pid = fleet.kill_shard(args.kill_shard)
                    killed = (f"shard-{args.kill_shard}", pid)
                    print(f"chaos: SIGKILLed shard-{args.kill_shard} "
                          f"(pid {pid}) mid-stream")
                except ServiceError as exc:
                    print(f"chaos: {exc}", file=sys.stderr)
        failed = 0
        for h in handles:
            try:
                h.result()
            except ServiceError:
                failed += 1
        snapshot = fleet.metrics.to_dict()
        report = fleet.report()
        statuses = fleet.status()
    c = snapshot["counters"]
    print(f"served {args.requests} requests over {args.operators} operator(s), "
          f"{args.shards} shard(s), replication {args.replication}")
    print(f"completed={c.get('completed', 0)} failed={failed} shed={shed} "
          f"replayed={report['requests_replayed']} "
          f"stale={report['stale_results']}")
    for kind, lat in sorted(snapshot.get("latency_seconds", {}).items()):
        print(f"latency[{kind}]: p50 {lat['p50']*1e3:.1f} ms, "
              f"p99 {lat['p99']*1e3:.1f} ms")
    for s in statuses:
        print(f"  {s.name}: {s.state} epoch={s.epoch} "
              f"completed={s.completed} cache={s.cache_entries}")
    if killed is not None:
        print(f"failover: killed {killed[0]} (pid {killed[1]}); "
              f"respawns={report['supervisor']['respawns']}, "
              f"replayed={report['requests_replayed']}, "
              f"verified-identical={report['replay_verified_identical']}, "
              f"mismatches={report['replay_mismatch']}")
        if report["respawns"]:
            r = report["respawns"][-1]
            print(f"respawn: {r['shard']} back in "
                  f"{r['respawn_seconds']*1e3:.0f} ms with "
                  f"{r['warm_disk_entries']} warm disk entries")
    return 1 if (failed and killed is None) else 0


def _cmd_bench_serve(args) -> int:
    import json as _json

    from repro.service.bench import default_benchmark_spec, run_throughput_benchmark

    spec = default_benchmark_spec(
        viruses=args.viruses,
        points_per_virus=args.points_per_virus,
        tile_size=args.tile_size,
        accuracy=args.accuracy,
    )
    try:
        result = run_throughput_benchmark(
            spec=spec,
            requests=args.requests,
            repeats=args.repeats,
            factor_workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    w = result["workload"]
    print(f"serving benchmark: N={w['n']}, tile {w['tile_size']}, "
          f"{result['requests']} requests")
    print(f"cold latency : {result['cold_latency_seconds']*1e3:10.1f} ms "
          f"(build + solve)")
    print(f"warm latency : {result['warm_latency_seconds']*1e3:10.1f} ms "
          f"(cache hit, {result['cold_over_warm']:.0f}x faster)")
    print(f"sequential   : {result['sequential']['throughput_rps']:10.1f} req/s")
    print(f"batched      : {result['batched']['throughput_rps']:10.1f} req/s "
          f"(max batch {result['batched']['realized_max_batch']})")
    print(f"speedup      : {result['batched_speedup']:10.2f}x")
    print(f"residual     : {result['solve_residual']:10.2e}")
    if args.json:
        with open(args.json, "w") as f:
            _json.dump(result, f, indent=2, sort_keys=True)
        print(f"result written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "factorize":
        return _cmd_factorize(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "deform":
        return _cmd_deform(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-fleet":
        return _cmd_serve_fleet(args)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
