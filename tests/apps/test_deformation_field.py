"""Tests for boundary displacement scenarios."""

import numpy as np
import pytest

from repro.apps.deformation_field import (
    bending,
    radial_expansion,
    rigid_rotation,
    translation,
)
from repro.geometry import fibonacci_sphere


@pytest.fixture()
def sphere():
    return fibonacci_sphere(200, radius=1.0)


class TestRigidRotation:
    def test_preserves_distances(self, sphere):
        d = rigid_rotation(sphere, angle=0.3)
        moved = sphere + d
        c = sphere.mean(axis=0)
        assert np.allclose(
            np.linalg.norm(moved - c, axis=1),
            np.linalg.norm(sphere - c, axis=1),
            atol=1e-12,
        )

    def test_zero_angle_no_motion(self, sphere):
        assert np.allclose(rigid_rotation(sphere, 0.0), 0.0)

    def test_known_90_degrees(self):
        pts = np.array([[1.0, 0.0, 0.0]])
        d = rigid_rotation(pts, np.pi / 2, axis=[0, 0, 1], center=[0, 0, 0])
        assert np.allclose(pts + d, [[0.0, 1.0, 0.0]], atol=1e-12)

    def test_axis_points_fixed(self):
        pts = np.array([[0.0, 0.0, 2.0], [0.0, 0.0, -1.0]])
        d = rigid_rotation(pts, 1.0, axis=[0, 0, 1], center=[0, 0, 0])
        assert np.allclose(d, 0.0, atol=1e-12)

    def test_zero_axis_rejected(self, sphere):
        with pytest.raises(ValueError):
            rigid_rotation(sphere, 1.0, axis=[0, 0, 0])


class TestOthers:
    def test_translation_uniform(self, sphere):
        d = translation(sphere, [1.0, 2.0, 3.0])
        assert np.allclose(d, [1.0, 2.0, 3.0])

    def test_translation_bad_vector(self, sphere):
        with pytest.raises(ValueError):
            translation(sphere, [1.0, 2.0])

    def test_bending_quadratic(self):
        pts = np.zeros((3, 3))
        pts[:, 0] = [0.0, 0.5, 1.0]
        d = bending(pts, amplitude=2.0, axis=0, out_axis=2)
        assert d[0, 2] == 0.0
        assert d[1, 2] == pytest.approx(0.5)
        assert d[2, 2] == pytest.approx(2.0)
        assert np.allclose(d[:, :2], 0.0)

    def test_bending_same_axis_rejected(self, sphere):
        with pytest.raises(ValueError):
            bending(sphere, 1.0, axis=1, out_axis=1)

    def test_radial_expansion_scales(self, sphere):
        d = radial_expansion(sphere, factor=0.1)
        moved = sphere + d
        c = sphere.mean(axis=0)
        assert np.allclose(
            np.linalg.norm(moved - c, axis=1),
            1.1 * np.linalg.norm(sphere - c, axis=1),
            atol=1e-10,
        )
