"""Tests for the Gaussian log-likelihood application."""

import numpy as np
import pytest

from repro.apps.spatial_statistics import GaussianLogLikelihood
from repro.kernels.covariance import MaternKernel


@pytest.fixture(scope="module")
def sites(rng):
    return np.random.default_rng(11).random((400, 3))


class TestLogLikelihood:
    def test_matches_dense_reference(self, sites):
        """TLR likelihood == dense numpy likelihood within tolerance."""
        ell = 0.3
        nugget = 1e-2
        gl = GaussianLogLikelihood(
            sites, nu=0.5, accuracy=1e-10, tile_size=100, nugget=nugget
        )
        rng = np.random.default_rng(0)
        z = rng.standard_normal(len(sites))
        res = gl.evaluate(z, ell)

        d = np.linalg.norm(sites[:, None] - sites[None, :], axis=2)
        sigma = MaternKernel(nu=0.5).scaled(d, ell) + nugget * np.eye(len(sites))
        sign, ld = np.linalg.slogdet(sigma)
        quad = z @ np.linalg.solve(sigma, z)
        ref = -0.5 * (quad + ld + len(sites) * np.log(2 * np.pi))
        assert res.log_likelihood == pytest.approx(ref, rel=1e-6)
        assert res.logdet == pytest.approx(ld, rel=1e-6)
        assert res.quadratic_form == pytest.approx(quad, rel=1e-6)

    def test_likelihood_peaks_near_true_length_scale(self, sites):
        """Sampling z from Sigma(ell*) and scanning ell: the
        likelihood should prefer scales near ell* over far ones."""
        ell_true = 0.25
        d = np.linalg.norm(sites[:, None] - sites[None, :], axis=2)
        sigma = MaternKernel(nu=0.5).scaled(d, ell_true) + 1e-2 * np.eye(
            len(sites)
        )
        rng = np.random.default_rng(5)
        z = np.linalg.cholesky(sigma) @ rng.standard_normal(len(sites))
        gl = GaussianLogLikelihood(
            sites, nu=0.5, accuracy=1e-10, tile_size=100, nugget=1e-2
        )
        lls = {ell: gl.evaluate(z, ell).log_likelihood
               for ell in (0.05, 0.25, 1.5)}
        assert lls[0.25] > lls[0.05]
        assert lls[0.25] > lls[1.5]

    def test_input_validation(self, sites):
        gl = GaussianLogLikelihood(sites, tile_size=100)
        with pytest.raises(ValueError):
            gl.evaluate(np.zeros(3), 0.3)
        with pytest.raises(ValueError):
            gl.evaluate(np.zeros(len(sites)), -1.0)
        with pytest.raises(ValueError):
            GaussianLogLikelihood(np.zeros((4, 2)))

    def test_matern_smoothness_variants(self, sites):
        rng = np.random.default_rng(1)
        z = rng.standard_normal(len(sites))
        for nu in (0.5, 1.5):
            gl = GaussianLogLikelihood(
                sites, nu=nu, accuracy=1e-8, tile_size=100, nugget=1e-2
            )
            res = gl.evaluate(z, 0.2)
            assert np.isfinite(res.log_likelihood)
