"""Tests for mesh-quality metrics."""

import numpy as np
import pytest

from repro.apps.deformation_field import rigid_rotation, translation
from repro.apps.mesh_quality import cell_volumes, quality_report, tetrahedralize
from repro.geometry import random_cloud


@pytest.fixture(scope="module")
def cloud():
    return random_cloud(300, extent=1.0, seed=9)


class TestTetrahedralize:
    def test_simplices_shape(self, cloud):
        s = tetrahedralize(cloud)
        assert s.ndim == 2 and s.shape[1] == 4
        assert s.max() < len(cloud)

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            tetrahedralize(np.zeros((3, 3)))


class TestCellVolumes:
    def test_unit_tet(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
        )
        v = cell_volumes(pts, np.array([[0, 1, 2, 3]]))
        assert abs(v[0]) == pytest.approx(1.0 / 6.0)

    def test_total_volume_of_convex_hull(self, cloud):
        s = tetrahedralize(cloud)
        total = np.abs(cell_volumes(cloud, s)).sum()
        # convex hull of a dense cube sample is nearly the cube
        assert 0.8 < total <= 1.0001


class TestQualityReport:
    def test_translation_is_perfect(self, cloud):
        d = translation(cloud, [0.3, -0.1, 0.2])
        rep = quality_report(cloud, d)
        assert rep.valid
        assert rep.n_inverted == 0
        assert rep.min_volume_ratio == pytest.approx(1.0, abs=1e-9)
        assert rep.max_volume_ratio == pytest.approx(1.0, abs=1e-9)

    def test_rigid_rotation_preserves_volumes(self, cloud):
        d = rigid_rotation(cloud, angle=0.7)
        rep = quality_report(cloud, d)
        assert rep.valid
        assert rep.min_volume_ratio == pytest.approx(1.0, abs=1e-6)

    def test_folding_detected(self, cloud):
        """Reflecting half the domain through a plane folds cells."""
        d = np.zeros_like(cloud)
        sel = cloud[:, 0] > 0.5
        d[sel, 0] = 2 * (0.5 - cloud[sel, 0])  # mirror across x=0.5
        rep = quality_report(cloud, d)
        assert rep.n_inverted > 0
        assert not rep.valid

    def test_shape_mismatch_rejected(self, cloud):
        with pytest.raises(ValueError):
            quality_report(cloud, np.zeros((5, 3)))

    def test_rbf_deformation_produces_valid_mesh(self):
        """End-to-end: an RBF-interpolated small rotation must not
        fold the volume mesh — the application-level guarantee."""
        from repro.apps.mesh_deformation import RBFMeshDeformation
        from repro.geometry import synthetic_virus

        boundary = synthetic_virus(n_points=600, seed=1)
        vol = random_cloud(400, extent=0.4, seed=2) - 0.2
        vol = vol[np.linalg.norm(vol, axis=1) > 0.08]
        solver = RBFMeshDeformation(boundary, accuracy=1e-6, tile_size=150)
        d_b = rigid_rotation(boundary, angle=0.05)
        res = solver.deform(vol, d_b)
        rep = quality_report(vol, res.volume_displacements)
        assert rep.n_inverted == 0
