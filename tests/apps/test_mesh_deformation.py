"""Tests for the end-to-end RBF mesh-deformation application."""

import numpy as np
import pytest

from repro.apps.deformation_field import rigid_rotation, translation
from repro.apps.mesh_deformation import RBFMeshDeformation
from repro.geometry import fibonacci_sphere, synthetic_virus
from repro.kernels import dense_rbf_matrix


@pytest.fixture(scope="module")
def boundary():
    return synthetic_virus(n_points=900, seed=0)


@pytest.fixture(scope="module")
def solver(boundary):
    s = RBFMeshDeformation(boundary, accuracy=1e-6, tile_size=128)
    s.factorize()
    return s


class TestConstruction:
    def test_defaults(self, boundary):
        s = RBFMeshDeformation(boundary)
        assert s.n_boundary == len(boundary)
        assert s.shape_parameter > 0
        assert s.generator.tile_size >= 32

    def test_rejects_bad_points(self):
        with pytest.raises(ValueError):
            RBFMeshDeformation(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            RBFMeshDeformation(np.zeros((2, 3)))


class TestDeformation:
    def test_boundary_interpolation_accuracy(self, solver, boundary):
        """The field must reproduce prescribed boundary displacements
        to roughly the compression accuracy (the paper's premise that
        1e-4 'is sufficient to satisfy the displacement accuracy')."""
        d_b = rigid_rotation(boundary, angle=0.05)
        res = solver.deform(boundary[:50], d_b)
        assert res.boundary_error < 1e-3

    def test_translation_reproduced_near_boundary(self, solver, boundary):
        d_b = translation(boundary, [1e-3, 0.0, 0.0])
        res = solver.deform(boundary[:20] * 1.001, d_b)
        # points a hair off the surface move almost exactly with it
        assert np.allclose(res.volume_displacements[:, 0], 1e-3, atol=2e-4)
        assert np.allclose(res.volume_displacements[:, 1:], 0.0, atol=2e-4)

    def test_far_field_decays(self, solver, boundary):
        """Gaussian RBF: displacement decays away from the boundary."""
        d_b = rigid_rotation(boundary, angle=0.05)
        far = np.array([[10.0, 10.0, 10.0]])
        res = solver.deform(far, d_b)
        assert np.abs(res.volume_displacements).max() < 1e-6

    def test_matches_dense_rbf_solution(self, boundary):
        """TLR pipeline vs a plain dense solve of the same system."""
        s = RBFMeshDeformation(boundary, accuracy=1e-8, tile_size=128, nugget=1e-6)
        d_b = rigid_rotation(boundary, angle=0.02)
        alpha_tlr = s.solve_coefficients(d_b)
        a = dense_rbf_matrix(s.points, s.shape_parameter, nugget=1e-6)
        alpha_ref = np.linalg.solve(a, d_b[s._perm])
        # compare the resulting fields at probe points, not raw
        # coefficients (the system is ill-conditioned)
        probes = boundary[::90] * 1.02
        f_tlr = s.interpolate(probes, alpha_tlr)
        f_ref = s.interpolate(probes, alpha_ref)
        assert np.allclose(f_tlr, f_ref, atol=1e-5)

    def test_timings_recorded(self, solver, boundary):
        d_b = translation(boundary, [1e-3, 0, 0])
        res = solver.deform(boundary[:10], d_b)
        for key in ("factorization", "solve", "interpolation"):
            assert key in res.timings

    def test_wrong_displacement_shape_raises(self, solver):
        with pytest.raises(ValueError):
            solver.solve_coefficients(np.zeros((3, 3)))

    def test_trim_and_notrim_agree(self, boundary):
        d_b = rigid_rotation(boundary, angle=0.03)
        kw = dict(accuracy=1e-7, tile_size=128)
        a = RBFMeshDeformation(boundary, trim=True, **kw).deform(boundary[:5], d_b)
        b = RBFMeshDeformation(boundary, trim=False, **kw).deform(boundary[:5], d_b)
        assert np.allclose(
            a.volume_displacements, b.volume_displacements, atol=1e-10
        )
