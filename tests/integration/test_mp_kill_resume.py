"""Kill/resume robustness with the process-pool engine, as real processes.

Same contract as ``test_kill_resume`` but with kernels running in
forked worker processes against the shared-memory tile arena: a
``crash`` fault hard-kills a worker with ``os._exit(137)``, the
coordinator unlinks every arena segment and mirrors the exit code, and
a fresh process resumes from the checkpoint directory to a factor
**bitwise identical** to an uninterrupted run.  The /dev/shm listing
before and after proves the crash path leaks no shared-memory
segments.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.linalg.serialization import load_tlr

BASE = [
    sys.executable, "-m", "repro", "factorize",
    "--viruses", "2", "--points-per-virus", "150", "--tile-size", "50",
    "--engine", "mp", "--workers", "4",
]


def run_cli(extra, cwd):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        BASE + extra, cwd=cwd, env=env, capture_output=True, text=True,
        timeout=300,
    )


@pytest.mark.timeout(600)
class TestMpKillResume:
    def test_killed_mp_run_resumes_bitwise_identical(self, tmp_path):
        ck = tmp_path / "ck"
        clean_path = tmp_path / "clean.npz"
        resumed_path = tmp_path / "resumed.npz"
        shm_before = set(os.listdir("/dev/shm"))

        # 1. the uninterrupted serial reference
        ref = subprocess.run(
            BASE[:-4] + ["--save-factor", str(clean_path)],
            cwd=tmp_path,
            env={**os.environ, "PYTHONPATH": os.path.abspath(
                os.path.join(os.path.dirname(__file__), "..", "..", "src")
            )},
            capture_output=True, text=True, timeout=300,
        )
        assert ref.returncode == 0, ref.stderr

        # 2. an mp run killed mid-flight by an injected hard crash in a
        #    forked worker; the coordinator must mirror exit 137
        killed = run_cli(
            ["--checkpoint-dir", str(ck), "--checkpoint-every", "3",
             "--inject-faults", "GEMM:crash:0.3", "--fault-seed", "2"],
            tmp_path,
        )
        assert killed.returncode == 137, (
            f"expected SIGKILL-style exit, got {killed.returncode}:\n"
            f"{killed.stdout}\n{killed.stderr}"
        )
        assert list(ck.glob("ckpt-*.json")), "crash left no checkpoint"
        leaked = set(os.listdir("/dev/shm")) - shm_before
        assert not leaked, f"crash leaked shared-memory segments: {leaked}"

        # 3. resume with the mp engine in a fresh process
        resumed = run_cli(
            ["--checkpoint-dir", str(ck), "--resume",
             "--save-factor", str(resumed_path)],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "tasks resumed" in resumed.stdout

        a = load_tlr(clean_path).to_dense(symmetrize=False)
        b = load_tlr(resumed_path).to_dense(symmetrize=False)
        assert np.array_equal(a, b), "resumed factor is not bitwise identical"
