"""Worker chaos: supervised recovery from real SIGKILLs and hangs.

The mp engine's supervision contract, exercised as the chaos CI job
runs it: kill (or wedge) workers mid-factorization — by injected
``worker_kill``/``worker_hang`` fault kinds and by a thread delivering
real ``os.kill(pid, SIGKILL)`` — and assert the run still completes
with a factor **bitwise identical** to the unkilled serial run, with
no orphaned worker processes and no leaked ``/dev/shm`` segments.

This is distinct from ``test_mp_kill_resume``: there the *injected
hard crash* (exit 137) takes the coordinator down by design and
recovery flows through checkpoint/restart; here real signal deaths are
absorbed by the supervisor and the caller never notices.
"""

import copy
import os
import signal
import threading

import pytest
from scipy.spatial.distance import pdist

from repro.core.tlr_cholesky import register_cholesky_kernels, tlr_cholesky
from repro.core.trimming import cholesky_tasks
from repro.geometry import virus_population
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.integrity import tile_checksum
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.dag import build_graph
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.parallel_mp import (
    MultiprocessExecutionEngine,
    WorkerCrashError,
)
from repro.runtime.supervisor import WorkerFailure, WorkerSupervisor

ACCURACY = 1e-6


def _graph(a):
    ranks = a.rank_matrix()
    return build_graph(
        cholesky_tasks(
            a.n_tiles,
            tile_size=a.tile_size,
            rank_of=lambda m, k: int(ranks[m, k]),
        )
    )


def _operator(seed=3):
    """~140-task workload: enough frontier for kills to land mid-run."""
    pts = virus_population(4, points_per_virus=200, cube_edge=1.7, seed=seed)
    min_spacing = pdist(pts).min()
    gen = RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * min_spacing * 40,
        tile_size=80,
        nugget=1e-4,
    )
    return TLRMatrix.compress(gen.tile, gen.n, 80, ACCURACY, max_rank=40)


def _checksums(a):
    return {key: tile_checksum(tile) for key, tile in a}


@pytest.fixture(scope="module")
def base_operator():
    """Compressed once per module: compression dominates test time."""
    return _operator()


@pytest.fixture()
def operator(base_operator):
    return copy.deepcopy(base_operator)


@pytest.fixture(scope="module")
def reference_checksums(base_operator):
    a = copy.deepcopy(base_operator)
    tlr_cholesky(a, workers=1)
    return _checksums(a)


def _assert_clean(shm_before):
    leaked = set(os.listdir("/dev/shm")) - shm_before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.mark.timeout(600)
class TestInjectedWorkerKill:
    """``worker_kill`` fault kind: the worker SIGKILLs itself mid-task."""

    # ids feed the CI chaos matrix: each -k "seedN or not seed" shard
    # runs one seed's kill pattern plus every unparametrized test
    @pytest.mark.parametrize("seed", [0, 1, 2], ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("workers", [2, 4], ids=lambda w: f"w{w}")
    def test_killed_workers_recover_bitwise(
        self, seed, workers, operator, reference_checksums
    ):
        shm_before = set(os.listdir("/dev/shm"))
        a = operator
        injector = FaultInjector(
            FaultPlan.parse("GEMM:worker_kill:0.04", seed=seed)
        )
        result = tlr_cholesky(
            a, workers=workers, engine="mp", fault_injector=injector
        )
        assert _checksums(a) == reference_checksums
        # a killed worker dies before it can report its fault counter,
        # so the supervisor's respawn count is the kill evidence
        assert result.workers_respawned > 0
        _assert_clean(shm_before)

    def test_worker_kill_is_noop_in_serial_engine(
        self, operator, reference_checksums
    ):
        """``in_worker`` gate: the same plan in an in-process engine
        must neither kill the test process nor perturb the factor."""
        a = operator
        injector = FaultInjector(
            FaultPlan.parse("GEMM:worker_kill:0.5", seed=0)
        )
        tlr_cholesky(a, workers=1, fault_injector=injector)
        assert _checksums(a) == reference_checksums
        assert injector.counters.get(("worker_kill", "GEMM"), 0) == 0

    def test_respawn_budget_exhaustion_surfaces(self, operator):
        a = operator
        injector = FaultInjector(
            FaultPlan.parse("GEMM:worker_kill:0.9", seed=0)
        )
        shm_before = set(os.listdir("/dev/shm"))
        # tiny budget so the test is quick even at 90% kill probability
        eng = MultiprocessExecutionEngine(
            workers=2, fault_injector=injector, max_respawns=2
        )
        register_cholesky_kernels(eng)
        with pytest.raises(WorkerCrashError, match="respawn budget"):
            eng.run(_graph(a), a)
        _assert_clean(shm_before)

    def test_supervision_disabled_fails_fast(self, operator):
        a = operator
        injector = FaultInjector(
            FaultPlan.parse("GEMM:worker_kill:0.9", seed=0)
        )
        shm_before = set(os.listdir("/dev/shm"))
        eng = MultiprocessExecutionEngine(
            workers=2, fault_injector=injector, supervise=False
        )
        register_cholesky_kernels(eng)
        with pytest.raises(WorkerCrashError, match="supervision disabled"):
            eng.run(_graph(a), a)
        _assert_clean(shm_before)


@pytest.mark.timeout(600)
class TestRealSigkill:
    """A thread delivering genuine ``os.kill(pid, SIGKILL)`` to live
    workers — the acceptance-criteria scenario, no injection anywhere."""

    def test_sigkill_mid_run_is_bitwise_transparent(
        self, operator, reference_checksums
    ):
        shm_before = set(os.listdir("/dev/shm"))
        a = operator
        eng = MultiprocessExecutionEngine(workers=3)
        killed = []
        stop = threading.Event()

        def killer():
            while not stop.wait(0.04) and len(killed) < 2:
                pids = dict(eng.worker_pids)
                if not pids:
                    continue
                lane, pid = sorted(pids.items())[len(killed) % len(pids)]
                try:
                    os.kill(pid, signal.SIGKILL)
                    killed.append(pid)
                except ProcessLookupError:
                    pass

        register_cholesky_kernels(eng)
        graph = _graph(a)
        t = threading.Thread(target=killer)
        t.start()
        try:
            eng.run(graph, a)
        finally:
            stop.set()
            t.join()

        assert _checksums(a) == reference_checksums
        if killed:  # a fast box may retire everything before the kill
            assert eng.last_run_supervision["respawns"] >= 1
        # no orphaned replacement/original workers
        for pid in eng.worker_pids.values():
            with pytest.raises(OSError):
                os.kill(pid, 0)
        _assert_clean(shm_before)


@pytest.mark.timeout(600)
class TestWorkerHang:
    """``worker_hang`` wedges a worker; the supervisor SIGKILLs it into
    the same recovery path once the hang budget expires."""

    def test_hung_worker_is_killed_and_replaced(
        self, operator, reference_checksums
    ):
        shm_before = set(os.listdir("/dev/shm"))
        a = operator
        injector = FaultInjector(
            FaultPlan.parse("GEMM:worker_hang:0.05", seed=1)
        )
        eng = MultiprocessExecutionEngine(
            workers=2, fault_injector=injector, hang_timeout=1.0
        )
        register_cholesky_kernels(eng)
        eng.run(_graph(a), a)
        assert _checksums(a) == reference_checksums
        report = eng.last_run_supervision
        assert report["hung_killed"] >= 1
        assert report["respawns"] >= report["hung_killed"]
        _assert_clean(shm_before)


class TestSupervisorUnit:
    """Policy-level checks with fake processes and an injectable clock."""

    class FakeProc:
        def __init__(self, pid=4242, exitcode=None):
            self.pid = pid
            self.exitcode = exitcode
            self.joined = False

        def join(self, timeout=None):
            self.joined = True

    def test_validation(self):
        with pytest.raises(ValueError, match="max_respawns"):
            WorkerSupervisor(max_respawns=-1)
        with pytest.raises(ValueError, match="hang_timeout"):
            WorkerSupervisor(hang_timeout=0.0)

    def test_dead_lane_reported_once_with_task(self):
        sup = WorkerSupervisor(max_respawns=1)
        proc = self.FakeProc(exitcode=-9)
        sup.attach(0, proc)
        sup.task_dispatched(0, 17)
        (failure,) = sup.poll()
        assert failure == WorkerFailure(
            lane=0, pid=4242, exitcode=-9, hung=False, task_index=17
        )
        assert not failure.injected_hard_crash

    def test_exit_137_classified_as_injected(self):
        sup = WorkerSupervisor()
        sup.attach(0, self.FakeProc(exitcode=137))
        (failure,) = sup.poll()
        assert failure.injected_hard_crash

    def test_hang_detection_uses_clock_and_kills(self, monkeypatch):
        now = [0.0]
        sup = WorkerSupervisor(
            max_respawns=1, hang_timeout=5.0, clock=lambda: now[0]
        )
        killed = []
        monkeypatch.setattr(
            WorkerSupervisor, "_kill", staticmethod(lambda p: killed.append(p))
        )
        proc = self.FakeProc()
        sup.attach(0, proc)
        sup.task_dispatched(0, 3)
        now[0] = 4.9
        assert sup.poll() == []
        now[0] = 5.1
        (failure,) = sup.poll()
        assert failure.hung and failure.task_index == 3
        assert killed == [proc]
        assert sup.hung_killed == 1

    def test_idle_lane_never_hangs(self):
        now = [0.0]
        sup = WorkerSupervisor(hang_timeout=1.0, clock=lambda: now[0])
        sup.attach(0, self.FakeProc())
        now[0] = 100.0
        assert sup.poll() == []

    def test_retire_clears_hang_timer(self):
        now = [0.0]
        sup = WorkerSupervisor(hang_timeout=1.0, clock=lambda: now[0])
        sup.attach(0, self.FakeProc())
        sup.task_dispatched(0, 1)
        sup.task_retired(0)
        now[0] = 100.0
        assert sup.poll() == []

    def test_respawn_budget(self):
        sup = WorkerSupervisor(max_respawns=2)
        assert sup.can_respawn()
        sup.record_respawn(0)
        sup.record_respawn(0)
        assert not sup.can_respawn()
        assert sup.report()["respawns"] == 2
