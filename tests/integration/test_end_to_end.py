"""Integration tests: the full pipeline on the paper's workload shape,
plus cross-module consistency between the numeric drivers, the
symbolic analysis, the simulators and the application layer."""

import numpy as np
import pytest

from repro import (
    HICMA_PARSEC,
    LORAPO,
    AnalyticModel,
    DistributedSimulator,
    RBFMatrixGenerator,
    SHAHEEN_II,
    SyntheticRankField,
    TLRMatrix,
    analyze_ranks,
    calibrate_rank_field,
    hicma_parsec_factorize,
    lorapo_factorize,
    min_spacing,
    solve_cholesky,
    virus_population,
)
from repro.core.trimming import cholesky_tasks
from repro.runtime import build_graph


@pytest.fixture(scope="module")
def pipeline():
    """Full paper pipeline at laptop scale: virus population ->
    Hilbert order -> RBF operator -> compression."""
    pts = virus_population(4, points_per_virus=400, cube_edge=1.7, seed=11)
    delta = 0.5 * min_spacing(pts) * 30
    gen = RBFMatrixGenerator(pts, delta, tile_size=160, nugget=1e-4)
    a = TLRMatrix.compress(gen.tile, gen.n, 160, accuracy=1e-6)
    return pts, gen, a


class TestFullPipeline:
    def test_mixture_of_data_structures(self, pipeline):
        """After compression the operator holds dense, low-rank AND
        null tiles simultaneously — the paper's core challenge."""
        _, _, a = pipeline
        kinds = {t.kind.value for _, t in a}
        assert kinds == {"dense", "low_rank", "null"}

    def test_factorize_and_solve(self, pipeline):
        _, gen, a = pipeline
        result = hicma_parsec_factorize(a.copy())
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(gen.n)
        dense = gen.dense()
        b = dense @ x_true
        x = solve_cholesky(result.factor, b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-2

    def test_lorapo_and_hicma_same_numerics(self, pipeline):
        _, gen, a = pipeline
        r1 = hicma_parsec_factorize(a.copy())
        r2 = lorapo_factorize(a.copy())
        d = gen.dense()
        assert r1.residual(d) == pytest.approx(r2.residual(d), rel=1e-6)
        assert len(r1.graph) < len(r2.graph)

    def test_numeric_density_growth_matches_analysis(self, pipeline):
        """Initial->final density growth (fill-in) must agree between
        the numeric factorization and Algorithm 1's prediction."""
        _, _, a = pipeline
        ana = analyze_ranks(a.rank_array(), a.n_tiles)
        result = hicma_parsec_factorize(a.copy())
        numeric_final = result.factor.density()
        assert numeric_final <= ana.final_density() + 1e-9

    def test_calibrated_field_feeds_simulator(self, pipeline):
        """calibrate on real compression -> simulate at 4 nodes."""
        _, _, a = pipeline
        field = calibrate_rank_field(a)
        mask = field.initial_mask()
        ranks = field.rank_matrix(mask)
        ana = analyze_ranks(ranks, field.nt)
        rank_of = lambda m, k: int(ranks[m, k]) if m != k else a.tile_size
        g = build_graph(
            cholesky_tasks(field.nt, ana, tile_size=a.tile_size, rank_of=rank_of)
        )
        sim = DistributedSimulator(SHAHEEN_II, 4)
        res = sim.run(g, a.tile_size, rank_of, HICMA_PARSEC.data_distribution(4),
                      HICMA_PARSEC.exec_distribution(4))
        assert res.makespan > 0
        assert res.n_tasks == len(g)

    def test_analytic_model_runs_on_calibrated_field(self, pipeline):
        _, _, a = pipeline
        field = calibrate_rank_field(a)
        r = AnalyticModel(SHAHEEN_II, 4, HICMA_PARSEC).factorization_time(field)
        l = AnalyticModel(SHAHEEN_II, 4, LORAPO).factorization_time(field)
        # at this toy scale (NT=10) makespans are microseconds apart;
        # the structural claim is the task-count gap (at-scale time
        # ordering is covered by tests/machine/test_analytic.py)
        assert l.n_tasks > r.n_tasks
        assert l.makespan > 0 and r.makespan > 0
        assert l.makespan > 0.8 * r.makespan


class TestScaleConsistency:
    def test_synthetic_field_statistics_scale(self):
        """Growing N at fixed physics keeps per-distance profiles
        stable (the assumption behind at-scale extrapolation)."""
        f1 = SyntheticRankField.from_parameters(200_000, 2000, 3.7e-4, 1e-4)
        f2 = SyntheticRankField.from_parameters(800_000, 2000, 3.7e-4, 1e-4)
        # same tile size, same physics: near-diagonal ranks identical
        assert np.allclose(
            f1.rank_by_distance[:5], f2.rank_by_distance[:5], rtol=0.2
        )
