"""Headline robustness demo, as real processes: kill, resume, compare.

A ``crash`` fault with ``hard_crash`` kills the factorize CLI with
``os._exit(137)`` — SIGKILL semantics, no cleanup, no atexit — exactly
what an OOM-killer or a preempted node does.  A second process resumes
from the checkpoint directory and must produce a factor **bitwise
identical** to an uninterrupted third process.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.linalg.serialization import load_tlr

BASE = [
    sys.executable, "-m", "repro", "factorize",
    "--viruses", "2", "--points-per-virus", "150", "--tile-size", "50",
]


def run_cli(extra, cwd):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        BASE + extra, cwd=cwd, env=env, capture_output=True, text=True,
        timeout=300,
    )


@pytest.mark.timeout(600)
class TestKillResume:
    def test_killed_run_resumes_bitwise_identical(self, tmp_path):
        ck = tmp_path / "ck"
        clean_path = tmp_path / "clean.npz"
        resumed_path = tmp_path / "resumed.npz"

        # 1. the uninterrupted reference
        ref = run_cli(["--save-factor", str(clean_path)], tmp_path)
        assert ref.returncode == 0, ref.stderr

        # 2. a run killed mid-flight by an injected hard crash
        killed = run_cli(
            ["--checkpoint-dir", str(ck), "--checkpoint-every", "3",
             "--inject-faults", "GEMM:crash:0.3", "--fault-seed", "2"],
            tmp_path,
        )
        assert killed.returncode == 137, (
            f"expected SIGKILL-style exit, got {killed.returncode}:\n"
            f"{killed.stdout}\n{killed.stderr}"
        )
        assert list(ck.glob("ckpt-*.json")), "crash left no checkpoint"

        # 3. resume in a fresh process and save the factor
        resumed = run_cli(
            ["--checkpoint-dir", str(ck), "--resume",
             "--save-factor", str(resumed_path)],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "tasks resumed" in resumed.stdout

        a = load_tlr(clean_path).to_dense(symmetrize=False)
        b = load_tlr(resumed_path).to_dense(symmetrize=False)
        assert np.array_equal(a, b), "resumed factor is not bitwise identical"

    def test_repeated_kills_eventually_finish(self, tmp_path):
        """Crash after crash, the frontier only grows; a final resume
        with no injector always lands the identical factor."""
        ck = tmp_path / "ck"
        clean_path = tmp_path / "clean.npz"
        final_path = tmp_path / "final.npz"
        ref = run_cli(["--save-factor", str(clean_path)], tmp_path)
        assert ref.returncode == 0, ref.stderr

        for seed in range(3):
            proc = run_cli(
                ["--checkpoint-dir", str(ck), "--resume",
                 "--checkpoint-every", "2",
                 "--inject-faults", "all:crash:0.2",
                 "--fault-seed", str(seed),
                 "--save-factor", str(final_path)],
                tmp_path,
            )
            assert proc.returncode in (0, 137), proc.stderr
            if proc.returncode == 0:
                break
        else:
            proc = run_cli(
                ["--checkpoint-dir", str(ck), "--resume",
                 "--save-factor", str(final_path)],
                tmp_path,
            )
            assert proc.returncode == 0, proc.stderr

        a = load_tlr(clean_path).to_dense(symmetrize=False)
        b = load_tlr(final_path).to_dense(symmetrize=False)
        assert np.array_equal(a, b)
