"""Randomized compression under every engine: bitwise-identical factors.

The repo's reproducibility contract says the factor is a pure function
of the operator spec — independent of engine and worker count.  The
randomized compression paths introduce sampling, so the contract now
additionally rests on the deterministic per-tile seed derivation
(seed root + tile coordinates + update generation).  These tests pin
it end to end: rebuilds draw identical samples, and serial, threaded
and process-pool executions of the GEMM rounding produce byte-equal
factors, with fp64 and mixed-precision storage alike.
"""

import numpy as np
import pytest
from scipy.spatial.distance import pdist

from repro.core.tlr_cholesky import tlr_cholesky
from repro.geometry import virus_population
from repro.kernels.matgen import RBFMatrixGenerator
from repro.linalg.tile_matrix import TLRMatrix

TILE = 75
ACCURACY = 1e-6
SEED_ROOT = 0xC0FFEE


def _generator():
    pts = virus_population(2, points_per_virus=150, cube_edge=1.7, seed=5)
    return RBFMatrixGenerator(
        points=pts,
        shape_parameter=0.5 * pdist(pts).min() * 40,
        tile_size=TILE,
        nugget=1e-4,
    )


def _operator(storage=None):
    gen = _generator()
    return TLRMatrix.compress(
        gen.tile,
        gen.n,
        TILE,
        ACCURACY,
        max_rank=40,
        compression="rand",
        storage=storage,
        seed_root=SEED_ROOT,
    )


def _tile_bytes(a):
    """Canonical byte image of every stored tile (dtype included)."""
    out = {}
    for (m, k), tile in sorted(a, key=lambda it: it[0]):
        arrays = [
            np.ascontiguousarray(arr)
            for arr in (
                (tile.u, tile.v)
                if hasattr(tile, "u")
                else (tile.data,)
                if hasattr(tile, "data")
                else ()
            )
        ]
        out[(m, k)] = tuple((a.dtype.str, a.tobytes()) for a in arrays)
    return out


class TestRebuildDeterminism:
    def test_two_builds_are_byte_identical(self):
        assert _tile_bytes(_operator()) == _tile_bytes(_operator())

    def test_mixed_storage_builds_are_byte_identical(self):
        a = _operator(storage="mixed")
        b = _operator(storage="mixed")
        assert _tile_bytes(a) == _tile_bytes(b)

    def test_seed_root_changes_samples_not_structure(self):
        gen = _generator()
        other = TLRMatrix.compress(
            gen.tile,
            gen.n,
            TILE,
            ACCURACY,
            max_rank=40,
            compression="rand",
            seed_root=SEED_ROOT + 1,
        )
        base = _operator()
        # identical rank structure and operator, different sample draws
        assert np.array_equal(base.rank_matrix(), other.rank_matrix())
        assert np.allclose(base.to_dense(), other.to_dense(), atol=1e-5)


class TestCrossEngineBitwise:
    @pytest.fixture(scope="class")
    def serial_factor(self):
        r = tlr_cholesky(_operator(), trim=True, engine="serial")
        return r.factor.to_dense(symmetrize=False)

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("engine,workers", [("threads", 4), ("mp", 2)])
    def test_factor_matches_serial(self, serial_factor, engine, workers):
        r = tlr_cholesky(
            _operator(), trim=True, engine=engine, workers=workers
        )
        assert np.array_equal(
            r.factor.to_dense(symmetrize=False), serial_factor
        )

    @pytest.mark.timeout(180)
    def test_mixed_storage_factor_matches_serial(self):
        ser = tlr_cholesky(
            _operator(storage="mixed"), trim=True, engine="serial"
        )
        par = tlr_cholesky(
            _operator(storage="mixed"), trim=True, engine="threads", workers=4
        )
        assert np.array_equal(
            ser.factor.to_dense(symmetrize=False),
            par.factor.to_dense(symmetrize=False),
        )
