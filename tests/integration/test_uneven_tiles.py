"""Integration tests with uneven tiling (matrix order not divisible
by the tile size — the short last tile every real run hits)."""

import numpy as np
import pytest

from repro.core import solve_cholesky, tlr_cholesky
from repro.core.tlr_lu import solve_lu, tlr_lu
from repro.linalg.general_matrix import GeneralTLRMatrix
from repro.linalg.matvec import tlr_matvec
from repro.linalg.tile_matrix import TLRMatrix


@pytest.fixture(scope="module")
def uneven_spd():
    rng = np.random.default_rng(0)
    n = 137  # tiles of 50 -> 50 + 50 + 37
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return (q * np.linspace(1.0, 8.0, n)) @ q.T


class TestUnevenCholesky:
    def test_factorization(self, uneven_spd):
        t = TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12)
        assert t.tile(2, 2).shape == (37, 37)
        assert t.tile(2, 0).shape == (37, 50)
        r = tlr_cholesky(t)
        assert r.residual(uneven_spd) < 1e-12

    def test_solve(self, uneven_spd):
        t = TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12)
        r = tlr_cholesky(t)
        x = solve_cholesky(r.factor, uneven_spd @ np.ones(len(uneven_spd)))
        assert np.allclose(x, 1.0, atol=1e-10)

    def test_matvec(self, uneven_spd):
        t = TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12)
        x = np.arange(len(uneven_spd), dtype=float)
        assert np.allclose(tlr_matvec(t, x), uneven_spd @ x, atol=1e-8)

    def test_trim_and_untrimmed_agree(self, uneven_spd):
        a1 = tlr_cholesky(
            TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12), trim=True
        )
        a2 = tlr_cholesky(
            TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12), trim=False
        )
        assert np.allclose(
            a1.factor.to_dense(symmetrize=False),
            a2.factor.to_dense(symmetrize=False),
            atol=1e-12,
        )


class TestUnevenLU:
    def test_factorization_and_solve(self, uneven_spd):
        a = uneven_spd + 0.1 * np.tri(len(uneven_spd), k=-1)
        g = GeneralTLRMatrix.from_dense(a, 50, accuracy=1e-12)
        r = tlr_lu(g)
        assert r.residual(a) < 1e-12
        x = solve_lu(r.factor, a @ np.ones(len(a)))
        assert np.allclose(x, 1.0, atol=1e-10)

    def test_tiny_last_tile(self):
        """Extreme case: last tile is a single row/column."""
        rng = np.random.default_rng(1)
        n = 49  # tiles of 16 -> 16+16+16+1
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        a = (q * np.linspace(1.0, 4.0, n)) @ q.T
        t = TLRMatrix.from_dense(a, 16, accuracy=1e-12)
        assert t.tile(3, 3).shape == (1, 1)
        r = tlr_cholesky(t)
        assert r.residual(a) < 1e-12


class TestUnevenDistributedExecutor:
    def test_distributed_matches(self, uneven_spd):
        from repro.core import analyze_ranks
        from repro.core.trimming import cholesky_tasks
        from repro.distribution import TwoDBlockCyclic
        from repro.runtime import DistributedExecutor, build_graph

        t = TLRMatrix.from_dense(uneven_spd, 50, accuracy=1e-12)
        ref = tlr_cholesky(t.copy()).factor
        ana = analyze_ranks(t.rank_array(), t.n_tiles)
        g = build_graph(cholesky_tasks(t.n_tiles, ana))
        res = DistributedExecutor(2).run(t.copy(), g, TwoDBlockCyclic(1, 2))
        assert np.allclose(
            res.factor.to_dense(symmetrize=False),
            ref.to_dense(symmetrize=False),
            atol=1e-14,
        )
