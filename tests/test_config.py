"""Tests for global configuration helpers and the public API surface."""

import numpy as np
import pytest

import repro
from repro.config import (
    DEFAULT_ACCURACY,
    DENSE_RANK_FRACTION,
    default_shape_parameter,
)


class TestConfig:
    def test_paper_defaults(self):
        assert DEFAULT_ACCURACY == 1e-4  # Sec. VIII-A
        assert 0.0 < DENSE_RANK_FRACTION <= 1.0

    def test_shape_parameter_rule(self):
        """delta = 1/2 * min spacing (Sec. IV-C)."""
        assert default_shape_parameter(7.4e-4) == pytest.approx(3.7e-4)

    def test_shape_parameter_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_shape_parameter(0.0)
        with pytest.raises(ValueError):
            default_shape_parameter(-1.0)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_framework_configs_distinct(self):
        from repro import HICMA_PARSEC, LORAPO, TRIM_ONLY

        assert LORAPO.trim is False
        assert LORAPO.null_rank_floor == "mean"
        assert TRIM_ONLY.trim is True and TRIM_ONLY.exec_distribution is None
        assert HICMA_PARSEC.trim is True
        assert HICMA_PARSEC.exec_distribution is not None

    def test_hicma_exec_mapping_has_band_over_diamond(self):
        from repro import HICMA_PARSEC
        from repro.distribution import BandDistribution, DiamondDistribution

        xd = HICMA_PARSEC.exec_distribution(12)
        assert isinstance(xd, BandDistribution)
        assert isinstance(xd.off_band, DiamondDistribution)

    def test_lorapo_data_dist_is_hybrid(self):
        from repro import LORAPO
        from repro.distribution import HybridDistribution

        assert isinstance(LORAPO.data_distribution(12), HybridDistribution)
