"""Tests for TLR matvec and iterative refinement."""

import numpy as np
import pytest

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.matvec import refine_solve, tlr_matvec
from repro.linalg.tile_matrix import TLRMatrix


class TestTLRMatvec:
    def test_matches_dense(self, sparse_tlr, rng):
        x = rng.standard_normal(sparse_tlr.n)
        y = tlr_matvec(sparse_tlr, x)
        assert np.allclose(y, sparse_tlr.to_dense() @ x, atol=1e-10)

    def test_multi_rhs(self, sparse_tlr, rng):
        x = rng.standard_normal((sparse_tlr.n, 3))
        y = tlr_matvec(sparse_tlr, x)
        assert y.shape == x.shape
        assert np.allclose(y, sparse_tlr.to_dense() @ x, atol=1e-10)

    def test_identity_like(self, spd_matrix):
        t = TLRMatrix.from_dense(spd_matrix, 32, accuracy=1e-12)
        x = np.ones(spd_matrix.shape[0])
        assert np.allclose(tlr_matvec(t, x), spd_matrix @ x, atol=1e-9)

    def test_wrong_size_raises(self, sparse_tlr):
        with pytest.raises(ValueError):
            tlr_matvec(sparse_tlr, np.ones(sparse_tlr.n + 1))


class TestRefineSolve:
    def test_refinement_reduces_residual(self, sparse_tlr, rng):
        a = sparse_tlr.copy()
        factor = tlr_cholesky(sparse_tlr.copy()).factor
        b = rng.standard_normal(a.n)
        res = refine_solve(a, factor, b, max_sweeps=4, rtol=1e-12)
        # residuals decrease (until stagnation at the compression level)
        assert res.residuals[-1] <= res.residuals[0]
        assert len(res.residuals) >= 2

    def test_converges_to_tolerance(self, sparse_tlr, rng):
        a = sparse_tlr.copy()
        factor = tlr_cholesky(sparse_tlr.copy()).factor
        b = rng.standard_normal(a.n)
        res = refine_solve(a, factor, b, max_sweeps=6, rtol=1e-8)
        assert res.converged
        assert res.residuals[-1] <= 1e-8

    def test_zero_rhs(self, sparse_tlr):
        a = sparse_tlr.copy()
        factor = tlr_cholesky(sparse_tlr.copy()).factor
        res = refine_solve(a, factor, np.zeros(a.n))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_multi_rhs_refinement(self, sparse_tlr, rng):
        a = sparse_tlr.copy()
        factor = tlr_cholesky(sparse_tlr.copy()).factor
        b = rng.standard_normal((a.n, 2))
        res = refine_solve(a, factor, b, max_sweeps=4, rtol=1e-8)
        assert res.x.shape == b.shape
        assert res.converged
