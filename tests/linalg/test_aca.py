"""Tests for ACA compressed-format generation (the paper's future
work: build the operator directly in compressed form)."""

import numpy as np
import pytest

from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix
from repro.linalg.aca import ACAGenerator, aca_partial
from repro.linalg.lowrank import LowRankFactor


def sampled(matrix):
    row = lambda i: matrix[i, :]
    col = lambda j: matrix[:, j]
    return row, col, matrix.shape


class TestACAPartial:
    def test_exact_low_rank(self, rng):
        a = rng.standard_normal((40, 5)) @ rng.standard_normal((5, 30))
        f = aca_partial(*sampled(a), tol=1e-10)
        assert isinstance(f, LowRankFactor)
        assert f.rank == 5
        assert np.allclose(f.to_dense(), a, atol=1e-7 * np.linalg.norm(a))

    def test_smooth_kernel_block(self, rng):
        """Separated-cluster Gaussian interaction compresses well."""
        x = rng.random((50, 3))
        y = rng.random((60, 3)) + 5.0
        d = np.linalg.norm(x[:, None] - y[None, :], axis=2)
        a = np.exp(-(d / 4.0) ** 2)
        f = aca_partial(*sampled(a), tol=1e-8)
        assert f is not None
        assert f.rank < 25
        err = np.linalg.norm(a - f.to_dense()) / np.linalg.norm(a)
        assert err < 1e-6

    def test_zero_block_returns_none(self):
        a = np.zeros((20, 20))
        assert aca_partial(*sampled(a), tol=1e-8) is None

    def test_tiny_block_below_tolerance(self, rng):
        a = 1e-9 * rng.standard_normal((15, 15))
        assert aca_partial(*sampled(a), tol=1e-4) is None

    def test_full_rank_hits_budget(self, rng):
        a = rng.standard_normal((30, 30))  # incompressible
        assert aca_partial(*sampled(a), tol=1e-12, max_rank=5) is None

    def test_accuracy_tracks_tolerance(self, rng):
        x = rng.random((64, 3))
        y = rng.random((64, 3)) + 3.0
        d = np.linalg.norm(x[:, None] - y[None, :], axis=2)
        a = np.exp(-(d / 2.0) ** 2)
        for tol in (1e-4, 1e-8):
            f = aca_partial(*sampled(a), tol=tol, max_rank=64)
            err = np.linalg.norm(a - f.to_dense())
            assert err < 50 * tol * max(np.linalg.norm(a), 1.0)


class TestACAGenerator:
    @pytest.fixture(scope="class")
    def setup(self):
        pts = virus_population(4, points_per_virus=300, cube_edge=1.7, seed=5)
        s = min_spacing(pts)
        gen = RBFMatrixGenerator(pts, 0.5 * s * 30, tile_size=150, nugget=1e-4)
        return gen

    def test_matches_svd_compression_structurally(self, setup):
        gen = setup
        acc = 1e-6
        svd_tlr = TLRMatrix.compress(gen.tile, gen.n, gen.tile_size, acc)
        aca = ACAGenerator(gen, accuracy=acc)
        aca_tlr = aca.compress()
        # same null pattern (up to tolerance-borderline tiles)
        r_svd = svd_tlr.rank_matrix() > 0
        r_aca = aca_tlr.rank_matrix() > 0
        disagreement = np.count_nonzero(r_svd != r_aca)
        assert disagreement <= max(2, 0.05 * r_svd.size)
        # numerically the same operator
        err = np.linalg.norm(aca_tlr.to_dense() - svd_tlr.to_dense())
        assert err / np.linalg.norm(svd_tlr.to_dense()) < 1e-4

    def test_factorization_through_aca_matrix(self, setup):
        gen = setup
        aca_tlr = ACAGenerator(gen, accuracy=1e-6).compress()
        from repro.core import hicma_parsec_factorize

        result = hicma_parsec_factorize(aca_tlr)
        assert result.residual(gen.dense()) < 1e-3

    def test_stats_recorded(self, setup):
        gen = setup
        aca = ACAGenerator(gen, accuracy=1e-6)
        aca.compress()
        assert aca.stats["diagonal"] == gen.n_tiles
        assert aca.stats["aca"] > 0
        total_off = gen.n_tiles * (gen.n_tiles - 1) // 2
        assert (
            aca.stats["aca"] + aca.stats["dense_fallback"] + aca.stats["null"]
            == total_off
        )

    def test_rejects_non_generator(self):
        with pytest.raises(TypeError):
            ACAGenerator(object(), accuracy=1e-6)
