"""Tests for dense and TLR tile kernels: the four Cholesky kernels
must be algebraically equivalent across all tile-representation
combinations (the paper's mixture of data structures)."""

import numpy as np
import pytest

from repro.linalg import kernels_dense as kd
from repro.linalg.kernels_tlr import gemm_tile, potrf_tile, syrk_tile, trsm_tile
from repro.linalg.lowrank import truncated_svd
from repro.linalg.tile import DenseTile, LowRankTile, NullTile


def lr_tile(rng, n, k, scale=1.0):
    block = scale * rng.standard_normal((n, k)) @ rng.standard_normal((k, n))
    return LowRankTile(truncated_svd(block, tol=1e-12))


def spd_tile(rng, n):
    a = rng.standard_normal((n, n))
    return DenseTile(a @ a.T + n * np.eye(n))


class TestDenseKernels:
    def test_potrf(self, rng):
        a = spd_tile(rng, 16).data
        l = kd.potrf(a)
        assert np.allclose(np.tril(l) @ np.tril(l).T, a)

    def test_potrf_raises_on_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            kd.potrf(-np.eye(4))

    def test_trsm(self, rng):
        l = kd.potrf(spd_tile(rng, 12).data)
        a = rng.standard_normal((12, 12))
        out = kd.trsm(l, a)
        assert np.allclose(out @ l.T, a)

    def test_syrk(self, rng):
        c = rng.standard_normal((10, 10))
        a = rng.standard_normal((10, 10))
        assert np.allclose(kd.syrk(c, a), c - a @ a.T)

    def test_gemm(self, rng):
        c = rng.standard_normal((10, 10))
        a = rng.standard_normal((10, 10))
        b = rng.standard_normal((10, 10))
        assert np.allclose(kd.gemm(c, a, b), c - a @ b.T)


class TestPotrfTile:
    def test_dense(self, rng):
        a = spd_tile(rng, 16)
        l = potrf_tile(a)
        assert isinstance(l, DenseTile)
        assert np.allclose(np.tril(l.data) @ np.tril(l.data).T, a.data)

    def test_rejects_non_dense(self, rng):
        with pytest.raises(TypeError):
            potrf_tile(lr_tile(rng, 8, 2))
        with pytest.raises(TypeError):
            potrf_tile(NullTile((8, 8)))


class TestTrsmTile:
    @pytest.fixture()
    def l_kk(self, rng):
        return potrf_tile(spd_tile(rng, 16))

    def test_null_passthrough(self, l_kk):
        t = NullTile((16, 16))
        assert trsm_tile(l_kk, t) is t

    def test_low_rank(self, rng, l_kk):
        a = lr_tile(rng, 16, 3)
        out = trsm_tile(l_kk, a)
        assert isinstance(out, LowRankTile)
        assert out.rank == 3  # TRSM never changes the rank
        ref = kd.trsm(l_kk.data, a.to_dense())
        assert np.allclose(out.to_dense(), ref)

    def test_dense(self, rng, l_kk):
        a = DenseTile(rng.standard_normal((16, 16)))
        out = trsm_tile(l_kk, a)
        assert isinstance(out, DenseTile)
        assert np.allclose(out.data, kd.trsm(l_kk.data, a.data))

    def test_does_not_mutate_operand(self, rng, l_kk):
        a = lr_tile(rng, 16, 2)
        before = a.to_dense()
        trsm_tile(l_kk, a)
        assert np.array_equal(a.to_dense(), before)


class TestSyrkTile:
    def test_null_noop(self, rng):
        c = spd_tile(rng, 12)
        out = syrk_tile(c, NullTile((12, 12)))
        assert np.array_equal(out.data, c.data)

    def test_low_rank(self, rng):
        c = spd_tile(rng, 12)
        a = lr_tile(rng, 12, 3)
        out = syrk_tile(c, a)
        ref = kd.syrk(c.data, a.to_dense())
        assert np.allclose(out.data, ref)

    def test_dense(self, rng):
        c = spd_tile(rng, 12)
        a = DenseTile(rng.standard_normal((12, 12)))
        out = syrk_tile(c, a)
        assert np.allclose(out.data, kd.syrk(c.data, a.data))

    def test_rejects_non_dense_target(self, rng):
        with pytest.raises(TypeError):
            syrk_tile(lr_tile(rng, 8, 2), lr_tile(rng, 8, 2))


class TestGemmTile:
    """All 3x3x3 = 27 combinations of (C, A, B) representations must
    produce C - A B^T up to the recompression tolerance."""

    N = 16
    TOL = 1e-9

    def _tiles(self, rng, kind, k=3):
        if kind == "null":
            return NullTile((self.N, self.N))
        if kind == "lr":
            return lr_tile(rng, self.N, k)
        return DenseTile(rng.standard_normal((self.N, self.N)))

    @pytest.mark.parametrize("ck", ["null", "lr", "dense"])
    @pytest.mark.parametrize("ak", ["null", "lr", "dense"])
    @pytest.mark.parametrize("bk", ["null", "lr", "dense"])
    def test_all_combinations(self, rng, ck, ak, bk):
        c = self._tiles(rng, ck)
        a = self._tiles(rng, ak)
        b = self._tiles(rng, bk)
        ref = c.to_dense() - a.to_dense() @ b.to_dense().T
        out = gemm_tile(c, a, b, tol=self.TOL, max_rank=self.N)
        assert np.allclose(out.to_dense(), ref, atol=1e-6), (ck, ak, bk)

    def test_null_operand_returns_same_object(self, rng):
        c = self._tiles(rng, "lr")
        out = gemm_tile(c, NullTile((self.N, self.N)), self._tiles(rng, "lr"),
                        tol=self.TOL)
        assert out is c

    def test_fill_in(self, rng):
        """null C with non-null operands becomes non-null (fill-in)."""
        out = gemm_tile(
            NullTile((self.N, self.N)),
            self._tiles(rng, "lr"),
            self._tiles(rng, "lr"),
            tol=self.TOL,
        )
        assert not out.is_null

    def test_rank_growth_is_rounded(self, rng):
        """Repeated accumulation must not inflate the stored rank
        beyond the numerical rank."""
        c = self._tiles(rng, "lr", k=2)
        a = self._tiles(rng, "lr", k=2)
        b = self._tiles(rng, "lr", k=2)
        out = gemm_tile(c, a, b, tol=1e-8)
        # numerical rank of the sum is at most 2 + 2
        assert out.rank <= 4

    def test_cancellation_produces_null(self, rng):
        a = self._tiles(rng, "lr", k=2)
        b = self._tiles(rng, "lr", k=2)
        prod = a.to_dense() @ b.to_dense().T
        c = DenseTile(prod)
        out = gemm_tile(c, a, b, tol=1e-6, max_rank=8)
        # C - A B^T == 0: dense path keeps a DenseTile of zeros
        assert np.allclose(out.to_dense(), 0.0, atol=1e-8)

    def test_max_rank_densifies(self, rng):
        """If the rounded rank exceeds max_rank, the tile goes dense."""
        c = self._tiles(rng, "lr", k=6)
        a = self._tiles(rng, "lr", k=6)
        b = self._tiles(rng, "lr", k=6)
        out = gemm_tile(c, a, b, tol=1e-14, max_rank=2)
        assert isinstance(out, DenseTile)

    def test_operands_not_mutated(self, rng):
        c, a, b = (self._tiles(rng, "lr") for _ in range(3))
        ca, aa, bb = c.to_dense(), a.to_dense(), b.to_dense()
        gemm_tile(c, a, b, tol=self.TOL)
        assert np.array_equal(c.to_dense(), ca)
        assert np.array_equal(a.to_dense(), aa)
        assert np.array_equal(b.to_dense(), bb)
