"""Tests for the HODLR baseline (weak admissibility)."""

import numpy as np
import pytest

from repro.linalg.hodlr import build_hodlr


@pytest.fixture(scope="module")
def operator_1d():
    """A 1D-ordered exponential kernel — HODLR's sweet spot."""
    x = np.linspace(0.0, 1.0, 512)
    a = np.exp(-np.abs(x[:, None] - x[None, :]) / 0.1)
    return a + 1e-8 * np.eye(len(x))


class TestConstruction:
    def test_roundtrip(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8, leaf_size=64)
        err = np.linalg.norm(h.to_dense() - operator_1d) / np.linalg.norm(
            operator_1d
        )
        assert err < 1e-6

    def test_levels(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8, leaf_size=64)
        assert h.n_levels == 4  # 512 -> 256 -> 128 -> 64 leaves

    def test_leaf_only(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8, leaf_size=1024)
        assert h.n_levels == 1
        assert np.allclose(h.to_dense(), operator_1d)

    def test_memory_savings_on_1d(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8, leaf_size=64)
        assert h.memory_bytes() < 0.5 * operator_1d.nbytes

    def test_rank_profile_levels(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8, leaf_size=64)
        prof = h.rank_profile()
        assert len(prof) == 3  # internal levels
        assert all(r >= 1 for r in prof)
        # 1D exponential kernel: ranks stay small at every level
        assert max(prof) < 30

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_hodlr(np.zeros((4, 5)), accuracy=1e-6)
        with pytest.raises(ValueError):
            build_hodlr(np.eye(8), accuracy=1e-6, leaf_size=1)

    def test_incompressible_falls_back_dense(self, rng):
        a = rng.standard_normal((256, 256))
        a = a @ a.T + 256 * np.eye(256)
        h = build_hodlr(a, accuracy=1e-12, leaf_size=64)
        # random SPD: off-diagonal blocks are full-rank -> dense
        # fallback keeps the representation exact
        assert np.allclose(h.to_dense(), a, atol=1e-8)


class TestMatvec:
    def test_matches_dense(self, operator_1d, rng):
        h = build_hodlr(operator_1d, accuracy=1e-10, leaf_size=64)
        x = rng.standard_normal(operator_1d.shape[0])
        assert np.allclose(h.matvec(x), operator_1d @ x, atol=1e-7)

    def test_multi_rhs(self, operator_1d, rng):
        h = build_hodlr(operator_1d, accuracy=1e-10, leaf_size=64)
        x = rng.standard_normal((operator_1d.shape[0], 3))
        assert np.allclose(h.matvec(x), operator_1d @ x, atol=1e-7)

    def test_wrong_size(self, operator_1d):
        h = build_hodlr(operator_1d, accuracy=1e-8)
        with pytest.raises(ValueError):
            h.matvec(np.ones(7))


class TestWeakAdmissibilityWeakness:
    def test_3d_ranks_grow_with_block_size(self):
        """The Section II claim: on a 3D geometry, HODLR's top-level
        off-diagonal rank grows with N (the block covers ever more
        interacting near-field pairs), while TLR tile ranks stay
        bounded by the tile size."""
        from repro.geometry import virus_population, min_spacing

        ranks = []
        for nv in (2, 4, 8):
            pts = virus_population(nv, points_per_virus=300, seed=7)
            s = min_spacing(pts)
            d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
            a = np.exp(-((d / (0.5 * s * 30)) ** 2)) + 1e-8 * np.eye(len(pts))
            h = build_hodlr(a, accuracy=1e-6, leaf_size=150)
            ranks.append(h.rank_profile()[0])
        assert ranks[-1] > ranks[0]
