"""Tests for the tile taxonomy."""

import numpy as np
import pytest

from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile, TileKind, as_tile


class TestDenseTile:
    def test_basics(self, rng):
        data = rng.standard_normal((6, 4))
        t = DenseTile(data)
        assert t.kind is TileKind.DENSE
        assert t.shape == (6, 4)
        assert t.rank == 4
        assert t.nbytes == 6 * 4 * 8
        assert not t.is_null
        assert np.allclose(t.to_dense(), data)

    def test_to_dense_is_copy(self, rng):
        t = DenseTile(rng.standard_normal((3, 3)))
        d = t.to_dense()
        d[0, 0] = 99.0
        assert t.data[0, 0] != 99.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            DenseTile(np.zeros(5))


class TestLowRankTile:
    def test_basics(self, rng):
        f = LowRankFactor(rng.standard_normal((8, 2)), rng.standard_normal((8, 2)))
        t = LowRankTile(f)
        assert t.kind is TileKind.LOW_RANK
        assert t.rank == 2
        assert t.shape == (8, 8)
        assert np.allclose(t.to_dense(), f.to_dense())
        assert t.nbytes == 2 * 8 * 2 * 8

    def test_rejects_non_factor(self):
        with pytest.raises(TypeError):
            LowRankTile(np.zeros((4, 4)))


class TestNullTile:
    def test_basics(self):
        t = NullTile((5, 7))
        assert t.kind is TileKind.NULL
        assert t.rank == 0
        assert t.nbytes == 0
        assert t.is_null
        assert np.array_equal(t.to_dense(), np.zeros((5, 7)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            NullTile((0, 5))
        with pytest.raises(ValueError):
            NullTile((5,))


class TestAsTile:
    def test_dispatch(self, rng):
        assert isinstance(as_tile(None, (4, 4)), NullTile)
        assert isinstance(as_tile(rng.standard_normal((4, 4)), (4, 4)), DenseTile)
        f = LowRankFactor(np.ones((4, 1)), np.ones((4, 1)))
        assert isinstance(as_tile(f, (4, 4)), LowRankTile)
