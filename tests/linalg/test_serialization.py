"""Tests for TLR matrix persistence."""

import numpy as np
import pytest

from repro.linalg.serialization import load_tlr, save_tlr
from repro.linalg.tile import TileKind


class TestRoundtrip:
    def test_exact_roundtrip(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        assert back.n == sparse_tlr.n
        assert back.tile_size == sparse_tlr.tile_size
        assert back.accuracy == sparse_tlr.accuracy
        assert back.max_rank == sparse_tlr.max_rank
        assert np.array_equal(back.rank_matrix(), sparse_tlr.rank_matrix())
        assert np.array_equal(back.to_dense(), sparse_tlr.to_dense())

    def test_tile_kinds_preserved(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        for (m, k), tile in sparse_tlr:
            assert back.tile(m, k).kind is tile.kind

    def test_factorization_after_reload(self, sparse_tlr, sparse_dense_ref, tmp_path):
        from repro.core import hicma_parsec_factorize

        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        r = hicma_parsec_factorize(back)
        assert r.residual(sparse_dense_ref) < 1e-4

    def test_uneven_tiles(self, tmp_path, rng):
        from repro.linalg.tile_matrix import TLRMatrix

        n = 130
        a = rng.standard_normal((n, n))
        a = a @ a.T + n * np.eye(n)
        t = TLRMatrix.from_dense(a, 50, accuracy=1e-10)
        path = tmp_path / "u.npz"
        save_tlr(t, path)
        back = load_tlr(path)
        assert back.tile(2, 2).shape == (30, 30)
        assert np.allclose(back.to_dense(), t.to_dense())

    def test_compressed_file_smaller_than_dense(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        assert path.stat().st_size < sparse_tlr.dense_bytes()

    def test_corrupt_version_rejected(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["header"] = arrays["header"].copy()
        arrays["header"][0] = 99
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_tlr(path)
