"""Tests for TLR matrix persistence."""

import numpy as np
import pytest

from repro.linalg.serialization import load_tlr, save_tlr
from repro.linalg.tile import TileKind


class TestRoundtrip:
    def test_exact_roundtrip(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        assert back.n == sparse_tlr.n
        assert back.tile_size == sparse_tlr.tile_size
        assert back.accuracy == sparse_tlr.accuracy
        assert back.max_rank == sparse_tlr.max_rank
        assert np.array_equal(back.rank_matrix(), sparse_tlr.rank_matrix())
        assert np.array_equal(back.to_dense(), sparse_tlr.to_dense())

    def test_tile_kinds_preserved(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        for (m, k), tile in sparse_tlr:
            assert back.tile(m, k).kind is tile.kind

    def test_factorization_after_reload(self, sparse_tlr, sparse_dense_ref, tmp_path):
        from repro.core import hicma_parsec_factorize

        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        r = hicma_parsec_factorize(back)
        assert r.residual(sparse_dense_ref) < 1e-4

    def test_uneven_tiles(self, tmp_path, rng):
        from repro.linalg.tile_matrix import TLRMatrix

        n = 130
        a = rng.standard_normal((n, n))
        a = a @ a.T + n * np.eye(n)
        t = TLRMatrix.from_dense(a, 50, accuracy=1e-10)
        path = tmp_path / "u.npz"
        save_tlr(t, path)
        back = load_tlr(path)
        assert back.tile(2, 2).shape == (30, 30)
        assert np.allclose(back.to_dense(), t.to_dense())

    def test_compressed_file_smaller_than_dense(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        assert path.stat().st_size < sparse_tlr.dense_bytes()

    def test_corrupt_version_rejected(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["header"] = arrays["header"].copy()
        arrays["header"][0] = 99
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_tlr(path)


class TestIntegrity:
    """Atomic writes + embedded checksums (format v2 robustness)."""

    def test_save_leaves_no_temp_files(self, sparse_tlr, tmp_path):
        save_tlr(sparse_tlr, tmp_path / "a.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.npz"]

    def test_corrupted_tile_payload_raises(self, sparse_tlr, tmp_path):
        from repro.linalg.integrity import TileIntegrityError

        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        key = next(k for k in arrays if k[0] in "du")
        arr = arrays[key].copy()
        arr.reshape(-1)[0] += 1e-13  # a "silent" corruption
        arrays[key] = arr
        np.savez_compressed(path, **arrays)
        with pytest.raises(TileIntegrityError, match="checksum mismatch"):
            load_tlr(path)

    def test_verify_false_skips_checksum_check(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        key = next(k for k in arrays if k[0] in "du")
        arr = arrays[key].copy()
        arr.reshape(-1)[0] += 1e-13
        arrays[key] = arr
        np.savez_compressed(path, **arrays)
        assert load_tlr(path, verify=False) is not None  # caller's risk

    def test_v1_file_without_checksums_loads(self, sparse_tlr, tmp_path):
        """Files written before the checksum block exist; they load
        (unverified) rather than failing."""
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        del arrays["checksums"]
        arrays["header"] = arrays["header"].copy()
        arrays["header"][0] = 1
        np.savez_compressed(path, **arrays)
        back = load_tlr(path)
        assert np.array_equal(back.to_dense(), sparse_tlr.to_dense())

    def test_checksum_count_mismatch_raises(self, sparse_tlr, tmp_path):
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["checksums"] = arrays["checksums"][:-1]
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="checksums"):
            load_tlr(path)

    def test_reload_preserves_memory_layout(self, sparse_tlr, tmp_path):
        """Bitwise reproducibility across save/load requires the BLAS
        input layout (C vs Fortran order) to survive the round-trip —
        np.asarray on load, never np.ascontiguousarray."""
        path = tmp_path / "a.npz"
        save_tlr(sparse_tlr, path)
        back = load_tlr(path)
        for (m, k), tile in sparse_tlr:
            if tile.kind is TileKind.LOW_RANK:
                orig = tile.u
                got = back.tile(m, k).u
                assert orig.flags["F_CONTIGUOUS"] == got.flags["F_CONTIGUOUS"]
                assert orig.flags["C_CONTIGUOUS"] == got.flags["C_CONTIGUOUS"]


class TestFactorRoundtripSolve:
    """Cache-persistence contract of the serving subsystem: a factor
    saved and reloaded must solve to the same answer as the in-memory
    factor, to machine precision — including null tiles."""

    @pytest.fixture(scope="class")
    def factor(self, sparse_tlr):
        from repro.core import hicma_parsec_factorize

        return hicma_parsec_factorize(sparse_tlr.copy()).factor

    def test_factor_retains_null_tiles(self, factor):
        from repro.linalg.tile import TileKind

        kinds = {t.kind for (_, _), t in factor}
        assert TileKind.NULL in kinds  # the contract covers null tiles

    def test_solve_after_roundtrip_matches_memory(self, factor, tmp_path):
        from repro.core.solver import solve_cholesky

        rng = np.random.default_rng(21)
        b = rng.standard_normal(factor.n)
        x_mem = solve_cholesky(factor, b)

        path = tmp_path / "factor.npz"
        save_tlr(factor, path)
        x_disk = solve_cholesky(load_tlr(path), b)
        # machine precision relative to the solution norm (the tiles
        # round-trip bit-exactly; only BLAS layout choices may differ)
        diff = np.linalg.norm(x_mem - x_disk)
        assert diff <= 1e-13 * np.linalg.norm(x_mem)

    def test_blocked_solve_after_roundtrip(self, factor, tmp_path):
        from repro.core.solver import solve_cholesky

        rng = np.random.default_rng(22)
        block = rng.standard_normal((factor.n, 4))
        path = tmp_path / "factor.npz"
        save_tlr(factor, path, compressed=False)
        back = load_tlr(path)
        x_mem = solve_cholesky(factor, block)
        x_disk = solve_cholesky(back, block)
        diff = np.linalg.norm(x_mem - x_disk)
        assert diff <= 1e-13 * np.linalg.norm(x_mem)

    def test_logdet_after_roundtrip(self, factor, tmp_path):
        from repro.core.solver import logdet

        path = tmp_path / "factor.npz"
        save_tlr(factor, path)
        assert logdet(load_tlr(path)) == pytest.approx(logdet(factor), rel=1e-14)

    def test_uncompressed_save_roundtrip_identical(self, sparse_tlr, tmp_path):
        """compressed=False changes only the container, not the data."""
        p1 = tmp_path / "c.npz"
        p2 = tmp_path / "u.npz"
        save_tlr(sparse_tlr, p1, compressed=True)
        save_tlr(sparse_tlr, p2, compressed=False)
        assert np.array_equal(load_tlr(p1).to_dense(), load_tlr(p2).to_dense())
        assert p2.stat().st_size >= p1.stat().st_size
