"""Tests for the flop-count formulas."""

import pytest

from repro.linalg import flops as fl


class TestDenseCounts:
    def test_potrf_cubic_leading_term(self):
        assert fl.potrf_flops(1000) == pytest.approx(1000**3 / 3, rel=1e-2)

    def test_trsm(self):
        assert fl.trsm_dense_flops(100) == 100**3
        assert fl.trsm_dense_flops(100, ncols=10) == 100 * 100 * 10

    def test_syrk(self):
        assert fl.syrk_dense_flops(100) == 100 * 100 * 101

    def test_gemm(self):
        assert fl.gemm_dense_flops(100) == 2 * 100**3


class TestTLRCounts:
    def test_tlr_cheaper_than_dense(self):
        b, k = 1000, 20
        assert fl.trsm_tlr_flops(b, k) < fl.trsm_dense_flops(b)
        assert fl.syrk_tlr_flops(b, k) < fl.syrk_dense_flops(b)
        assert fl.gemm_tlr_flops(b, k, k, k) < fl.gemm_dense_flops(b)

    def test_tlr_trsm_scales_linearly_in_rank(self):
        assert fl.trsm_tlr_flops(100, 20) == 2 * fl.trsm_tlr_flops(100, 10)

    def test_gemm_null_operand_free(self):
        assert fl.gemm_tlr_flops(100, 0, 5, 5) == 0.0
        assert fl.gemm_tlr_flops(100, 5, 0, 5) == 0.0

    def test_gemm_monotone_in_ranks(self):
        base = fl.gemm_tlr_flops(500, 10, 10, 10)
        assert fl.gemm_tlr_flops(500, 20, 10, 10) > base
        assert fl.gemm_tlr_flops(500, 10, 20, 10) > base
        assert fl.gemm_tlr_flops(500, 10, 10, 20) > base

    def test_compression_dominates_single_tile_kernels(self):
        """SVD compression of a tile costs more than any single dense
        kernel on it — the premise behind Fig. 11's breakdown."""
        b = 500
        assert fl.compression_flops(b) > fl.gemm_dense_flops(b)
        assert fl.compression_flops(b) > fl.potrf_flops(b)
