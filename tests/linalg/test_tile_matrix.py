"""Tests for the symmetric TLR tile-matrix container."""

import numpy as np
import pytest

from repro.linalg.tile import DenseTile, NullTile, TileKind
from repro.linalg.tile_matrix import TLRMatrix


class TestCompression:
    def test_roundtrip_within_tolerance(self, sparse_generator, sparse_dense_ref):
        g = sparse_generator
        a = TLRMatrix.compress(g.tile, g.n, g.tile_size, accuracy=1e-8)
        err = np.linalg.norm(a.to_dense() - sparse_dense_ref) / np.linalg.norm(
            sparse_dense_ref
        )
        assert err < 1e-6

    def test_diagonal_tiles_dense(self, sparse_tlr):
        for k in range(sparse_tlr.n_tiles):
            assert isinstance(sparse_tlr.tile(k, k), DenseTile)

    def test_has_null_tiles_in_sparse_regime(self, sparse_tlr):
        kinds = {t.kind for (m, k), t in sparse_tlr if m != k}
        assert TileKind.NULL in kinds
        assert TileKind.LOW_RANK in kinds

    def test_density_definition(self, sparse_tlr):
        """density = non-null off-diagonal tiles / off-diagonal tiles."""
        nt = sparse_tlr.n_tiles
        off = [(m, k) for k in range(nt) for m in range(k + 1, nt)]
        nonnull = sum(1 for m, k in off if not sparse_tlr.tile(m, k).is_null)
        assert sparse_tlr.density() == pytest.approx(nonnull / len(off))

    def test_from_dense_equivalent(self, sparse_generator):
        g = sparse_generator
        a1 = TLRMatrix.compress(g.tile, g.n, g.tile_size, accuracy=1e-6)
        a2 = TLRMatrix.from_dense(g.dense(), g.tile_size, accuracy=1e-6)
        assert np.array_equal(a1.rank_matrix(), a2.rank_matrix())

    def test_memory_smaller_than_dense(self, sparse_tlr):
        assert sparse_tlr.memory_bytes() < sparse_tlr.dense_bytes()

    def test_uneven_tiling(self, rng):
        """Matrix order not divisible by tile size (short last tile)."""
        n = 130
        a = rng.standard_normal((n, n))
        a = a @ a.T + n * np.eye(n)
        t = TLRMatrix.from_dense(a, tile_size=50, accuracy=1e-10)
        assert t.n_tiles == 3
        assert t.tile(2, 2).shape == (30, 30)
        assert t.tile(2, 0).shape == (30, 50)
        assert np.allclose(t.to_dense(), a, atol=1e-7)


class TestAccess:
    def test_upper_triangle_raises(self, sparse_tlr):
        with pytest.raises(IndexError):
            sparse_tlr.tile(0, 1)
        with pytest.raises(IndexError):
            sparse_tlr.set_tile(0, 1, DenseTile(np.zeros((200, 200))))

    def test_set_tile_shape_check(self, sparse_tlr):
        with pytest.raises(ValueError):
            sparse_tlr.copy().set_tile(1, 0, DenseTile(np.zeros((3, 3))))

    def test_set_tile_replaces(self, sparse_tlr):
        a = sparse_tlr.copy()
        shape = a.tile(1, 0).shape
        a.set_tile(1, 0, NullTile(shape))
        assert a.tile(1, 0).is_null

    def test_copy_is_independent(self, sparse_tlr):
        a = sparse_tlr.copy()
        shape = a.tile(2, 0).shape
        a.set_tile(2, 0, NullTile(shape))
        assert a.tile(2, 0).is_null != sparse_tlr.tile(2, 0).is_null or (
            sparse_tlr.tile(2, 0).is_null
        )


class TestStructureQueries:
    def test_rank_matrix_symmetric(self, sparse_tlr):
        r = sparse_tlr.rank_matrix()
        assert np.array_equal(r, r.T)

    def test_rank_array_layout(self, sparse_tlr):
        """1D layout rank[k * NT + m] must match the rank matrix."""
        nt = sparse_tlr.n_tiles
        r1 = sparse_tlr.rank_array()
        r2 = sparse_tlr.rank_matrix()
        for k in range(nt):
            for m in range(k, nt):
                assert r1[k * nt + m] == r2[m, k]

    def test_rank_stats_exclude_nulls(self, sparse_tlr):
        stats = sparse_tlr.off_diagonal_rank_stats()
        assert stats["min"] >= 1
        assert stats["max"] >= stats["avg"] >= stats["min"]

    def test_repr(self, sparse_tlr):
        s = repr(sparse_tlr)
        assert "TLRMatrix" in s and "density" in s


class TestValidation:
    def test_missing_tile_rejected(self):
        with pytest.raises(ValueError, match="missing tile"):
            TLRMatrix(10, 5, {}, accuracy=1e-4)

    def test_upper_tile_rejected(self):
        tiles = {(0, 0): DenseTile(np.eye(5)), (1, 1): DenseTile(np.eye(5)),
                 (1, 0): NullTile((5, 5)), (0, 1): NullTile((5, 5))}
        with pytest.raises(ValueError):
            TLRMatrix(10, 5, tiles, accuracy=1e-4)


class TestColumnStructureCache:
    def test_matches_brute_force(self, sparse_tlr):
        structure = sparse_tlr.lower_column_structure()
        nt = sparse_tlr.n_tiles
        for k in range(nt):
            expected = [
                m for m in range(k + 1, nt)
                if not sparse_tlr.tile(m, k).is_null
            ]
            assert structure[k] == expected

    def test_cached_until_invalidated(self, sparse_tlr):
        a = sparse_tlr.copy()
        first = [list(col) for col in a.lower_column_structure()]
        columns_before = list(a.lower_column_structure())

        # turn one non-null off-diagonal tile into a null: only the
        # written column's structure is recomputed (and drops the
        # entry); every other column keeps its cached list
        target = next(
            (m, k) for (m, k), t in a if m != k and not t.is_null
        )
        m, k = target
        a.set_tile(m, k, NullTile(a.tile(m, k).shape))
        updated = a.lower_column_structure()
        assert m in first[k] and m not in updated[k]
        for j, col in enumerate(updated):
            if j == k:
                assert col is not columns_before[j]  # rescanned
            else:
                assert col is columns_before[j]  # untouched cache
