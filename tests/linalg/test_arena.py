"""Shared-memory tile arena: layout, spill, snapshots, lifecycle."""

import os

import numpy as np
import pytest

from repro.linalg.arena import ArenaError, TileArena, spill_factor_from_env
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile import DenseTile, LowRankTile, NullTile
from repro.linalg.tile_matrix import TLRMatrix


def _toy_matrix(n=16, bs=4, max_rank=2):
    rng = np.random.default_rng(0)
    tiles = {}
    nt = n // bs
    for m in range(nt):
        for k in range(m + 1):
            if m == k:
                d = rng.standard_normal((bs, bs))
                tiles[(m, k)] = DenseTile(d @ d.T + bs * np.eye(bs))
            elif (m + k) % 2:
                tiles[(m, k)] = NullTile((bs, bs))
            else:
                tiles[(m, k)] = LowRankTile(
                    LowRankFactor(
                        rng.standard_normal((bs, 1)),
                        rng.standard_normal((bs, 1)),
                    )
                )
    return TLRMatrix(n, bs, tiles, accuracy=1e-8, max_rank=max_rank)


@pytest.fixture
def arena():
    a = _toy_matrix()
    with TileArena.from_store(a) as ar:
        yield ar


class TestRoundTrip:
    def test_every_tile_reads_back_byte_identical(self, arena):
        src = _toy_matrix()
        for (m, k), tile in sorted(src, key=lambda it: it[0]):
            got = arena.tile(m, k)
            assert type(got) is type(tile)
            if isinstance(tile, DenseTile):
                assert got.data.tobytes() == tile.data.tobytes()
            elif isinstance(tile, LowRankTile):
                assert got.u.tobytes() == tile.u.tobytes()
                assert got.v.tobytes() == tile.v.tobytes()

    def test_views_are_zero_copy(self, arena):
        t = arena.tile(0, 0)
        # Writing through the view is visible on the next read — proof
        # the view shares the payload segment rather than copying.
        t.data[0, 0] = 42.0
        assert arena.tile(0, 0).data[0, 0] == 42.0

    def test_materialize_is_private(self, arena):
        frozen = arena.materialize(0, 0)
        arena.tile(0, 0).data[0, 0] = -1.0
        assert frozen.data[0, 0] != -1.0

    def test_f_order_preserved(self, arena):
        f_arr = np.asfortranarray(np.arange(16.0).reshape(4, 4))
        arena.set_tile(1, 1, DenseTile(f_arr))
        got = arena.tile(1, 1)
        assert got.data.flags.f_contiguous
        assert got.data.tobytes() == f_arr.tobytes()
        mat = arena.materialize(1, 1)
        assert mat.data.flags.f_contiguous

    def test_generation_bumps_on_rewrite(self, arena):
        g0 = arena.generation(2, 0)
        arena.set_tile(2, 0, arena.materialize(2, 0))
        assert arena.generation(2, 0) == g0 + 1

    def test_shape_mismatch_rejected(self, arena):
        with pytest.raises(ValueError, match="shape"):
            arena.set_tile(0, 0, DenseTile(np.zeros((3, 3))))

    def test_flush_to_round_trips(self, arena):
        out = _toy_matrix()
        arena.tile(0, 0).data[0, 0] = 7.5
        arena.flush_to(out)
        assert out.tile(0, 0).data[0, 0] == 7.5


class TestRankGrowthAndSpill:
    def test_growth_within_cap_rewrites_in_place(self, arena):
        rng = np.random.default_rng(1)
        grown = LowRankTile(
            LowRankFactor(
                rng.standard_normal((4, 2)), rng.standard_normal((4, 2))
            )
        )
        arena.set_tile(2, 0, grown)
        got = arena.tile(2, 0)
        assert got.rank == 2
        assert got.u.tobytes() == grown.u.tobytes()

    def test_over_cap_tile_spills_and_block_is_reused(self):
        a = _toy_matrix(max_rank=1)  # off-diag reservation: (4+4)*1 = 8
        with TileArena.from_store(a) as ar:
            dense = DenseTile(np.arange(16.0).reshape(4, 4))
            ar.set_tile(2, 0, dense)  # 16 elems > 8 -> spill
            assert ar.tile(2, 0).data.tobytes() == dense.data.tobytes()
            cur0 = int(ar._header[0])
            ar.set_tile(2, 0, DenseTile(np.ones((4, 4))))  # reuse block
            assert int(ar._header[0]) == cur0, "spill block not reused"
            # shrinking back into the reservation also works
            ar.set_tile(2, 0, NullTile((4, 4)))
            assert ar.tile(2, 0).is_null

    def test_spill_exhaustion_raises_arena_error(self):
        a = _toy_matrix(max_rank=1)
        with TileArena.from_store(a, spill_factor=0.0) as ar:
            with pytest.raises(ArenaError, match="spill region exhausted"):
                ar.set_tile(2, 0, DenseTile(np.zeros((4, 4))))

    def test_spill_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA_SPILL", "2.5")
        assert spill_factor_from_env() == 2.5
        monkeypatch.setenv("REPRO_ARENA_SPILL", "-1")
        with pytest.raises(ValueError):
            spill_factor_from_env()
        monkeypatch.delenv("REPRO_ARENA_SPILL")
        assert spill_factor_from_env() == 1.5


class TestAliasedRepublish:
    def test_set_tile_from_own_views_is_safe(self, arena):
        """A kernel republishing a tile built from arena views must not
        corrupt itself (the write stages through a private copy)."""
        t = arena.tile(0, 0)
        before = t.data.copy()
        arena.set_tile(0, 0, DenseTile(t.data))
        assert arena.tile(0, 0).data.tobytes() == before.tobytes()

    def test_shared_factor_across_tiles(self, arena):
        """Zero-copy kernels share untouched U factors between operand
        and result tiles; writing such a tile back must stage."""
        src = arena.tile(2, 0)
        shared = LowRankTile(LowRankFactor(src.u, src.v[::-1].copy()))
        expect_u = src.u.copy()
        arena.set_tile(2, 0, shared)
        assert arena.tile(2, 0).u.tobytes() == expect_u.tobytes()


class TestSnapshotRestore:
    def test_restore_rolls_back_payload_and_descriptor(self, arena):
        keys = [(2, 0), (1, 1)]
        before = {k: arena.materialize(*k) for k in keys}
        snap = arena.snapshot(keys)
        arena.set_tile(2, 0, NullTile((4, 4)))
        arena.set_tile(1, 1, DenseTile(np.zeros((4, 4))))
        arena.restore(snap)
        after = {k: arena.materialize(*k) for k in keys}
        for k in keys:
            b, a = before[k], after[k]
            assert type(b) is type(a)
            if isinstance(b, DenseTile):
                assert a.data.tobytes() == b.data.tobytes()
            elif isinstance(b, LowRankTile):
                assert a.u.tobytes() == b.u.tobytes()
                assert a.v.tobytes() == b.v.tobytes()


class TestLifecycle:
    def test_segments_unlinked_on_exit(self):
        a = _toy_matrix()
        ar = TileArena.from_store(a)
        names = ar.segment_names
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        ar.close()
        ar.unlink()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_close_is_idempotent(self):
        ar = TileArena.from_store(_toy_matrix())
        ar.close()
        ar.close()
        ar.unlink()
