"""Mixed-precision tile storage: policy gates, containers, integrity."""

import numpy as np
import pytest

from repro.config import DTYPE, STORAGE_DTYPE_SINGLE
from repro.linalg.arena import TileArena
from repro.linalg.integrity import (
    TileIntegrityError,
    matrix_checksums,
    tile_checksum,
    verify_matrix,
)
from repro.linalg.lowrank import LowRankFactor, truncated_svd
from repro.linalg.precision import (
    StoragePolicy,
    downcast_factor,
    factor_significance,
    resolve_storage,
)
from repro.linalg.serialization import load_tlr, save_tlr
from repro.linalg.tile import LowRankTile
from repro.linalg.tile_matrix import TLRMatrix


class TestStoragePolicy:
    def test_defaults_to_fp64(self):
        p = StoragePolicy()
        assert p.mode == "fp64"
        assert not p.mixed

    def test_fp64_mode_never_downcasts(self):
        p = StoragePolicy(mode="fp64")
        assert p.storage_dtype(5, 0, significance=1e-12, accuracy=1e-6) == DTYPE

    def test_band_tiles_stay_fp64(self):
        p = StoragePolicy(mode="mixed", band_width=1)
        assert not p.off_band(3, 3)
        assert not p.off_band(3, 2)
        assert p.off_band(3, 1)
        assert p.storage_dtype(3, 2, significance=0.0, accuracy=1e-6) == DTYPE

    def test_significance_gate(self):
        p = StoragePolicy(mode="mixed", band_width=1, margin=0.5)
        eps32 = float(np.finfo(STORAGE_DTYPE_SINGLE).eps)
        accuracy = 1e-6
        small = 0.4 * accuracy / eps32  # passes the margin test
        large = 10.0 * accuracy / eps32  # fp32 roundoff would exceed eps
        assert (
            p.storage_dtype(5, 0, small, accuracy) == STORAGE_DTYPE_SINGLE
        )
        assert p.storage_dtype(5, 0, large, accuracy) == DTYPE

    @pytest.mark.parametrize(
        "kwargs",
        [{"mode": "fp16"}, {"band_width": -1}, {"margin": 0.0}],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            StoragePolicy(**kwargs)


class TestResolveStorage:
    def test_policy_passthrough(self):
        p = StoragePolicy(mode="mixed")
        assert resolve_storage(p) is p

    def test_mode_name(self):
        assert resolve_storage("mixed").mixed

    def test_none_defaults_to_fp64(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE_PRECISION", raising=False)
        assert resolve_storage(None).mode == "fp64"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE_PRECISION", "mixed")
        assert resolve_storage(None).mixed

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            resolve_storage("fp8")


class TestFactorHelpers:
    def test_significance_is_sigma1(self, rng):
        block = rng.standard_normal((40, 40))
        f = truncated_svd(block, tol=1e-10)
        sigma1 = np.linalg.svd(block, compute_uv=False)[0]
        assert factor_significance(f) == pytest.approx(sigma1, rel=1e-12)

    def test_downcast_roundtrip_error_small(self, rng):
        f = truncated_svd(rng.standard_normal((30, 30)), tol=1e-10)
        g = downcast_factor(f, STORAGE_DTYPE_SINGLE)
        assert g.u.dtype == STORAGE_DTYPE_SINGLE
        assert g.v.dtype == STORAGE_DTYPE_SINGLE
        err = np.linalg.norm(f.to_dense() - g.to_dense().astype(DTYPE))
        assert err <= 1e-4 * np.linalg.norm(f.to_dense())

    def test_downcast_same_dtype_is_identity(self, rng):
        f = LowRankFactor(
            rng.standard_normal((6, 2)), rng.standard_normal((6, 2))
        )
        assert downcast_factor(f, DTYPE) is f


def weakly_coupled_spd(n=120, bs=30, seed=0):
    """Strong SPD diagonal blocks plus a tiny global rank-1 coupling:
    every off-diagonal tile is rank 1 with spectral norm ~1e-2, far
    below the fp32 significance gate at accuracy 1e-6."""
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    for i in range(0, n, bs):
        d = rng.standard_normal((bs, bs))
        a[i : i + bs, i : i + bs] = d @ d.T + 5.0 * bs * np.eye(bs)
    w = rng.standard_normal(n)
    return a + 1e-3 * np.outer(w, w)


@pytest.fixture(scope="module")
def mixed_tlr():
    a = weakly_coupled_spd()
    return TLRMatrix.from_dense(a, 30, accuracy=1e-6, storage="mixed")


class TestMixedPrecisionBuild:
    def test_off_band_tiles_are_fp32(self, mixed_tlr):
        fp32 = [
            (m, k)
            for (m, k), tile in mixed_tlr
            if isinstance(tile, LowRankTile)
            and tile.u.dtype == STORAGE_DTYPE_SINGLE
        ]
        assert set(fp32) == {(2, 0), (3, 0), (3, 1)}
        for m, k in fp32:
            assert mixed_tlr.tile(m, k).v.dtype == STORAGE_DTYPE_SINGLE

    def test_band_and_diagonal_stay_fp64(self, mixed_tlr):
        for (m, k), tile in mixed_tlr:
            if abs(m - k) <= 1:
                for arr in getattr(tile, "arrays", lambda: [])():
                    assert arr.dtype == DTYPE

    def test_stats_count_downcasts(self, mixed_tlr):
        assert mixed_tlr.compression_stats.fp32_tiles == 3

    def test_reconstruction_within_accuracy(self, mixed_tlr):
        a = weakly_coupled_spd()
        err = np.abs(mixed_tlr.to_dense() - a).max()
        assert err <= 1e-6

    def test_fp64_mode_stores_no_fp32(self):
        a = weakly_coupled_spd()
        t = TLRMatrix.from_dense(a, 30, accuracy=1e-6, storage="fp64")
        for _, tile in t:
            if isinstance(tile, LowRankTile):
                assert tile.u.dtype == DTYPE

    def test_copy_preserves_dtypes(self, mixed_tlr):
        c = mixed_tlr.copy()
        for (m, k), tile in mixed_tlr:
            if isinstance(tile, LowRankTile):
                assert c.tile(m, k).u.dtype == tile.u.dtype

    def test_factorization_residual(self, mixed_tlr):
        from repro.core import hicma_parsec_factorize

        a = weakly_coupled_spd()
        r = hicma_parsec_factorize(mixed_tlr.copy())
        assert r.residual(a) < 1e-5


class TestArenaMixedPrecision:
    def test_fp32_tiles_roundtrip_byte_identical(self, mixed_tlr):
        with TileArena.from_store(mixed_tlr) as arena:
            for (m, k), tile in mixed_tlr:
                got = arena.tile(m, k)
                assert type(got) is type(tile)
                if isinstance(tile, LowRankTile):
                    assert got.u.dtype == tile.u.dtype
                    assert got.v.dtype == tile.v.dtype
                    assert got.u.tobytes() == tile.u.tobytes()
                    assert got.v.tobytes() == tile.v.tobytes()

    def test_materialize_preserves_dtypes(self, mixed_tlr):
        with TileArena.from_store(mixed_tlr) as arena:
            for (m, k), tile in mixed_tlr:
                frozen = arena.materialize(m, k)
                assert type(frozen) is type(tile)
                if isinstance(tile, LowRankTile):
                    assert frozen.u.dtype == tile.u.dtype
                    assert frozen.u.tobytes() == tile.u.tobytes()

    def test_snapshot_restore_roundtrips_fp32(self, mixed_tlr):
        with TileArena.from_store(mixed_tlr) as arena:
            tile = mixed_tlr.tile(2, 0)
            snap = arena.snapshot([(2, 0)])
            # clobber the slot with a different (fp64) tile, then roll back
            arena.set_tile(
                2,
                0,
                LowRankTile(
                    LowRankFactor(
                        np.ones((30, 1), dtype=DTYPE),
                        np.ones((30, 1), dtype=DTYPE),
                    )
                ),
            )
            arena.restore(snap)
            rebuilt = arena.tile(2, 0)
            assert rebuilt.u.dtype == tile.u.dtype
            assert rebuilt.u.tobytes() == tile.u.tobytes()
            assert rebuilt.v.tobytes() == tile.v.tobytes()


class TestSerializationMixedPrecision:
    def test_roundtrip_preserves_dtype(self, mixed_tlr, tmp_path):
        path = tmp_path / "mixed.npz"
        save_tlr(mixed_tlr, path)
        back = load_tlr(path)
        for (m, k), tile in mixed_tlr:
            if isinstance(tile, LowRankTile):
                assert back.tile(m, k).u.dtype == tile.u.dtype
        assert np.array_equal(back.to_dense(), mixed_tlr.to_dense())

    def test_mixed_file_is_version_3(self, mixed_tlr, tmp_path):
        path = tmp_path / "mixed.npz"
        save_tlr(mixed_tlr, path)
        with np.load(path) as data:
            assert int(data["header"][0]) == 3

    def test_fp64_file_stays_version_2(self, tmp_path):
        a = weakly_coupled_spd()
        t = TLRMatrix.from_dense(a, 30, accuracy=1e-6, storage="fp64")
        path = tmp_path / "plain.npz"
        save_tlr(t, path)
        with np.load(path) as data:
            assert int(data["header"][0]) == 2


class TestIntegrityMixedPrecision:
    def test_dtype_distinguishes_checksums(self, rng):
        u = rng.standard_normal((8, 2))
        v = rng.standard_normal((8, 2))
        fp64 = LowRankTile(LowRankFactor(u, v))
        fp32 = LowRankTile(
            downcast_factor(LowRankFactor(u, v), STORAGE_DTYPE_SINGLE)
        )
        assert tile_checksum(fp64) != tile_checksum(fp32)

    def test_bitflip_in_fp32_tile_detected(self, mixed_tlr):
        ledger = matrix_checksums(mixed_tlr)
        verify_matrix(mixed_tlr, ledger)  # clean matrix passes
        victim = mixed_tlr.copy()
        tile = victim.tile(2, 0)
        assert tile.u.dtype == STORAGE_DTYPE_SINGLE
        u = tile.u.copy()
        u_bits = u.view(np.uint32)
        u_bits[0, 0] ^= 1 << 20  # single bit flip in the fp32 payload
        victim.set_tile(2, 0, LowRankTile(LowRankFactor(u, tile.v)))
        with pytest.raises(TileIntegrityError):
            verify_matrix(victim, ledger)
