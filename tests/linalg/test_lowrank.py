"""Tests for low-rank factors, compression and recompression."""

import numpy as np
import pytest

from repro.linalg.lowrank import (
    LowRankFactor,
    compress_block,
    recompress,
    truncated_svd,
)


def low_rank_block(rng, m, n, k, scale=1.0):
    """An exactly rank-k block with singular values ~ scale."""
    return scale * (rng.standard_normal((m, k)) @ rng.standard_normal((k, n)))


class TestLowRankFactor:
    def test_reconstruction(self, rng):
        u = rng.standard_normal((8, 3))
        v = rng.standard_normal((6, 3))
        f = LowRankFactor(u, v)
        assert f.rank == 3
        assert f.shape == (8, 6)
        assert np.allclose(f.to_dense(), u @ v.T)

    def test_transpose(self, rng):
        f = LowRankFactor(rng.standard_normal((5, 2)), rng.standard_normal((7, 2)))
        assert np.allclose(f.transpose().to_dense(), f.to_dense().T)

    def test_nbytes(self, rng):
        f = LowRankFactor(np.zeros((10, 2)), np.zeros((10, 2)))
        assert f.nbytes == 2 * 10 * 2 * 8

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            LowRankFactor(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_rejects_rank_zero(self):
        with pytest.raises(ValueError):
            LowRankFactor(np.zeros((4, 0)), np.zeros((4, 0)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            LowRankFactor(np.zeros(4), np.zeros(4))


class TestTruncatedSVD:
    def test_recovers_exact_rank(self, rng):
        block = low_rank_block(rng, 30, 30, 4)
        f = truncated_svd(block, tol=1e-10)
        assert f.rank == 4
        assert np.allclose(f.to_dense(), block, atol=1e-9)

    def test_error_bounded_by_tolerance(self, rng):
        block = rng.standard_normal((40, 40))
        tol = 1e-1
        f = truncated_svd(block, tol=tol)
        # spectral-norm error of SVD truncation <= first dropped sigma <= tol
        err = np.linalg.norm(block - f.to_dense(), ord=2)
        assert err <= tol + 1e-12

    def test_null_below_threshold(self, rng):
        block = 1e-8 * rng.standard_normal((20, 20))
        assert truncated_svd(block, tol=1e-4) is None

    def test_relative_mode(self, rng):
        block = low_rank_block(rng, 25, 25, 3, scale=1e-6)
        # absolute tol 1e-4 kills it ...
        assert truncated_svd(block, tol=1e-4) is None
        # ... relative keeps the structure
        f = truncated_svd(block, tol=1e-4, relative=True)
        assert f is not None and f.rank == 3

    def test_rectangular(self, rng):
        block = low_rank_block(rng, 35, 20, 5)
        f = truncated_svd(block, tol=1e-10)
        assert f.shape == (35, 20)
        assert f.rank == 5

    def test_rejects_nonpositive_tol(self, rng):
        with pytest.raises(ValueError):
            truncated_svd(rng.standard_normal((4, 4)), tol=0.0)


class TestCompressBlock:
    def test_dense_fallback_for_high_rank(self, rng):
        block = rng.standard_normal((30, 30))  # full rank
        out = compress_block(block, tol=1e-12, max_rank=5)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, block)

    def test_low_rank_within_budget(self, rng):
        block = low_rank_block(rng, 30, 30, 3)
        out = compress_block(block, tol=1e-10, max_rank=10)
        assert isinstance(out, LowRankFactor)
        assert out.rank == 3

    def test_null(self, rng):
        assert compress_block(np.zeros((10, 10)), tol=1e-4) is None


class TestRecompress:
    def test_rounds_inflated_rank(self, rng):
        """Stacking duplicated factors doubles the stored rank but not
        the numerical rank; rounding must recover it."""
        base = truncated_svd(low_rank_block(rng, 30, 30, 4), tol=1e-12)
        stacked = LowRankFactor(
            np.hstack([base.u, base.u]), np.hstack([0.5 * base.v, 0.5 * base.v])
        )
        rounded = recompress(stacked, tol=1e-10)
        assert rounded.rank == 4
        assert np.allclose(rounded.to_dense(), base.to_dense(), atol=1e-8)

    def test_cancellation_to_null(self, rng):
        base = truncated_svd(low_rank_block(rng, 20, 20, 3), tol=1e-12)
        cancel = LowRankFactor(
            np.hstack([base.u, -base.u]), np.hstack([base.v, base.v])
        )
        assert recompress(cancel, tol=1e-8) is None

    def test_matches_dense_recompression(self, rng):
        a = truncated_svd(low_rank_block(rng, 25, 25, 3), tol=1e-12)
        b = truncated_svd(low_rank_block(rng, 25, 25, 2), tol=1e-12)
        stacked = LowRankFactor(np.hstack([a.u, b.u]), np.hstack([a.v, b.v]))
        rounded = recompress(stacked, tol=1e-9)
        direct = truncated_svd(a.to_dense() + b.to_dense(), tol=1e-9)
        assert rounded.rank == direct.rank
        assert np.allclose(rounded.to_dense(), direct.to_dense(), atol=1e-7)

    def test_rank0_returned_untouched(self):
        """Duck-typed rank-0 factors (LowRankFactor itself forbids
        them) short-circuit: nothing to round."""

        class EmptyFactor:
            rank = 0
            shape = (8, 8)

        f = EmptyFactor()
        assert recompress(f, tol=1e-8) is f

    def test_high_rank_takes_dense_path(self, rng):
        """Combined rank >= half the tile dimension routes through one
        dense SVD; the truncation rule (and thus the result) is the
        same as the economy QR pipeline's."""
        m = 24
        # rank 16 of 24: well past the half-dimension crossover
        a = truncated_svd(low_rank_block(rng, m, m, 9), tol=1e-12)
        b = truncated_svd(low_rank_block(rng, m, m, 7), tol=1e-12)
        stacked = LowRankFactor(np.hstack([a.u, b.u]), np.hstack([a.v, b.v]))
        assert stacked.rank >= m // 2
        rounded = recompress(stacked, tol=1e-9)
        direct = truncated_svd(stacked.to_dense(), tol=1e-9)
        assert rounded.rank == direct.rank
        assert np.allclose(rounded.to_dense(), direct.to_dense(), atol=1e-7)

    def test_high_rank_cancellation_to_null(self, rng):
        base = truncated_svd(low_rank_block(rng, 12, 12, 6), tol=1e-12)
        cancel = LowRankFactor(
            np.hstack([base.u, -base.u]), np.hstack([base.v, base.v])
        )
        assert cancel.rank >= 6  # dense-path regime on a 12x12 tile
        assert recompress(cancel, tol=1e-8) is None
