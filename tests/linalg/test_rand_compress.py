"""Randomized compression: SVD parity, determinism, policy plumbing."""

import numpy as np
import pytest

from repro.linalg.lowrank import (
    CompressionPolicy,
    CompressionStats,
    LowRankFactor,
    compress_block,
    derive_tile_seed,
    randomized_compress,
    randomized_recompress,
    recompress,
    resolve_compression,
    truncated_svd,
)


def low_rank_block(rng, m, n, k, scale=1.0):
    """An exactly rank-k block with singular values ~ scale."""
    return scale * (rng.standard_normal((m, k)) @ rng.standard_normal((k, n)))


class TestDeriveTileSeed:
    def test_deterministic(self):
        assert derive_tile_seed(7, 3, 1, gen=2) == derive_tile_seed(7, 3, 1, gen=2)

    def test_64bit_range(self):
        s = derive_tile_seed(123, 4, 2, gen=1)
        assert 0 <= s < 2**64

    def test_distinct_across_inputs(self):
        seeds = {
            derive_tile_seed(root, m, k, gen)
            for root in (0, 1)
            for m in range(4)
            for k in range(4)
            for gen in range(3)
        }
        assert len(seeds) == 2 * 4 * 4 * 3  # no collisions on this grid


class TestCompressionPolicy:
    def test_defaults(self):
        p = CompressionPolicy()
        assert p.method == "svd"
        assert not p.randomized

    def test_randomized_flag(self):
        assert CompressionPolicy(method="rand").randomized

    def test_tile_seed_uses_root(self):
        a = CompressionPolicy(method="rand", seed_root=1)
        b = CompressionPolicy(method="rand", seed_root=2)
        assert a.tile_seed(3, 1) != b.tile_seed(3, 1)
        assert a.tile_seed(3, 1) == derive_tile_seed(1, 3, 1, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "qr"},
            {"sample_block": 0},
            {"oversample": -1},
            {"crossover": 0.0},
            {"crossover": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CompressionPolicy(**kwargs)


class TestResolveCompression:
    def test_policy_passthrough(self):
        p = CompressionPolicy(method="rand", seed_root=9)
        assert resolve_compression(p) is p

    def test_method_name(self):
        assert resolve_compression("rand", seed_root=5).randomized
        assert resolve_compression("rand", seed_root=5).seed_root == 5

    def test_none_defaults_to_svd(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPRESSION", raising=False)
        assert resolve_compression(None).method == "svd"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPRESSION", "rand")
        assert resolve_compression(None).randomized

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPRESSION", "rand")
        assert resolve_compression("svd").method == "svd"

    def test_bad_name_raises(self):
        with pytest.raises(ValueError):
            resolve_compression("aca")


class TestCompressionStats:
    def test_sampled_profile(self):
        st = CompressionStats()
        st.record_sampled(16)
        st.record_sampled(32)
        d = st.to_dict()
        assert d["sampled_tiles"] == 2
        assert d["sampled_rank_max"] == 32
        assert d["sampled_rank_avg"] == 24.0

    def test_empty_avg_is_zero(self):
        assert CompressionStats().to_dict()["sampled_rank_avg"] == 0.0


class TestRandomizedCompress:
    @pytest.mark.parametrize("k", [1, 3, 7, 12])
    @pytest.mark.parametrize("m,n", [(60, 60), (80, 50), (48, 72)])
    def test_matches_svd_rank_and_accuracy(self, rng, m, n, k):
        block = low_rank_block(rng, m, n, k)
        svd = truncated_svd(block, tol=1e-8)
        out = randomized_compress(block, tol=1e-8, seed=k + m)
        assert isinstance(out, LowRankFactor)
        assert out.rank == svd.rank == k
        assert np.linalg.norm(out.to_dense() - block) <= 1e-6

    @pytest.mark.parametrize("seed", [0, 1, 17, 2**63])
    def test_rank_stable_across_seeds(self, rng, seed):
        block = low_rank_block(rng, 64, 64, 5)
        out = randomized_compress(block, tol=1e-8, seed=seed)
        assert out.rank == 5

    def test_bitwise_deterministic(self, rng):
        block = low_rank_block(rng, 64, 64, 6)
        a = randomized_compress(block, tol=1e-8, seed=42)
        b = randomized_compress(block, tol=1e-8, seed=42)
        assert a.u.tobytes() == b.u.tobytes()
        assert a.v.tobytes() == b.v.tobytes()

    def test_different_seeds_different_bases(self, rng):
        block = low_rank_block(rng, 64, 64, 6) + 1e-7 * rng.standard_normal(
            (64, 64)
        )
        a = randomized_compress(block, tol=1e-4, seed=1)
        b = randomized_compress(block, tol=1e-4, seed=2)
        # same rank, same approximation quality, different sample draws
        assert a.rank == b.rank
        assert a.u.tobytes() != b.u.tobytes()

    def test_null_below_threshold(self, rng):
        block = 1e-8 * rng.standard_normal((40, 40))
        assert randomized_compress(block, tol=1e-4, seed=0) is None

    def test_zero_block_is_null(self):
        assert randomized_compress(np.zeros((30, 30)), tol=1e-8, seed=0) is None

    def test_relative_mode(self, rng):
        block = low_rank_block(rng, 50, 50, 3, scale=1e-6)
        assert randomized_compress(block, tol=1e-4, seed=0) is None
        f = randomized_compress(block, tol=1e-4, relative=True, seed=0)
        assert f is not None and f.rank == 3

    def test_over_budget_returns_dense_without_svd(self, rng):
        stats = CompressionStats()
        block = rng.standard_normal((64, 64))  # full rank
        out = randomized_compress(
            block, tol=1e-12, max_rank=5, seed=0, stats=stats
        )
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, block)
        assert stats.rand_dense == 1
        assert stats.rand_svd_fallback == 0

    def test_crossover_falls_back_to_svd(self, rng):
        stats = CompressionStats()
        block = rng.standard_normal((40, 40))  # rank 40 >> crossover
        out = randomized_compress(block, tol=1e-12, seed=0, stats=stats)
        assert stats.rand_svd_fallback == 1
        # the fallback applies the identical truncation rule
        direct = truncated_svd(block, tol=1e-12)
        assert isinstance(out, LowRankFactor)
        assert out.rank == direct.rank

    def test_sampled_rank_recorded(self, rng):
        stats = CompressionStats()
        block = low_rank_block(rng, 64, 64, 4)
        randomized_compress(block, tol=1e-8, seed=0, stats=stats)
        assert stats.sampled_tiles == 1
        # one 16-column panel suffices for rank 4
        assert stats.sampled_rank_max == 16

    def test_rejects_nonpositive_tol(self, rng):
        with pytest.raises(ValueError):
            randomized_compress(rng.standard_normal((8, 8)), tol=0.0)


class TestCompressBlockDispatch:
    def test_rand_policy_routes_to_sampler(self, rng):
        stats = CompressionStats()
        block = low_rank_block(rng, 60, 60, 3)
        out = compress_block(
            block,
            tol=1e-8,
            policy=CompressionPolicy(method="rand"),
            seed=7,
            stats=stats,
        )
        assert out.rank == 3
        assert stats.rand_tiles == 1
        assert stats.svd_tiles == 0

    def test_rand_dispatch_is_seeded(self, rng):
        block = low_rank_block(rng, 60, 60, 3)
        pol = CompressionPolicy(method="rand")
        a = compress_block(block, tol=1e-8, policy=pol, seed=7)
        b = compress_block(block, tol=1e-8, policy=pol, seed=7)
        assert a.u.tobytes() == b.u.tobytes()

    def test_default_path_counts_svd(self, rng):
        stats = CompressionStats()
        compress_block(low_rank_block(rng, 30, 30, 2), tol=1e-8, stats=stats)
        assert stats.svd_tiles == 1
        assert stats.rand_tiles == 0

    def test_probe_skips_svd_for_clearly_dense(self, rng):
        stats = CompressionStats()
        block = rng.standard_normal((128, 128))
        out = compress_block(block, tol=1e-10, max_rank=8, stats=stats)
        assert isinstance(out, np.ndarray)
        assert stats.probe_dense == 1

    def test_rand_agrees_with_svd_on_dense_fallback(self, rng):
        block = rng.standard_normal((96, 96))
        svd_out = compress_block(block, tol=1e-10, max_rank=8)
        rnd_out = compress_block(
            block,
            tol=1e-10,
            max_rank=8,
            policy=CompressionPolicy(method="rand"),
            seed=3,
        )
        assert isinstance(svd_out, np.ndarray)
        assert isinstance(rnd_out, np.ndarray)
        assert np.array_equal(svd_out, rnd_out)


def stacked_factor(rng, m, n, ranks, tol=1e-12):
    """A GEMM-style accumulation: sum of independent low-rank terms,
    stored as horizontally stacked factors."""
    parts = [
        truncated_svd(low_rank_block(rng, m, n, k), tol=tol) for k in ranks
    ]
    return LowRankFactor(
        np.hstack([p.u for p in parts]), np.hstack([p.v for p in parts])
    )


class TestRandomizedRecompress:
    def test_matches_exact_recompress(self, rng):
        f = stacked_factor(rng, 120, 120, [6, 5, 4, 3])  # K = 18 > 16
        exact = recompress(f, tol=1e-9)
        sampled = randomized_recompress(f, tol=1e-9, seed=11)
        assert sampled.rank == exact.rank == 18
        assert np.allclose(sampled.to_dense(), exact.to_dense(), atol=1e-7)

    def test_rounds_redundant_rank(self, rng):
        base = truncated_svd(low_rank_block(rng, 100, 100, 9), tol=1e-12)
        # duplicate the factors: stored rank 27, numerical rank 9
        f = LowRankFactor(
            np.hstack([base.u, base.u, base.u]),
            np.hstack([base.v, base.v, base.v]) / 3.0,
        )
        rounded = randomized_recompress(f, tol=1e-9, seed=5)
        assert rounded.rank == 9
        assert np.allclose(rounded.to_dense(), base.to_dense(), atol=1e-7)

    def test_bitwise_deterministic(self, rng):
        f = stacked_factor(rng, 100, 100, [8, 7, 6])
        a = randomized_recompress(f, tol=1e-9, seed=21)
        b = randomized_recompress(f, tol=1e-9, seed=21)
        assert a.u.tobytes() == b.u.tobytes()
        assert a.v.tobytes() == b.v.tobytes()

    def test_small_rank_delegates_exactly(self, rng):
        f = stacked_factor(rng, 60, 60, [3, 2])  # K = 5 <= sample_block
        exact = recompress(f, tol=1e-9)
        sampled = randomized_recompress(f, tol=1e-9, seed=1)
        # delegated path: identical arithmetic, identical bytes
        assert sampled.u.tobytes() == exact.u.tobytes()
        assert sampled.v.tobytes() == exact.v.tobytes()

    def test_high_rank_delegates_exactly(self, rng):
        f = stacked_factor(rng, 40, 40, [10, 10])  # K = 20 >= 40 // 2
        exact = recompress(f, tol=1e-9)
        sampled = randomized_recompress(f, tol=1e-9, seed=1)
        assert sampled.u.tobytes() == exact.u.tobytes()

    def test_cancellation_to_null(self, rng):
        base = truncated_svd(low_rank_block(rng, 80, 80, 9), tol=1e-12)
        cancel = LowRankFactor(
            np.hstack([base.u, -base.u]), np.hstack([base.v, base.v])
        )
        assert randomized_recompress(cancel, tol=1e-6, seed=0) is None

    def test_relative_mode(self, rng):
        f = stacked_factor(rng, 100, 100, [9, 8, 7], tol=1e-18)
        scaled = LowRankFactor(1e-7 * f.u, f.v)
        rel = randomized_recompress(scaled, tol=1e-6, relative=True, seed=2)
        exact = recompress(scaled, tol=1e-6, relative=True)
        assert rel is not None
        assert rel.rank == exact.rank

    def test_rank0_returned_untouched(self):
        class EmptyFactor:
            rank = 0
            shape = (8, 8)

        f = EmptyFactor()
        assert randomized_recompress(f, tol=1e-8) is f

    def test_rejects_nonpositive_tol(self, rng):
        f = stacked_factor(rng, 30, 30, [2])
        with pytest.raises(ValueError):
            randomized_recompress(f, tol=-1.0)
