"""Tests for the tile-to-process distributions of Fig. 3."""

import numpy as np
import pytest

from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    HybridDistribution,
    OneDBlockCyclic,
    TwoDBlockCyclic,
    load_per_process,
    square_grid,
)

NT = 12
ALL = [
    TwoDBlockCyclic(2, 3),
    OneDBlockCyclic(6),
    HybridDistribution(2, 3),
    BandDistribution.over_2d(2, 3),
    BandDistribution(DiamondDistribution(2, 3)),
    DiamondDistribution(2, 3),
]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__ + repr(d))
class TestCommonInvariants:
    def test_owner_in_range(self, dist):
        for k in range(NT):
            for m in range(k, NT):
                assert 0 <= dist.owner(m, k) < dist.nproc

    def test_owner_vec_matches_scalar(self, dist):
        ms, ks = [], []
        for k in range(NT):
            for m in range(k, NT):
                ms.append(m)
                ks.append(k)
        ms, ks = np.array(ms), np.array(ks)
        vec = dist.owner_vec(ms, ks)
        scalar = [dist.owner(int(m), int(k)) for m, k in zip(ms, ks)]
        assert np.array_equal(np.asarray(vec), np.asarray(scalar))

    def test_upper_triangle_rejected(self, dist):
        with pytest.raises(IndexError):
            dist.owner(0, 1)
        with pytest.raises(IndexError):
            dist.owner(1, -1)

    def test_every_process_used(self, dist):
        owners = {dist.owner(m, k) for k in range(NT) for m in range(k, NT)}
        assert owners == set(range(dist.nproc))


class TestSquareGrid:
    def test_exact_factorizations(self):
        assert square_grid(16) == (4, 4)
        assert square_grid(512) == (16, 32)
        assert square_grid(6) == (2, 3)
        assert square_grid(1) == (1, 1)

    def test_p_le_q(self):
        for n in [2, 12, 24, 100, 1024]:
            p, q = square_grid(n)
            assert p <= q and p * q == n

    def test_prime(self):
        assert square_grid(7) == (1, 7)


class TestTwoDBlockCyclic:
    def test_scalapack_formula(self):
        d = TwoDBlockCyclic(2, 3)
        assert d.owner(0, 0) == 0
        assert d.owner(1, 0) == 3
        assert d.owner(2, 1) == 1
        assert d.owner(3, 2) == 5

    def test_column_group_size_p(self):
        d = TwoDBlockCyclic(4, 8)
        assert len(d.column_group(0, 64)) == 4

    def test_row_group_size_q(self):
        d = TwoDBlockCyclic(4, 8)
        assert len(d.row_group(63, 64)) == 8


class TestHybrid:
    def test_diagonal_is_1d_cyclic(self):
        d = HybridDistribution(2, 3)
        for k in range(NT):
            assert d.owner(k, k) == k % 6

    def test_off_diagonal_is_2d(self):
        d = HybridDistribution(2, 3)
        ref = TwoDBlockCyclic(2, 3)
        for k in range(NT):
            for m in range(k + 1, NT):
                assert d.owner(m, k) == ref.owner(m, k)

    def test_band_width_widens_1d_region(self):
        d = HybridDistribution(2, 3, band_width=2)
        for k in range(NT - 1):
            assert d.owner(k + 1, k) == k % 6

    def test_diagonal_balance_better_than_2d(self):
        """The point of the hybrid: diagonal tiles spread over ALL
        processes instead of only the grid diagonal."""
        nt = 24
        hy = HybridDistribution(2, 4)
        diag_owners_hy = {hy.owner(k, k) for k in range(nt)}
        td = TwoDBlockCyclic(2, 4)  # p, q not coprime: 2D diagonal
        diag_owners_2d = {td.owner(k, k) for k in range(nt)}  # misses procs
        assert len(diag_owners_hy) == 8
        assert len(diag_owners_2d) < 8

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            HybridDistribution(2, 3, band_width=0)


class TestBand:
    def test_critical_path_locality(self):
        """The defining property (Sec. VII-A): TRSM(k+1,k) runs where
        POTRF(k) ran, making the critical-path transfer local."""
        d = BandDistribution.over_2d(3, 4)
        for k in range(NT - 1):
            assert d.owner(k + 1, k) == d.owner(k, k)

    def test_off_band_delegates(self):
        off = DiamondDistribution(2, 3)
        d = BandDistribution(off)
        for k in range(NT):
            for m in range(k + 2, NT):
                assert d.owner(m, k) == off.owner(m, k)

    def test_band_rotates_over_processes(self):
        d = BandDistribution.over_2d(2, 3)
        owners = [d.owner(k, k) for k in range(6)]
        assert owners == [0, 1, 2, 3, 4, 5]


class TestDiamond:
    def test_formula(self):
        d = DiamondDistribution(2, 3)
        # owner = ((m - k + k // q) % p) * q + k % q
        assert d.owner(0, 0) == 0
        assert d.owner(5, 5) == (0 + 5 // 3) % 2 * 3 + 5 % 3
        assert d.owner(6, 5) == (1 + 5 // 3) % 2 * 3 + 5 % 3

    def test_column_group_optimal(self):
        """Column process groups stay at exactly P members — as
        optimal as 2DBCDD for the column broadcasts (Sec. VII-B)."""
        p, q = 3, 4
        d = DiamondDistribution(p, q)
        nt = 24
        for k in range(6):
            assert len(d.column_group(k, nt)) == p

    def test_row_group_may_grow(self):
        """More processes may join row groups — the accepted trade."""
        d = DiamondDistribution(3, 4)
        ref = TwoDBlockCyclic(3, 4)
        nt = 24
        assert len(d.row_group(nt - 1, nt)) >= len(ref.row_group(nt - 1, nt))

    def test_balances_distance_decaying_work(self):
        """The rank-aware motivation: with work decaying away from the
        diagonal, the diamond skew balances better than 2DBCDD."""
        nt = 48
        p, q = 4, 4
        weight = lambda m, k: 1.0 / (1.0 + (m - k)) ** 2  # rank-like decay
        dia = load_per_process(DiamondDistribution(p, q), nt, weight)
        two = load_per_process(TwoDBlockCyclic(p, q), nt, weight)
        imbalance = lambda load: load.max() / load.mean()
        assert imbalance(dia) < imbalance(two)

    def test_periodic_along_columns(self):
        d = DiamondDistribution(2, 3)
        # within a column, owners repeat with period p in the distance
        for k in (1, 4, 7):
            for m in (k + 2, k + 3):
                assert d.owner(m, k) == d.owner(m + d.p, k)

    def test_band_rotates_over_process_rows(self):
        """The rotation: a fixed distance band visits every process
        row as the panel advances — no band pins to one row."""
        d = DiamondDistribution(4, 4)
        nt = 64
        rows_of_band2 = {d.owner(k + 2, k) // d.q for k in range(nt - 2)}
        assert rows_of_band2 == set(range(4))
