"""Tests for the greedy rank-aware distribution and ASCII rendering."""

import numpy as np
import pytest

from repro.distribution import (
    DiamondDistribution,
    GreedyRankAware,
    TwoDBlockCyclic,
    load_per_process,
    owner_map_ascii,
)


@pytest.fixture()
def weights():
    nt = 24
    w = np.zeros((nt, nt))
    for k in range(nt):
        for m in range(k, nt):
            w[m, k] = 1.0 / (1.0 + (m - k)) ** 2
    return w


class TestGreedyRankAware:
    def test_valid_distribution(self, weights):
        d = GreedyRankAware(2, 3, weights)
        nt = weights.shape[0]
        for k in range(nt):
            for m in range(k, nt):
                assert 0 <= d.owner(m, k) < 6

    def test_column_group_preserved(self, weights):
        """Tiles of panel column k stay on grid column k mod q."""
        d = GreedyRankAware(2, 3, weights)
        nt = weights.shape[0]
        for k in range(nt):
            for m in range(k, nt):
                assert d.owner(m, k) % 3 == k % 3
        assert all(len(d.column_group(k, nt)) <= 2 for k in range(6))

    def test_balances_better_than_static(self, weights):
        nt = weights.shape[0]
        w = lambda m, k: weights[m, k]
        imb = lambda dist: (
            load_per_process(dist, nt, w).max()
            / load_per_process(dist, nt, w).mean()
        )
        greedy = GreedyRankAware(2, 3, weights)
        assert imb(greedy) <= imb(TwoDBlockCyclic(2, 3)) + 1e-9
        assert imb(greedy) <= imb(DiamondDistribution(2, 3)) + 1e-9

    def test_owner_vec(self, weights):
        d = GreedyRankAware(2, 3, weights)
        ms, ks = np.tril_indices(weights.shape[0])
        vec = d.owner_vec(ms, ks)
        ref = [d.owner(int(m), int(k)) for m, k in zip(ms, ks)]
        assert np.array_equal(vec, ref)

    def test_out_of_range(self, weights):
        d = GreedyRankAware(2, 3, weights)
        with pytest.raises(IndexError):
            d.owner(0, 1)
        with pytest.raises(IndexError):
            d.owner(weights.shape[0], 0)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            GreedyRankAware(2, 3, np.zeros((3, 4)))


class TestOwnerMapAscii:
    def test_shape_and_content(self):
        art = owner_map_ascii(TwoDBlockCyclic(2, 3), 4)
        lines = art.split("\n")
        assert len(lines) == 4
        assert lines[0].strip() == "0"
        assert lines[1].split() == ["3", "4"]

    def test_rejects_bad_nt(self):
        with pytest.raises(ValueError):
            owner_map_ascii(TwoDBlockCyclic(2, 3), 0)
