"""Tests for timing and validation helpers."""

import numpy as np
import pytest

from repro.utils.timing import Timer
from repro.utils.validation import (
    check_positive,
    check_square_matrix,
    check_symmetric,
)


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.elapsed >= 0.0
        assert len(t.laps) == 2

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_square(self):
        check_square_matrix("a", np.eye(3))
        with pytest.raises(ValueError):
            check_square_matrix("a", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            check_square_matrix("a", np.zeros(3))

    def test_check_symmetric(self):
        check_symmetric("a", np.eye(4))
        bad = np.eye(4)
        bad[0, 1] = 1.0
        with pytest.raises(ValueError):
            check_symmetric("a", bad)

    def test_check_symmetric_scales_tolerance(self):
        a = 1e12 * np.eye(3)
        a[0, 1] = a[1, 0] = 1e-2  # tiny asymmetry relative to scale
        a[0, 1] += 1e-4
        check_symmetric("a", a)
