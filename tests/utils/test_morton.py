"""Tests for the Morton (Z-order) curve ordering."""

import numpy as np
import pytest

from repro.utils.morton import morton_index_3d, morton_order


class TestMortonIndex:
    def test_bijective_on_small_grid(self):
        bits = 3
        side = 1 << bits
        coords = np.array(
            [(x, y, z) for x in range(side) for y in range(side) for z in range(side)]
        )
        keys = morton_index_3d(coords, bits=bits)
        assert len(np.unique(keys)) == side**3

    def test_known_values(self):
        # Morton interleave: x bit 0 -> key bit 0, y -> bit 1, z -> bit 2.
        coords = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]])
        keys = morton_index_3d(coords, bits=2)
        assert list(keys) == [1, 2, 4, 7]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            morton_index_3d(np.array([[4, 0, 0]]), bits=2)

    def test_large_bits(self):
        coords = np.array([[2**20, 2**20, 2**20]])
        keys = morton_index_3d(coords, bits=21)
        assert keys[0] > 0


class TestMortonOrder:
    def test_returns_permutation(self, rng):
        pts = rng.random((128, 3))
        perm = morton_order(pts)
        assert sorted(perm) == list(range(128))

    def test_locality(self, rng):
        pts = rng.random((2000, 3))
        ordered = pts[morton_order(pts)]
        d_ordered = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_random = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert d_ordered < 0.5 * d_random
