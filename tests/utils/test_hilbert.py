"""Tests for the 3D Hilbert space-filling-curve ordering."""

import numpy as np
import pytest

from repro.utils.hilbert import hilbert_index_3d, hilbert_order


class TestHilbertIndex:
    def test_bijective_on_small_grid(self):
        """Every cell of a 2^3-per-side grid gets a distinct key."""
        bits = 3
        side = 1 << bits
        coords = np.array(
            [(x, y, z) for x in range(side) for y in range(side) for z in range(side)]
        )
        keys = hilbert_index_3d(coords, bits=bits)
        assert len(np.unique(keys)) == side**3
        assert keys.min() == 0
        assert keys.max() == side**3 - 1

    def test_curve_is_continuous(self):
        """Consecutive keys map to grid cells exactly one step apart."""
        bits = 3
        side = 1 << bits
        coords = np.array(
            [(x, y, z) for x in range(side) for y in range(side) for z in range(side)]
        )
        keys = hilbert_index_3d(coords, bits=bits)
        order = np.argsort(keys)
        walk = coords[order]
        steps = np.abs(np.diff(walk, axis=0)).sum(axis=1)
        assert np.all(steps == 1), "Hilbert walk must move one cell at a time"

    def test_single_point(self):
        keys = hilbert_index_3d(np.array([[0, 0, 0]]), bits=4)
        assert keys.shape == (1,)
        assert keys[0] == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index_3d(np.array([[8, 0, 0]]), bits=3)
        with pytest.raises(ValueError):
            hilbert_index_3d(np.array([[-1, 0, 0]]), bits=3)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            hilbert_index_3d(np.zeros((1, 3), dtype=int), bits=0)
        with pytest.raises(ValueError):
            hilbert_index_3d(np.zeros((1, 3), dtype=int), bits=22)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hilbert_index_3d(np.zeros((3, 2), dtype=int))


class TestHilbertOrder:
    def test_returns_permutation(self, rng):
        pts = rng.random((200, 3))
        perm = hilbert_order(pts)
        assert sorted(perm) == list(range(200))

    def test_locality_improvement(self, rng):
        """After ordering, consecutive points are much closer on
        average than under a random order — the property that drives
        off-diagonal compressibility (Sec. IV-C)."""
        pts = rng.random((2000, 3))
        perm = hilbert_order(pts)
        ordered = pts[perm]
        d_ordered = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_random = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert d_ordered < 0.3 * d_random

    def test_deterministic(self, rng):
        pts = rng.random((100, 3))
        assert np.array_equal(hilbert_order(pts), hilbert_order(pts))

    def test_degenerate_dimension(self):
        """Points on a plane (zero z-span) must not crash."""
        pts = np.random.default_rng(0).random((50, 3))
        pts[:, 2] = 0.5
        perm = hilbert_order(pts)
        assert sorted(perm) == list(range(50))
