"""Tests for radial basis functions."""

import numpy as np
import pytest

from repro.kernels.rbf import (
    GaussianRBF,
    InverseMultiquadricRBF,
    MultiquadricRBF,
    ThinPlateSplineRBF,
    WendlandC2RBF,
)

ALL_KERNELS = [
    GaussianRBF(),
    MultiquadricRBF(),
    InverseMultiquadricRBF(),
    ThinPlateSplineRBF(),
    WendlandC2RBF(),
]


class TestGaussian:
    def test_values(self):
        phi = GaussianRBF()
        assert phi(np.array(0.0)) == 1.0
        assert phi(np.array(1.0)) == pytest.approx(np.exp(-1.0))

    def test_scaled_matches_paper_definition(self):
        """phi_delta(r) = phi(r / delta) (Sec. IV-C)."""
        phi = GaussianRBF()
        r = np.linspace(0, 1, 11)
        delta = 0.3
        assert np.allclose(phi.scaled(r, delta), np.exp(-((r / delta) ** 2)))

    def test_positive_definite_matrix(self, rng):
        """The Gaussian kernel matrix of distinct points is SPD."""
        pts = rng.random((40, 3))
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        a = GaussianRBF().scaled(d, 0.5)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_monotone_decreasing(self):
        phi = GaussianRBF()
        r = np.linspace(0, 5, 50)
        v = phi(r)
        assert np.all(np.diff(v) < 0)


class TestOtherKernels:
    def test_wendland_compact_support(self):
        phi = WendlandC2RBF()
        assert phi(np.array(1.0)) == 0.0
        assert phi(np.array(2.0)) == 0.0
        assert phi(np.array(0.5)) > 0.0
        assert phi.compact_support

    def test_wendland_at_zero(self):
        assert WendlandC2RBF()(np.array(0.0)) == 1.0

    def test_multiquadric_values(self):
        phi = MultiquadricRBF()
        assert phi(np.array(0.0)) == 1.0
        assert phi(np.array(1.0)) == pytest.approx(np.sqrt(2.0))

    def test_inverse_multiquadric_values(self):
        phi = InverseMultiquadricRBF()
        assert phi(np.array(0.0)) == 1.0
        assert phi(np.array(1.0)) == pytest.approx(1.0 / np.sqrt(2.0))

    def test_tps_zero_at_origin(self):
        """r^2 log r -> 0 as r -> 0 (no NaN)."""
        phi = ThinPlateSplineRBF()
        v = phi(np.array([0.0, 1.0]))
        assert v[0] == 0.0
        assert v[1] == 0.0  # log(1) = 0

    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: type(k).__name__)
    def test_scaled_rejects_bad_delta(self, kern):
        with pytest.raises(ValueError):
            kern.scaled(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            kern.scaled(np.array([1.0]), -1.0)

    @pytest.mark.parametrize("kern", ALL_KERNELS, ids=lambda k: type(k).__name__)
    def test_finite_on_range(self, kern):
        v = kern(np.linspace(0, 10, 101))
        assert np.all(np.isfinite(v))
