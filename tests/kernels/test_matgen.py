"""Tests for tile-wise RBF matrix generation."""

import numpy as np
import pytest

from repro.kernels.matgen import RBFMatrixGenerator, dense_rbf_matrix
from repro.kernels.rbf import WendlandC2RBF


@pytest.fixture()
def gen(rng):
    pts = rng.random((130, 3))
    return RBFMatrixGenerator(pts, shape_parameter=0.3, tile_size=50, nugget=1e-8)


class TestRBFMatrixGenerator:
    def test_tile_grid_geometry(self, gen):
        assert gen.n == 130
        assert gen.n_tiles == 3
        assert gen.tile_range(0) == (0, 50)
        assert gen.tile_range(2) == (100, 130)  # short last tile

    def test_tiles_assemble_to_dense(self, gen):
        dense = gen.dense()
        b = gen.tile_size
        for i in range(gen.n_tiles):
            for j in range(gen.n_tiles):
                tile = gen.tile(i, j)
                lo_i, hi_i = gen.tile_range(i)
                lo_j, hi_j = gen.tile_range(j)
                assert np.allclose(tile, dense[lo_i:hi_i, lo_j:hi_j])

    def test_symmetry(self, gen):
        assert np.allclose(gen.tile(0, 1), gen.tile(1, 0).T)

    def test_unit_diagonal_plus_nugget(self, gen):
        diag = np.diag(gen.tile(0, 0))
        assert np.allclose(diag, 1.0 + 1e-8)

    def test_nugget_only_on_diagonal_tiles(self, rng):
        pts = rng.random((60, 3))
        g0 = RBFMatrixGenerator(pts, 0.3, 30, nugget=0.0)
        g1 = RBFMatrixGenerator(pts, 0.3, 30, nugget=0.5)
        assert np.allclose(g0.tile(1, 0), g1.tile(1, 0))
        assert not np.allclose(g0.tile(1, 1), g1.tile(1, 1))

    def test_spd_with_nugget(self, rng):
        pts = rng.random((80, 3))
        g = RBFMatrixGenerator(pts, 0.5, 40, nugget=1e-8)
        np.linalg.cholesky(g.dense())  # must not raise

    def test_entries_match_kernel_formula(self, rng):
        pts = rng.random((20, 3))
        g = RBFMatrixGenerator(pts, 0.25, 20, nugget=0.0)
        a = g.tile(0, 0)
        i, j = 3, 7
        r = np.linalg.norm(pts[i] - pts[j])
        assert a[i, j] == pytest.approx(np.exp(-((r / 0.25) ** 2)))

    def test_out_of_range_tile_raises(self, gen):
        with pytest.raises(IndexError):
            gen.tile(3, 0)
        with pytest.raises(IndexError):
            gen.tile_range(-1)

    def test_rejects_bad_inputs(self, rng):
        pts = rng.random((10, 3))
        with pytest.raises(ValueError):
            RBFMatrixGenerator(pts, shape_parameter=0.0, tile_size=5)
        with pytest.raises(ValueError):
            RBFMatrixGenerator(pts, shape_parameter=0.1, tile_size=0)
        with pytest.raises(ValueError):
            RBFMatrixGenerator(pts, 0.1, 5, nugget=-1.0)
        with pytest.raises(ValueError):
            RBFMatrixGenerator(rng.random((10, 2)), 0.1, 5)

    def test_custom_kernel_compact_support_gives_exact_zeros(self, rng):
        """Wendland kernel: entries beyond the support radius are
        exactly zero — the 'sparse' end of the data-structure mixture."""
        pts = rng.random((100, 3)) * 10.0
        g = RBFMatrixGenerator(
            pts, shape_parameter=0.5, tile_size=50, kernel=WendlandC2RBF(), nugget=0.0
        )
        a = g.dense()
        assert (a == 0.0).sum() > 0


class TestDenseRBFMatrix:
    def test_matches_generator(self, rng):
        pts = rng.random((40, 3))
        a = dense_rbf_matrix(pts, 0.3)
        g = RBFMatrixGenerator(pts, 0.3, 40)
        assert np.allclose(a, g.dense())

    def test_shape(self, rng):
        pts = rng.random((25, 3))
        assert dense_rbf_matrix(pts, 0.2).shape == (25, 25)
