"""Tests for Matern covariance kernels."""

import numpy as np
import pytest

from repro.kernels.covariance import (
    MaternKernel,
    matern_five_half,
    matern_half,
    matern_three_half,
)


class TestMaternClosedForms:
    def test_exponential(self):
        k = matern_half()
        r = np.linspace(0, 3, 7)
        assert np.allclose(k(r), np.exp(-r))

    def test_three_half(self):
        k = matern_three_half()
        r = np.array([0.0, 1.0])
        c = np.sqrt(3.0)
        assert k(r)[0] == 1.0
        assert k(r)[1] == pytest.approx((1 + c) * np.exp(-c))

    def test_five_half(self):
        k = matern_five_half()
        c = np.sqrt(5.0)
        assert k(np.array([1.0]))[0] == pytest.approx(
            (1 + c + c * c / 3) * np.exp(-c)
        )

    def test_general_nu_matches_half_integer(self):
        """The Bessel form must agree with the closed forms."""
        r = np.linspace(0.01, 4, 40)
        for nu, closed in ((0.5, matern_half()), (1.5, matern_three_half())):
            # force the Bessel path with a nearby nu
            bessel = MaternKernel(nu=nu + 1e-12)
            assert np.allclose(bessel(r), closed(r), atol=1e-6)

    def test_unit_variance_at_zero(self):
        for nu in (0.5, 1.5, 2.5, 0.8):
            assert MaternKernel(nu=nu)(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        r = np.linspace(0, 5, 100)
        for nu in (0.5, 1.5, 2.5):
            v = MaternKernel(nu=nu)(r)
            assert np.all(np.diff(v) <= 1e-12)

    def test_spd_covariance_matrix(self, rng):
        pts = rng.random((60, 3))
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        for nu in (0.5, 1.5, 2.5):
            c = MaternKernel(nu=nu).scaled(d, 0.3)
            assert np.linalg.eigvalsh(c).min() > -1e-10

    def test_rejects_bad_nu(self):
        with pytest.raises(ValueError):
            MaternKernel(nu=0.0)(np.array([1.0]))

    def test_smoothness_ordering(self):
        """Higher nu -> smoother (flatter near 0)."""
        r = np.array([0.1])
        v = [MaternKernel(nu=nu)(r)[0] for nu in (0.5, 1.5, 2.5)]
        assert v[0] < v[1] < v[2]
