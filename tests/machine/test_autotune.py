"""Tests for model-driven tile-size auto-tuning."""

import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.machine import SHAHEEN_II
from repro.machine.autotune import tune_tile_size


class TestTuneTileSize:
    def test_finds_interior_optimum(self):
        """On Shaheen at 4.49M, the model's bell curve (Fig. 5a) has
        an interior optimum — the tuner must find it."""
        res = tune_tile_size(
            SHAHEEN_II,
            16,
            HICMA_PARSEC,
            n=1_000_000,
            shape_parameter=3.7e-4,
            accuracy=1e-4,
            candidates=[512, 1024, 2048, 4096, 8192],
            refine=False,
        )
        assert res.best_tile_size in (1024, 2048)
        evals = dict(res.evaluations)
        assert res.best_time == min(evals.values())
        # worse at both sweep ends
        assert evals[512] > res.best_time
        assert evals[8192] > res.best_time

    def test_refinement_adds_midpoints(self):
        res = tune_tile_size(
            SHAHEEN_II,
            16,
            HICMA_PARSEC,
            n=500_000,
            shape_parameter=3.7e-4,
            accuracy=1e-4,
            candidates=[1024, 2048, 4096],
            refine=True,
        )
        assert len(res.evaluations) > 3
        assert res.best_time <= min(t for _, t in res.evaluations)

    def test_default_grid_anchored_at_sqrt_n(self):
        res = tune_tile_size(
            SHAHEEN_II,
            16,
            HICMA_PARSEC,
            n=2_990_000,
            shape_parameter=3.7e-4,
            accuracy=1e-4,
            refine=False,
        )
        sizes = [b for b, _ in res.evaluations]
        assert any(b < 2440 < b2 for b, b2 in zip(sizes, sizes[1:])) or 2440 in [
            round(s, -1) for s in sizes
        ] or any(abs(s - 2440) < 200 for s in sizes)
        assert res.best_tile_size in sizes
