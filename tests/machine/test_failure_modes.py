"""Failure-injection and edge-case tests across the stack."""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks, tlr_cholesky
from repro.core.rank_model import SyntheticRankField
from repro.distribution import TwoDBlockCyclic
from repro.linalg.tile import DenseTile, LowRankTile, NullTile
from repro.linalg.lowrank import LowRankFactor
from repro.linalg.tile_matrix import TLRMatrix
from repro.machine import SHAHEEN_II, DistributedSimulator
from repro.runtime.dag import build_graph
from repro.runtime.engine import ExecutionEngine
from repro.runtime.task import make_task


class TestNumericFailures:
    def test_indefinite_mid_factorization(self):
        """A matrix whose trailing Schur complement turns indefinite
        fails inside POTRF of a later panel with a clear error."""
        n, b = 64, 16
        a = np.eye(n)
        # make the trailing block lose definiteness after updates
        a[n - 1, n - 1] = -1.0
        t = TLRMatrix.from_dense(a, b, accuracy=1e-12)
        with pytest.raises(np.linalg.LinAlgError):
            tlr_cholesky(t)

    def test_low_rank_diagonal_rejected(self):
        """Diagonal tiles must stay dense; a corrupted container is
        rejected by POTRF, not silently mis-factorized."""
        t = TLRMatrix.from_dense(np.eye(32), 16, accuracy=1e-12)
        f = LowRankFactor(np.ones((16, 1)), np.ones((16, 1)))
        t.set_tile(0, 0, LowRankTile(f))
        with pytest.raises(TypeError):
            tlr_cholesky(t)

    def test_kernel_exception_propagates_through_engine(self):
        g = build_graph([make_task("BOOM", (0,), rw=[(0, 0)])])
        eng = ExecutionEngine()

        def boom(task, data):
            raise RuntimeError("kernel failed")

        eng.register("BOOM", boom)
        with pytest.raises(RuntimeError, match="kernel failed"):
            eng.run(g, None)


class TestSimulatorEdgeCases:
    def test_single_tile_matrix(self):
        graph = build_graph(cholesky_tasks(1, tile_size=64, rank_of=lambda m, k: 64))
        sim = DistributedSimulator(SHAHEEN_II, 1)
        res = sim.run(graph, 64, lambda m, k: 64, TwoDBlockCyclic(1, 1))
        assert res.n_tasks == 1
        assert res.makespan > 0

    def test_all_null_offdiagonal(self):
        """Fully trimmed problem: only the POTRF chain remains."""
        nt = 6
        ranks = np.zeros((nt, nt), dtype=np.int64)
        np.fill_diagonal(ranks, 128)
        ana = analyze_ranks(ranks, nt)
        graph = build_graph(
            cholesky_tasks(nt, ana, tile_size=128, rank_of=lambda m, k: ranks[m, k])
        )
        assert len(graph) == nt  # POTRFs only
        sim = DistributedSimulator(SHAHEEN_II, 2)
        res = sim.run(graph, 128, lambda m, k: int(ranks[m, k]),
                      TwoDBlockCyclic(1, 2))
        assert res.n_tasks == nt

    def test_zero_node_count_rejected(self):
        with pytest.raises(ValueError):
            DistributedSimulator(SHAHEEN_II, 0)


class TestRankFieldEdges:
    def test_single_tile_field(self):
        f = SyntheticRankField.from_parameters(100, 200, 1e-3, 1e-4)
        assert f.nt == 1
        assert f.initial_density() == 1.0
        mask = f.initial_mask()
        assert mask.shape == (1, 1) and mask[0, 0]

    def test_extreme_shape_parameters(self):
        # vanishing correlation: near-diagonal band only
        tiny = SyntheticRankField.from_parameters(500_000, 2000, 1e-8, 1e-4)
        # global correlation: everything couples
        huge = SyntheticRankField.from_parameters(500_000, 2000, 10.0, 1e-4)
        assert tiny.initial_density() < 0.2
        assert huge.initial_density() > 0.9

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SyntheticRankField.from_parameters(0, 100, 1e-3, 1e-4)
        with pytest.raises(ValueError):
            SyntheticRankField.from_parameters(100, 100, -1e-3, 1e-4)
        with pytest.raises(ValueError):
            SyntheticRankField.from_parameters(100, 100, 1e-3, 0.0)
