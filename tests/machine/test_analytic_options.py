"""Tests for analytic-model configuration knobs."""

import numpy as np
import pytest

from repro.core.hicma_parsec import HICMA_PARSEC
from repro.core.lorapo import FrameworkConfig, LORAPO
from repro.core.rank_model import SyntheticRankField
from repro.distribution import BandDistribution, DiamondDistribution, TwoDBlockCyclic
from repro.machine import SHAHEEN_II, AnalyticModel
from repro.machine.analytic import _has_band


@pytest.fixture(scope="module")
def field():
    return SyntheticRankField.from_parameters(500_000, 2500, 3.7e-4, 1e-4)


class TestNullRankFloor:
    def test_explicit_float_floor(self, field):
        """Pinning the floor reproduces the mean-floor mechanism."""
        base = FrameworkConfig(
            "f0", False, LORAPO.data_distribution, None, null_rank_floor=None
        )
        heavy = FrameworkConfig(
            "f8", False, LORAPO.data_distribution, None, null_rank_floor=8.0
        )
        r0 = AnalyticModel(SHAHEEN_II, 16, base).factorization_time(field)
        r8 = AnalyticModel(SHAHEEN_II, 16, heavy).factorization_time(field)
        # processing null tiles at rank 8 costs real kernel time
        assert r8.t_work > r0.t_work
        assert r8.makespan > r0.makespan
        # same task space either way (no trimming)
        assert r8.n_tasks == r0.n_tasks

    def test_mean_floor_positive(self, field):
        r = AnalyticModel(SHAHEEN_II, 16, LORAPO).factorization_time(field)
        assert r.n_null_tasks == 0  # every tile is processed for real

    def test_pair_budget_controls_sampling_not_result_sign(self, field):
        coarse = AnalyticModel(
            SHAHEEN_II, 16, HICMA_PARSEC, pair_budget=50_000
        ).factorization_time(field)
        fine = AnalyticModel(
            SHAHEEN_II, 16, HICMA_PARSEC, pair_budget=50_000_000
        ).factorization_time(field)
        # sampled estimate within 2x of the exact one
        assert 0.5 < coarse.makespan / fine.makespan < 2.0

    def test_bad_pair_budget(self):
        with pytest.raises(ValueError):
            AnalyticModel(SHAHEEN_II, 16, HICMA_PARSEC, pair_budget=0)


class TestBandDetection:
    def test_detects_band(self):
        assert _has_band(BandDistribution(TwoDBlockCyclic(2, 3)))
        assert _has_band(BandDistribution(DiamondDistribution(2, 3)))

    def test_rejects_plain(self):
        assert not _has_band(TwoDBlockCyclic(2, 3))
        assert not _has_band(DiamondDistribution(2, 3))
        # 1x1 grid is trivially banded (single owner)
        assert _has_band(TwoDBlockCyclic(1, 1))


class TestGenerationPhases:
    def test_phase_times_positive_and_ordered(self, field):
        m = AnalyticModel(SHAHEEN_II, 16, HICMA_PARSEC)
        gen = m.generation_time(field)
        comp = m.compression_time(field)
        ana = m.trimming_analysis_time(field)
        assert 0 < gen < comp
        assert 0 < ana < comp
