"""Tests for machine models and the kernel/message cost model."""

import numpy as np
import pytest

from repro.machine.costmodel import CostModel
from repro.machine.models import FUGAKU, SHAHEEN_II


@pytest.fixture(params=[SHAHEEN_II, FUGAKU], ids=lambda m: m.name)
def cm(request):
    return CostModel(request.param)


class TestMachineModels:
    def test_paper_core_counts(self):
        assert SHAHEEN_II.cores_per_node == 32  # 2 x 16-core Haswell
        assert FUGAKU.cores_per_node == 48  # A64FX

    def test_fugaku_memory_bandwidth_advantage(self):
        """HBM2 vs DDR4: Fugaku's per-core bandwidth is much higher."""
        assert FUGAKU.core_mem_bandwidth > 3 * SHAHEEN_II.core_mem_bandwidth


class TestKernelTimes:
    def test_potrf_cubic_scaling(self, cm):
        assert cm.potrf_time(2000) > 6 * cm.potrf_time(1000)

    def test_null_tasks_cost_only_overhead(self, cm):
        o = cm.machine.task_overhead
        assert cm.trsm_time(1000, 0) == o
        assert cm.syrk_time(1000, 0) == o
        assert cm.gemm_time(1000, 0, 5, 5) == o
        assert cm.gemm_time(1000, 5, 0, 5) == o

    def test_low_rank_cheaper_than_dense(self, cm):
        b = 2000
        assert cm.trsm_time(b, 20) < cm.trsm_time(b, b)
        assert cm.syrk_time(b, 20) < cm.syrk_time(b, b)
        assert cm.gemm_time(b, 20, 20, 20) < cm.gemm_time(b, b, b, b)

    def test_skinny_kernels_run_below_gemm_rate(self, cm):
        """Roofline: low-AI TLR kernels achieve a lower effective rate
        than dense GEMM — the granularity penalty of Section V."""
        b = 2000
        from repro.linalg import flops as fl

        t_dense = cm.gemm_time(b, b, b, b) - cm.machine.task_overhead
        rate_dense = fl.gemm_dense_flops(b) / t_dense
        t_tlr = cm.gemm_time(b, 4, 4, 4) - cm.machine.task_overhead
        rate_tlr = fl.gemm_tlr_flops(b, 4, 4, 4) / t_tlr
        assert rate_tlr < rate_dense

    def test_vectorized_match_scalar(self, cm):
        b = 1500
        ranks = np.array([0, 1, 17, 300, b, 2 * b])
        tv = cm.trsm_time_vec(b, ranks)
        sv = cm.syrk_time_vec(b, ranks)
        for i, r in enumerate(ranks):
            assert tv[i] == pytest.approx(cm.trsm_time(b, int(r)))
            assert sv[i] == pytest.approx(cm.syrk_time(b, int(r)))
        gv = cm.gemm_time_vec(b, ranks, ranks, np.maximum(ranks, 1))
        for i, r in enumerate(ranks):
            assert gv[i] == pytest.approx(
                cm.gemm_time(b, int(r), int(r), max(int(r), 1)), rel=1e-6
            )

    def test_compression_most_expensive_per_tile(self, cm):
        b = 2000
        assert cm.compression_time(b) > cm.potrf_time(b)
        assert cm.compression_time(b) > cm.generation_time(b)


class TestMessageTimes:
    def test_tile_bytes(self, cm):
        b = 1000
        assert cm.tile_bytes(b, 0) == 128.0  # control message
        assert cm.tile_bytes(b, 10) == 8 * 2 * b * 10
        assert cm.tile_bytes(b, b) == 8 * b * b
        assert cm.tile_bytes(b, 2 * b) == 8 * b * b  # capped at dense

    def test_tile_bytes_vec_matches(self, cm):
        b = 1000
        ranks = np.array([0, 3, 500, 1000, 1500])
        vec = cm.tile_bytes_vec(b, ranks)
        for i, r in enumerate(ranks):
            assert vec[i] == cm.tile_bytes(b, int(r))

    def test_transfer_latency_floor(self, cm):
        m = cm.machine
        assert cm.transfer_time(0.0) == pytest.approx(
            m.message_overhead + m.network_latency
        )

    def test_broadcast_log_scaling(self, cm):
        one = cm.broadcast_time(1e6, 1)
        many = cm.broadcast_time(1e6, 15)
        assert many == pytest.approx(4 * one)  # ceil(log2(16)) = 4
        assert cm.broadcast_time(1e6, 0) == 0.0
