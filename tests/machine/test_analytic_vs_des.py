"""Cross-validation: the analytic model against the exact
discrete-event simulator at overlapping (small) scales.

The analytic model is a Graham-style bound composition, not an exact
replay, so we check *consistency of conclusions* rather than equality:
configuration ordering agrees, both respect the same lower bounds, and
the analytic estimate stays within a bounded factor of the DES.
"""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks
from repro.core.hicma_parsec import HICMA_PARSEC, TRIM_ONLY
from repro.core.lorapo import LORAPO
from repro.core.rank_model import SyntheticRankField, analyze_mask_fast
from repro.machine import SHAHEEN_II, AnalyticModel, DistributedSimulator
from repro.runtime import build_graph


@pytest.fixture(scope="module")
def problem():
    field = SyntheticRankField.from_parameters(
        400_000, 4000, shape_parameter=3.7e-4, accuracy=1e-4
    )
    nt, b = field.nt, field.tile_size
    mask = field.initial_mask()
    ranks = field.rank_matrix(mask)
    fm = analyze_mask_fast(mask)["final_mask"]
    for d in range(1, nt):
        idx = np.arange(nt - d)
        sel = fm[idx + d, idx] & (ranks[idx + d, idx] == 0)
        ranks[idx[sel] + d, idx[sel]] = max(2, int(field.rank_by_distance[d]))
    return field, ranks


def run_des(field, ranks, cfg, nproc=16, floor=0):
    nt, b = field.nt, field.tile_size
    rank_of_exec = (
        (lambda m, k: b if m == k else max(int(ranks[m, k]), floor))
        if floor
        else (lambda m, k: b if m == k else int(ranks[m, k]))
    )
    ana = analyze_ranks(ranks, nt) if cfg.trim else None
    graph = build_graph(
        cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of_exec)
    )
    sim = DistributedSimulator(SHAHEEN_II, nproc)
    dd = cfg.data_distribution(nproc)
    xd = cfg.exec_distribution(nproc) if cfg.exec_distribution else None
    return sim.run(graph, b, rank_of_exec, dd, xd)


class TestConsistency:
    def test_config_ordering_agrees(self, problem):
        """Both models agree that Lorapo >= trim-only >= full."""
        field, ranks = problem
        des = {
            "lorapo": run_des(field, ranks, LORAPO, floor=12).makespan,
            "trim": run_des(field, ranks, TRIM_ONLY).makespan,
            "full": run_des(field, ranks, HICMA_PARSEC).makespan,
        }
        ana = {
            "lorapo": AnalyticModel(SHAHEEN_II, 16, LORAPO)
            .factorization_time(field).makespan,
            "trim": AnalyticModel(SHAHEEN_II, 16, TRIM_ONLY)
            .factorization_time(field).makespan,
            "full": AnalyticModel(SHAHEEN_II, 16, HICMA_PARSEC)
            .factorization_time(field).makespan,
        }
        assert des["lorapo"] >= des["full"] * 0.999
        assert ana["lorapo"] >= ana["full"] * 0.999
        # the winner agrees
        assert min(des, key=des.get) in ("full", "trim")
        assert min(ana, key=ana.get) in ("full", "trim")

    def test_analytic_within_bounded_factor_of_des(self, problem):
        """The analytic bound stays within a bounded factor of the
        exact event-driven makespan for the trimmed configuration.

        At 4 nodes the graph has enough work per node for the
        analytic model's overlap assumption to hold; at higher node
        counts a 100-tile graph starves for concurrency and the DES
        (correctly) reports idle time the closed form does not model.
        """
        field, ranks = problem
        des = run_des(field, ranks, HICMA_PARSEC, nproc=4).makespan
        ana = AnalyticModel(SHAHEEN_II, 4, HICMA_PARSEC).factorization_time(
            field
        )
        assert ana.makespan >= 0.2 * des
        assert ana.makespan <= 5.0 * des

    def test_both_respect_critical_path_bound(self, problem):
        field, ranks = problem
        r = AnalyticModel(SHAHEEN_II, 16, HICMA_PARSEC).factorization_time(field)
        des = run_des(field, ranks, HICMA_PARSEC)
        # cp bound computed identically in both: the analytic t_cp
        # cannot exceed either makespan estimate
        assert r.makespan >= r.t_critical_path
        assert des.makespan >= 0.5 * r.t_critical_path
