"""Tests for the closed-form at-scale performance model."""

import numpy as np
import pytest

from repro.core.hicma_parsec import BAND_ONLY, HICMA_PARSEC, TRIM_ONLY
from repro.core.lorapo import LORAPO, FrameworkConfig
from repro.core.rank_model import SyntheticRankField
from repro.machine import FUGAKU, SHAHEEN_II, AnalyticModel


@pytest.fixture(scope="module")
def field():
    """A mid-size paper-like workload (N=1.49M, b=2390)."""
    return SyntheticRankField.from_parameters(
        1_490_000, 2390, shape_parameter=3.7e-4, accuracy=1e-4
    )


NOTRIM_FULL = FrameworkConfig(
    name="HiCMA-PaRSEC (no trim)",
    trim=False,
    data_distribution=HICMA_PARSEC.data_distribution,
    exec_distribution=HICMA_PARSEC.exec_distribution,
    null_rank_floor=None,
)


class TestComponents:
    def test_components_positive_and_sum(self, field):
        r = AnalyticModel(SHAHEEN_II, 64, HICMA_PARSEC).factorization_time(field)
        assert r.t_critical_path > 0
        assert r.t_work > 0
        # effective cp includes hops/chains on top of the optimistic one
        assert r.t_cp_effective >= r.t_critical_path
        assert r.makespan == pytest.approx(
            r.t_cp_effective + r.t_work + r.t_comm
        )
        assert 0 < r.cp_efficiency <= 1.0

    def test_task_counts(self, field):
        trim = AnalyticModel(SHAHEEN_II, 64, HICMA_PARSEC).factorization_time(field)
        full = AnalyticModel(SHAHEEN_II, 64, NOTRIM_FULL).factorization_time(field)
        nt = field.nt
        full_expected = (
            nt
            + 2 * (nt * (nt - 1) // 2)
            + sum((nt - 1 - k) * (nt - 2 - k) // 2 for k in range(nt - 1))
        )
        assert full.n_tasks == full_expected
        assert trim.n_tasks < full.n_tasks
        assert trim.n_null_tasks == 0
        assert full.n_null_tasks > 0

    def test_densities_reported(self, field):
        r = AnalyticModel(SHAHEEN_II, 64, HICMA_PARSEC).factorization_time(field)
        assert 0 < r.initial_density <= r.final_density <= 1.0


class TestPaperShapes:
    """The qualitative results of the evaluation section."""

    def test_trimming_always_helps(self, field):
        """Fig. 6: trimming has a net positive impact."""
        for nodes in (16, 64):
            t = AnalyticModel(SHAHEEN_II, nodes, TRIM_ONLY).factorization_time(field)
            f = AnalyticModel(
                SHAHEEN_II,
                nodes,
                FrameworkConfig(
                    "no-trim", False, TRIM_ONLY.data_distribution, None, None
                ),
            ).factorization_time(field)
            assert t.makespan < f.makespan

    def test_band_improves_over_trim_only(self, field):
        """Fig. 7 top: the band distribution reduces time-to-solution."""
        t = AnalyticModel(SHAHEEN_II, 64, TRIM_ONLY).factorization_time(field)
        b = AnalyticModel(SHAHEEN_II, 64, BAND_ONLY).factorization_time(field)
        assert b.makespan < t.makespan
        speedup = t.makespan / b.makespan
        assert 1.0 < speedup < 2.5  # paper: up to 1.60x

    def test_diamond_improves_over_band_only(self, field):
        """Fig. 7 bottom: diamond reduces the work imbalance."""
        b = AnalyticModel(SHAHEEN_II, 64, BAND_ONLY).factorization_time(field)
        d = AnalyticModel(SHAHEEN_II, 64, HICMA_PARSEC).factorization_time(field)
        assert d.t_work <= b.t_work * 1.001
        assert d.makespan <= b.makespan * 1.001

    def test_hicma_beats_lorapo_multifold(self, field):
        """Figs. 8-10: HiCMA-PaRSEC wins in all scenarios."""
        for mach, lo, hi in ((SHAHEEN_II, 2.0, 12.0), (FUGAKU, 3.0, 20.0)):
            l = AnalyticModel(mach, 128, LORAPO).factorization_time(field)
            h = AnalyticModel(mach, 128, HICMA_PARSEC).factorization_time(field)
            speedup = l.makespan / h.makespan
            assert lo < speedup < hi, (mach.name, speedup)

    def test_cp_efficiency_over_70_percent(self, field):
        """Sec. VIII-G: >70% of the optimistic critical-path bound."""
        r = AnalyticModel(SHAHEEN_II, 512, HICMA_PARSEC).factorization_time(field)
        assert r.cp_efficiency > 0.70

    def test_compression_dominates_after_optimization(self, field):
        """Fig. 11: once the factorization is optimized, compressing
        the dense operator becomes the most expensive phase."""
        m = AnalyticModel(SHAHEEN_II, 512, HICMA_PARSEC)
        fact = m.factorization_time(field).makespan
        comp = m.compression_time(field)
        assert comp > 0.3 * fact  # same order, typically larger

    def test_trimming_analysis_overhead_negligible(self, field):
        """Fig. 6 right: Algorithm 1 costs a negligible fraction."""
        m = AnalyticModel(SHAHEEN_II, 64, HICMA_PARSEC)
        fact = m.factorization_time(field).makespan
        ana = m.trimming_analysis_time(field)
        assert ana < 0.05 * fact

    def test_strong_scaling(self, field):
        """More nodes -> not slower (Figs. 9/14)."""
        t = [
            AnalyticModel(SHAHEEN_II, n, HICMA_PARSEC)
            .factorization_time(field)
            .makespan
            for n in (16, 64, 256)
        ]
        assert t[0] >= t[1] >= t[2] * 0.95


class TestValidation:
    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            AnalyticModel(SHAHEEN_II, 0, HICMA_PARSEC)
