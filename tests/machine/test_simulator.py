"""Tests for the discrete-event distributed simulator."""

import numpy as np
import pytest

from repro.core import analyze_ranks, cholesky_tasks
from repro.distribution import (
    BandDistribution,
    DiamondDistribution,
    TwoDBlockCyclic,
    square_grid,
)
from repro.machine import SHAHEEN_II, CostModel, DistributedSimulator
from repro.runtime import build_graph


@pytest.fixture(scope="module")
def small_problem():
    """NT=12 tile Cholesky with a banded rank structure."""
    nt, b = 12, 512
    ranks = np.zeros((nt, nt), dtype=np.int64)
    for k in range(nt):
        ranks[k, k] = b
        for m in range(k + 1, nt):
            d = m - k
            ranks[m, k] = max(0, 40 // d if d <= 4 else 0)
    ana = analyze_ranks(ranks, nt)
    rank_of = lambda m, k: int(ranks[m, k])
    tasks = cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of)
    graph = build_graph(tasks)
    return nt, b, ranks, ana, graph, rank_of


class TestBasics:
    def test_all_tasks_execute(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        sim = DistributedSimulator(SHAHEEN_II, 4)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(2, 2))
        assert res.n_tasks == len(graph)
        assert res.makespan > 0

    def test_single_process_no_comm(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        sim = DistributedSimulator(SHAHEEN_II, 1)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(1, 1))
        assert res.comm_bytes == 0.0
        assert res.n_messages == 0

    def test_makespan_at_least_critical_path(self, small_problem):
        """Model-exactness: makespan >= per-task-duration critical path."""
        nt, b, ranks, ana, graph, rank_of = small_problem
        cm = CostModel(SHAHEEN_II)
        sim = DistributedSimulator(SHAHEEN_II, 4)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(2, 2))
        from repro.machine.simulator import _is_dense_kernel, _task_duration

        cp_speed = SHAHEEN_II.cores_per_node * sim.cp_parallel_efficiency

        def w(t):
            d = _task_duration(cm, t, b, rank_of)
            if _is_dense_kernel(t, b, rank_of) or d > 0.01:
                return d / cp_speed
            return d

        cp_len, _ = graph.critical_path(weight=w)
        assert res.makespan >= cp_len * (1 - 1e-9)

    def test_makespan_at_least_work_bound(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        nproc = 4
        sim = DistributedSimulator(SHAHEEN_II, nproc)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(2, 2))
        total_core_seconds = res.busy_per_process.sum()
        bound = total_core_seconds / (nproc * SHAHEEN_II.cores_per_node)
        assert res.makespan >= bound * (1 - 1e-9)

    def test_more_processes_not_slower_much(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        r1 = DistributedSimulator(SHAHEEN_II, 1).run(
            graph, b, rank_of, TwoDBlockCyclic(1, 1)
        )
        r4 = DistributedSimulator(SHAHEEN_II, 4).run(
            graph, b, rank_of, TwoDBlockCyclic(2, 2)
        )
        # communication may cost something, but not a blow-up
        assert r4.makespan < 2.0 * r1.makespan

    def test_deterministic(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        sim = DistributedSimulator(SHAHEEN_II, 4)
        a = sim.run(graph, b, rank_of, TwoDBlockCyclic(2, 2)).makespan
        b_ = DistributedSimulator(SHAHEEN_II, 4).run(
            graph, b, rank_of, TwoDBlockCyclic(2, 2)
        ).makespan
        assert a == b_

    def test_record_events(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        sim = DistributedSimulator(SHAHEEN_II, 2, record_events=True)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(1, 2))
        assert len(res.events) == len(graph)
        for klass, params, proc, start, end in res.events:
            assert end >= start >= 0.0
            assert 0 <= proc < 2

    def test_nproc_mismatch_raises(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        sim = DistributedSimulator(SHAHEEN_II, 4)
        with pytest.raises(ValueError):
            sim.run(graph, b, rank_of, TwoDBlockCyclic(2, 3))


class TestExecutionRemapping:
    def test_writeback_counted_only_when_remapped(self, small_problem):
        nt, b, ranks, ana, graph, rank_of = small_problem
        dd = TwoDBlockCyclic(2, 2)
        same = DistributedSimulator(SHAHEEN_II, 4).run(graph, b, rank_of, dd)
        assert same.writeback_bytes == 0.0
        xd = BandDistribution(DiamondDistribution(2, 2))
        remap = DistributedSimulator(SHAHEEN_II, 4).run(graph, b, rank_of, dd, xd)
        assert remap.writeback_bytes > 0.0

    def test_band_reduces_critical_path_comm(self):
        """With band execution mapping, POTRF->TRSM(k+1,k) stays local:
        fewer bytes move for a diagonal-heavy problem."""
        nt, b = 16, 1024
        ranks = np.zeros((nt, nt), dtype=np.int64)
        for k in range(nt):
            ranks[k, k] = b
            if k + 1 < nt:
                ranks[k + 1, k] = 30
        ana = analyze_ranks(ranks, nt)
        rank_of = lambda m, k: int(ranks[m, k])
        graph = build_graph(cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of))
        dd = TwoDBlockCyclic(2, 2)
        plain = DistributedSimulator(SHAHEEN_II, 4).run(graph, b, rank_of, dd)
        band = DistributedSimulator(SHAHEEN_II, 4).run(
            graph, b, rank_of, dd, BandDistribution(TwoDBlockCyclic(2, 2))
        )
        assert band.makespan <= plain.makespan * 1.001


class TestTrimmingEffect:
    def test_trimmed_graph_fewer_messages(self, sparse_tlr):
        nt = sparse_tlr.n_tiles
        b = sparse_tlr.tile_size
        ranks = sparse_tlr.rank_matrix()
        rank_of = lambda m, k: int(ranks[m, k])
        ana = analyze_ranks(sparse_tlr.rank_array(), nt)
        g_full = build_graph(cholesky_tasks(nt, None, tile_size=b, rank_of=rank_of))
        g_trim = build_graph(cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of))
        dd = square_grid(4)
        dist = TwoDBlockCyclic(*dd)
        full = DistributedSimulator(SHAHEEN_II, 4).run(g_full, b, rank_of, dist)
        trim = DistributedSimulator(SHAHEEN_II, 4).run(g_trim, b, rank_of, dist)
        assert trim.n_tasks < full.n_tasks
        assert trim.n_messages < full.n_messages
        assert trim.makespan <= full.makespan * 1.001
