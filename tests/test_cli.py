"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.machine == "shaheen"
        assert args.nodes == 512
        assert args.config == "hicma"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Shaheen II" in out and "Fugaku" in out

    def test_factorize_small(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "factorize",
                "--viruses", "2",
                "--points-per-virus", "200",
                "--tile-size", "100",
                "--trace", str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "residual" in out
        # valid Chrome trace JSON: worker-lane metadata + duration events
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        durations = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert durations
        assert {"name", "ph", "ts", "dur"} <= set(durations[0])
        lane_names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "worker-0" in lane_names

    def test_factorize_no_trim(self, capsys):
        rc = main(
            ["factorize", "--viruses", "2", "--points-per-virus", "150",
             "--tile-size", "100", "--no-trim"]
        )
        assert rc == 0
        assert "full DAG" in capsys.readouterr().out

    def test_simulate(self, capsys):
        rc = main(
            ["simulate", "--matrix-size", "1.49e6", "--nodes", "64",
             "--machine", "fugaku", "--config", "lorapo"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Lorapo" in out and "Fugaku" in out
        assert "cp efficiency" in out

    def test_deform(self, capsys):
        rc = main(["deform", "--points", "300"])
        assert rc == 0
        assert "boundary error" in capsys.readouterr().out

    def test_tune(self, capsys):
        rc = main(
            ["tune", "--matrix-size", "5e5", "--nodes", "16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "<-- best" in out

    def test_serve(self, capsys, tmp_path):
        trace = tmp_path / "serve_trace.json"
        rc = main(
            ["serve", "--viruses", "2", "--points-per-virus", "120",
             "--tile-size", "60", "--requests", "12", "--operators", "1",
             "--trace", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hit-rate" in out and "latency[solve]" in out
        data = json.loads(trace.read_text())
        names = {e["args"]["name"] for e in data["traceEvents"]
                 if e["ph"] == "M"}
        assert "repro.service" in names and "dispatcher" in names

    @pytest.mark.timeout(180)
    def test_serve_fleet(self, capsys, tmp_path):
        rc = main(
            ["serve-fleet", "--viruses", "2", "--points-per-virus", "100",
             "--tile-size", "50", "--operators", "1", "--requests", "8",
             "--shards", "2", "--workers-per-shard", "1",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet up: 2 shard(s)" in out
        assert "completed=8 failed=0" in out
        assert "shard-0" in out and "shard-1" in out

    @pytest.mark.timeout(180)
    def test_serve_fleet_kill_shard_recovers(self, capsys, tmp_path):
        rc = main(
            ["serve-fleet", "--viruses", "2", "--points-per-virus", "100",
             "--tile-size", "50", "--operators", "2", "--requests", "12",
             "--shards", "2", "--workers-per-shard", "1", "--kill-shard", "0",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos: SIGKILLed shard-0" in out
        assert "failover: killed shard-0" in out
        assert "mismatches=0" in out

    def test_bench_serve(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        rc = main(
            ["bench-serve", "--viruses", "2", "--points-per-virus", "100",
             "--tile-size", "50", "--requests", "8", "--repeats", "1",
             "--json", str(out_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cold latency" in out and "speedup" in out
        result = json.loads(out_json.read_text())
        assert result["requests"] == 8
        assert result["cache"]["builds"] == 1
        assert result["batched"]["throughput_rps"] > 0


class TestCheckpointFlags:
    ARGS = ["factorize", "--viruses", "2", "--points-per-virus", "120",
            "--tile-size", "60"]

    def test_checkpoint_dir_writes_and_reports(self, capsys, tmp_path):
        ck = tmp_path / "ck"
        rc = main(self.ARGS + ["--checkpoint-dir", str(ck),
                               "--checkpoint-every", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoints:" in out
        assert list(ck.glob("ckpt-*.json"))

    def test_resume_requires_checkpoint_dir(self, capsys):
        rc = main(self.ARGS + ["--resume"])
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_empty_dir_starts_from_scratch(self, capsys, tmp_path):
        rc = main(self.ARGS + ["--checkpoint-dir", str(tmp_path / "none"),
                               "--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "starting from scratch" in out
        assert "residual" in out

    def test_resume_replays_only_unfinished(self, capsys, tmp_path):
        ck = tmp_path / "ck"
        main(self.ARGS + ["--checkpoint-dir", str(ck),
                          "--checkpoint-every", "1"])
        capsys.readouterr()
        rc = main(self.ARGS + ["--checkpoint-dir", str(ck), "--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        # cadence 1 checkpointed every task: the resume replays nothing
        assert "0 written" not in out.split("checkpoints:")[0]
        assert "tasks resumed" in out

    def test_save_factor_roundtrips(self, capsys, tmp_path):
        from repro.linalg.serialization import load_tlr

        path = tmp_path / "factor.npz"
        rc = main(self.ARGS + ["--save-factor", str(path)])
        assert rc == 0
        assert "factor written" in capsys.readouterr().out
        assert load_tlr(path).n == 240

    def test_verify_tiles_flag_accepted(self, capsys):
        rc = main(self.ARGS + ["--verify-tiles"])
        assert rc == 0
        assert "residual" in capsys.readouterr().out


class TestFaultInjectionFlags:
    def test_factorize_with_injected_faults_recovers(self, capsys):
        rc = main(
            ["factorize", "--viruses", "4", "--points-per-virus", "60",
             "--tile-size", "30", "--inject-faults", "all:0.2",
             "--fault-seed", "42", "--max-retries", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "task retries" in out
        assert "residual" in out

    def test_factorize_fail_fast_names_task(self, capsys):
        rc = main(
            ["factorize", "--viruses", "4", "--points-per-virus", "60",
             "--tile-size", "30", "--inject-faults", "POTRF:1.0",
             "--max-retries", "0"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "POTRF(0)" in err and "failed after 1 attempt" in err

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        with pytest.raises(ValueError, match="unknown fault kind"):
            main(
                ["factorize", "--viruses", "2", "--points-per-virus", "60",
                 "--tile-size", "30", "--inject-faults", "all:meltdown:0.1"]
            )
