"""Shared fixtures: small deterministic workloads used across the suite.

Everything here is laptop-scale but structurally faithful to the
paper's workload: a Hilbert-ordered virus population, its Gaussian RBF
operator, and compressed TLR matrices in the sparse / mixed / dense
regimes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import min_spacing, virus_population
from repro.kernels import RBFMatrixGenerator
from repro.linalg import TLRMatrix


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def virus_points():
    """Four small virions in the paper's cube (1600 points)."""
    return virus_population(4, points_per_virus=400, cube_edge=1.7, seed=1)


@pytest.fixture(scope="session")
def spacing(virus_points):
    return min_spacing(virus_points)


@pytest.fixture(scope="session")
def sparse_generator(virus_points, spacing):
    """Shape parameter at the paper's rule (half min spacing, scaled
    up 40x for interesting ranks at this tiny scale); sparse operator."""
    return RBFMatrixGenerator(
        virus_points,
        shape_parameter=0.5 * spacing * 40,
        tile_size=200,
        nugget=1e-4,
    )


@pytest.fixture(scope="session")
def sparse_tlr(sparse_generator):
    """Compressed sparse-regime TLR operator (has null tiles)."""
    g = sparse_generator
    return TLRMatrix.compress(g.tile, g.n, g.tile_size, accuracy=1e-6)


@pytest.fixture(scope="session")
def sparse_dense_ref(sparse_generator):
    """Dense reference of the sparse-regime operator."""
    return sparse_generator.dense()


@pytest.fixture(scope="session")
def dense_generator(virus_points, spacing):
    """Large shape parameter: strongly coupled, mostly dense operator."""
    return RBFMatrixGenerator(
        virus_points,
        shape_parameter=0.5 * spacing * 150,
        tile_size=200,
        nugget=1e-2,
    )


@pytest.fixture(scope="session")
def dense_tlr(dense_generator):
    g = dense_generator
    return TLRMatrix.compress(g.tile, g.n, g.tile_size, accuracy=1e-7)


@pytest.fixture()
def spd_matrix(rng):
    """A random well-conditioned SPD matrix (order 96)."""
    n = 96
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eig = np.linspace(1.0, 10.0, n)
    return (q * eig) @ q.T
