"""Property-based tests for the full TLR Cholesky pipeline on random
SPD operators: factorization residual and solve accuracy must track
the compression tolerance; trimming must be semantically invisible."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import solve_cholesky
from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix


@st.composite
def spd_problems(draw):
    n = draw(st.sampled_from([48, 64, 96]))
    tile = draw(st.sampled_from([16, 24, 32]))
    seed = draw(st.integers(0, 2**16))
    cond = draw(st.floats(2.0, 100.0))
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eig = np.linspace(1.0, cond, n)
    a = (q * eig) @ q.T
    a = (a + a.T) / 2
    return a, tile, seed


class TestCholeskyProperties:
    @given(problem=spd_problems(), acc=st.sampled_from([1e-6, 1e-9, 1e-12]))
    @settings(max_examples=25, deadline=None)
    def test_residual_tracks_accuracy(self, problem, acc):
        a, tile, _ = problem
        t = TLRMatrix.from_dense(a, tile, accuracy=acc)
        res = tlr_cholesky(t)
        nt = t.n_tiles
        # truncation error accumulates over O(NT) updates per tile
        budget = max(acc * nt * 50, 1e-13) / np.linalg.norm(a)
        assert res.residual(a) < max(budget, acc)

    @given(problem=spd_problems())
    @settings(max_examples=20, deadline=None)
    def test_trim_invariance(self, problem):
        a, tile, _ = problem
        acc = 1e-10
        t1 = tlr_cholesky(TLRMatrix.from_dense(a, tile, accuracy=acc), trim=True)
        t2 = tlr_cholesky(TLRMatrix.from_dense(a, tile, accuracy=acc), trim=False)
        assert np.allclose(
            t1.factor.to_dense(symmetrize=False),
            t2.factor.to_dense(symmetrize=False),
            atol=1e-9,
        )

    @given(problem=spd_problems())
    @settings(max_examples=20, deadline=None)
    def test_solve_recovers_solution(self, problem):
        a, tile, seed = problem
        t = TLRMatrix.from_dense(a, tile, accuracy=1e-12)
        res = tlr_cholesky(t)
        rng = np.random.default_rng(seed + 1)
        x_true = rng.standard_normal(a.shape[0])
        x = solve_cholesky(res.factor, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-6)
