"""Property-based tests for low-rank compression invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.lowrank import LowRankFactor, recompress, truncated_svd

SIZES = st.integers(min_value=2, max_value=24)


@st.composite
def blocks(draw, max_dim=24):
    m = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    data = draw(
        arrays(
            np.float64,
            (m, n),
            elements=st.floats(-10, 10, allow_nan=False, width=64),
        )
    )
    return data


class TestTruncatedSVDProperties:
    @given(block=blocks(), tol=st.floats(1e-8, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_and_rank_minimal(self, block, tol):
        f = truncated_svd(block, tol)
        if f is None:
            # whole block below threshold in spectral norm
            assert np.linalg.norm(block, ord=2) <= tol + 1e-12
        else:
            err = np.linalg.norm(block - f.to_dense(), ord=2)
            assert err <= tol + 1e-9
            assert 1 <= f.rank <= min(block.shape)
            # dropping the last kept direction would violate tol: the
            # k-th singular value is above the threshold
            s = np.linalg.svd(block, compute_uv=False)
            assert s[f.rank - 1] > tol - 1e-12

    @given(block=blocks())
    @settings(max_examples=40, deadline=None)
    def test_tighter_tolerance_keeps_more(self, block):
        loose = truncated_svd(block, 1e-1)
        tight = truncated_svd(block, 1e-8)
        loose_rank = 0 if loose is None else loose.rank
        tight_rank = 0 if tight is None else tight.rank
        assert tight_rank >= loose_rank


class TestRecompressProperties:
    @given(
        m=SIZES,
        k1=st.integers(1, 4),
        k2=st.integers(1, 4),
        seed=st.integers(0, 2**16),
        tol=st.floats(1e-9, 1e-3),
    )
    @settings(max_examples=60, deadline=None)
    def test_recompress_preserves_sum(self, m, k1, k2, seed, tol):
        """Rounding the stacked factors must represent the exact sum
        within tol (spectral norm)."""
        rng = np.random.default_rng(seed)
        u = np.hstack(
            [rng.standard_normal((m, k1)), rng.standard_normal((m, k2))]
        )
        v = np.hstack(
            [rng.standard_normal((m, k1)), rng.standard_normal((m, k2))]
        )
        stacked = LowRankFactor(u, v)
        exact = stacked.to_dense()
        rounded = recompress(stacked, tol)
        approx = 0.0 if rounded is None else rounded.to_dense()
        assert np.linalg.norm(exact - approx, ord=2) <= tol + 1e-8
        if rounded is not None:
            assert rounded.rank <= k1 + k2
