"""Property-based tests for the discrete-event simulator.

Invariants checked on randomized trimmed Cholesky graphs:
* every task executes exactly once (no deadlock, no duplication);
* makespan respects the critical-path and total-work lower bounds;
* messages are conserved: one per (producer, remote-consumer-process)
  pair plus initial fetches — never more;
* determinism.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_ranks
from repro.core.trimming import cholesky_tasks
from repro.distribution import TwoDBlockCyclic
from repro.machine import SHAHEEN_II, DistributedSimulator
from repro.machine.simulator import _is_dense_kernel, _task_duration
from repro.machine.costmodel import CostModel
from repro.runtime.dag import build_graph


@st.composite
def problems(draw):
    nt = draw(st.integers(3, 12))
    density = draw(st.floats(0.1, 1.0))
    seed = draw(st.integers(0, 2**16))
    b = draw(st.sampled_from([256, 1024]))
    rng = np.random.default_rng(seed)
    ranks = np.zeros((nt, nt), dtype=np.int64)
    for k in range(nt):
        ranks[k, k] = b
        for m in range(k + 1, nt):
            if rng.random() < density:
                ranks[m, k] = int(rng.integers(1, max(2, b // 8)))
    ana = analyze_ranks(ranks, nt)
    # assign model ranks to fill-in tiles
    for m, k in ana.fill_in_tiles():
        ranks[m, k] = max(2, b // 16)
    rank_of = lambda m, k: int(ranks[m, k])
    graph = build_graph(cholesky_tasks(nt, ana, tile_size=b, rank_of=rank_of))
    p = draw(st.sampled_from([1, 2, 4]))
    q = draw(st.sampled_from([1, 2]))
    return graph, b, rank_of, p, q


class TestSimulatorProperties:
    @given(problem=problems())
    @settings(max_examples=30, deadline=None)
    def test_all_tasks_and_bounds(self, problem):
        graph, b, rank_of, p, q = problem
        nproc = p * q
        sim = DistributedSimulator(SHAHEEN_II, nproc)
        res = sim.run(graph, b, rank_of, TwoDBlockCyclic(p, q))
        assert res.n_tasks == len(graph)

        # work bound
        total = res.busy_per_process.sum()
        assert res.makespan >= total / (nproc * SHAHEEN_II.cores_per_node) - 1e-12

        # critical-path bound under the same duration model
        cm = CostModel(SHAHEEN_II)
        cp_speed = SHAHEEN_II.cores_per_node * sim.cp_parallel_efficiency

        def w(t):
            d = _task_duration(cm, t, b, rank_of)
            if _is_dense_kernel(t, b, rank_of) or d > 0.01:
                return d / cp_speed
            return d

        cp, _ = graph.critical_path(weight=w)
        assert res.makespan >= cp - 1e-12

    @given(problem=problems())
    @settings(max_examples=20, deadline=None)
    def test_message_conservation(self, problem):
        graph, b, rank_of, p, q = problem
        nproc = p * q
        sim = DistributedSimulator(SHAHEEN_II, nproc)
        dist = TwoDBlockCyclic(p, q)
        res = sim.run(graph, b, rank_of, dist)
        if nproc == 1:
            assert res.n_messages == 0
            return
        # upper bound: every edge could cross processes, plus one
        # initial fetch per (tile, consumer process) pair
        max_edges = graph.n_edges()
        max_fetch = sum(len(t.reads) for t in graph.tasks)
        assert res.n_messages <= max_edges + max_fetch

    @given(problem=problems())
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, problem):
        graph, b, rank_of, p, q = problem
        r1 = DistributedSimulator(SHAHEEN_II, p * q).run(
            graph, b, rank_of, TwoDBlockCyclic(p, q)
        )
        r2 = DistributedSimulator(SHAHEEN_II, p * q).run(
            graph, b, rank_of, TwoDBlockCyclic(p, q)
        )
        assert r1.makespan == r2.makespan
        assert r1.n_messages == r2.n_messages
