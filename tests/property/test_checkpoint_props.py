"""Property: kill-and-resume is *invisible* in the output.

For any crash point (drawn via a seeded crash plan), any checkpoint
cadence, any worker count and any scheduler policy, a factorization
killed mid-run and resumed from its newest checkpoint must be bitwise
identical to an uninterrupted run.  ``REPRO_FAULT_SEED`` offsets the
drawn seeds so CI can sweep disjoint ranges across jobs.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.faults import FaultInjector, FaultPlan, InjectedCrashError
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
)

#: CI sweeps disjoint plan-seed ranges by exporting REPRO_FAULT_SEED.
SEED_OFFSET = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 10_000


def spd_tlr(n=96, tile=32):
    rng = np.random.default_rng(17)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 6.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=1e-9)


@pytest.fixture(scope="module")
def clean_factor():
    r = tlr_cholesky(spd_tlr(), trim=True)
    return r.factor.to_dense(symmetrize=False)


class TestKillResumeInvariance:
    @given(
        plan_seed=st.integers(0, 9999),
        cadence=st.sampled_from([1, 3, 7]),
        workers=st.sampled_from([1, 4]),
        sched=st.sampled_from(
            [FIFOScheduler, LIFOScheduler, PriorityScheduler]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_resumed_factor_bitwise_identical(
        self, clean_factor, tmp_path_factory, plan_seed, cadence, workers, sched
    ):
        """Crash at a plan-drawn task (possibly never — low rates draw
        no crash), resume, and compare bitwise.  The crash point is
        effectively random over the DAG, so examples cover crashes
        before the first checkpoint, between checkpoints, and on the
        last task."""
        ckdir = tmp_path_factory.mktemp("ck")
        injector = FaultInjector(
            FaultPlan.parse("all:crash:0.2", seed=SEED_OFFSET + plan_seed)
        )
        crashed = False
        try:
            result = tlr_cholesky(
                spd_tlr(),
                trim=True,
                scheduler=sched(),
                workers=workers,
                fault_injector=injector,
                checkpoint=CheckpointManager(ckdir, every_tasks=cadence),
            )
        except InjectedCrashError:
            crashed = True
            result = tlr_cholesky(
                spd_tlr(),  # pristine rebuild, as a restarted process would
                trim=True,
                scheduler=sched(),
                workers=workers,
                resume_from=ckdir,
            )
        assert np.array_equal(
            result.factor.to_dense(symmetrize=False), clean_factor
        ), f"crashed={crashed}: resumed factor diverged"

    @given(plan_seed=st.integers(0, 9999), workers=st.sampled_from([1, 4]))
    @settings(max_examples=6, deadline=None)
    def test_double_crash_still_converges(
        self, clean_factor, tmp_path_factory, plan_seed, workers
    ):
        """Crash, resume, crash again, resume again: the frontier only
        grows, and the final factor is still bitwise identical."""
        ckdir = tmp_path_factory.mktemp("ck2")
        for attempt in range(6):
            injector = FaultInjector(
                FaultPlan.parse(
                    "all:crash:0.15",
                    seed=SEED_OFFSET + plan_seed + 31 * attempt,
                )
            )
            try:
                result = tlr_cholesky(
                    spd_tlr(),
                    trim=True,
                    workers=workers,
                    fault_injector=injector,
                    checkpoint=CheckpointManager(ckdir, every_tasks=2),
                    resume_from=ckdir,
                )
            except InjectedCrashError:
                continue
            break
        else:
            result = tlr_cholesky(
                spd_tlr(), trim=True, workers=workers, resume_from=ckdir
            )
        assert np.array_equal(
            result.factor.to_dense(symmetrize=False), clean_factor
        )
