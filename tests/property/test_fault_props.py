"""Property: transient fault injection is *invisible* in the output.

For any seeded plan of transient faults, any worker count and any
scheduler policy, the retried factorization must be bitwise identical
to the fault-free run — the retry/rollback invariant the engines
guarantee.  ``REPRO_FAULT_SEED`` offsets the drawn plan seeds so CI
can sweep disjoint seed ranges across jobs.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tlr_cholesky import tlr_cholesky
from repro.linalg.tile_matrix import TLRMatrix
from repro.runtime.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.runtime.scheduler import (
    FIFOScheduler,
    LIFOScheduler,
    PriorityScheduler,
)

#: CI sweeps disjoint plan-seed ranges by exporting REPRO_FAULT_SEED.
SEED_OFFSET = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 10_000


def spd_tlr(n=96, tile=32):
    rng = np.random.default_rng(17)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = (q * np.linspace(1.0, 6.0, n)) @ q.T
    return TLRMatrix.from_dense((a + a.T) / 2, tile, accuracy=1e-9)


@pytest.fixture(scope="module")
def clean_factor():
    r = tlr_cholesky(spd_tlr(), trim=True)
    return r.factor.to_dense(symmetrize=False)


class TestTransientFaultInvariance:
    @given(
        plan_seed=st.integers(0, 9999),
        rate=st.sampled_from([0.05, 0.1, 0.25]),
        workers=st.sampled_from([1, 4]),
        sched=st.sampled_from(
            [FIFOScheduler, LIFOScheduler, PriorityScheduler]
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_factor_bitwise_identical_under_faults(
        self, clean_factor, plan_seed, rate, workers, sched
    ):
        plan = FaultPlan.parse(
            f"all:{rate}", seed=SEED_OFFSET + plan_seed
        )
        injector = FaultInjector(plan)
        r = tlr_cholesky(
            spd_tlr(),
            trim=True,
            scheduler=sched(),
            workers=workers,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=16),
        )
        assert np.array_equal(
            r.factor.to_dense(symmetrize=False), clean_factor
        )
        assert r.retries == injector.counters["transient"]

    @given(plan_seed=st.integers(0, 9999))
    @settings(max_examples=10, deadline=None)
    def test_injected_run_is_reproducible(self, plan_seed):
        """The same plan injects the same faults on every run."""
        counts = []
        for _ in range(2):
            injector = FaultInjector(
                FaultPlan.parse("all:0.2", seed=SEED_OFFSET + plan_seed)
            )
            tlr_cholesky(
                spd_tlr(),
                trim=True,
                workers=2,
                fault_injector=injector,
                retry=RetryPolicy(max_retries=16),
            )
            counts.append(dict(injector.counters))
        assert counts[0] == counts[1]
