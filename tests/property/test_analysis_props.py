"""Property-based tests for Algorithm 1 (symbolic analysis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_ranks
from repro.core.rank_model import analyze_mask_fast


@st.composite
def rank_patterns(draw):
    nt = draw(st.integers(2, 14))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    r = np.zeros((nt, nt), dtype=np.int64)
    for k in range(nt):
        r[k, k] = 10
        for m in range(k + 1, nt):
            if rng.random() < density:
                r[m, k] = rng.integers(1, 50)
    return nt, r


class TestAnalysisProperties:
    @given(pattern=rank_patterns())
    @settings(max_examples=80, deadline=None)
    def test_fast_equals_reference(self, pattern):
        nt, r = pattern
        ref = analyze_ranks(r, nt)
        fast = analyze_mask_fast(r > 0)
        assert np.array_equal(fast["final_mask"], ref.final_nonzero)
        assert int(fast["nnz_col"].sum()) == ref.task_counts()["TRSM"]
        assert int(fast["n_gemm_col"].sum()) == ref.task_counts()["GEMM"]

    @given(pattern=rank_patterns())
    @settings(max_examples=60, deadline=None)
    def test_monotone_fill(self, pattern):
        """final pattern is a superset of the initial pattern."""
        nt, r = pattern
        ana = analyze_ranks(r, nt)
        assert np.all(ana.final_nonzero | ~ana.initial_nonzero)
        assert ana.final_density() >= ana.initial_density()

    @given(pattern=rank_patterns())
    @settings(max_examples=60, deadline=None)
    def test_idempotent_on_final_pattern(self, pattern):
        """Re-analyzing the final pattern adds no new fill: the
        symbolic factorization is a closure."""
        nt, r = pattern
        ana = analyze_ranks(r, nt)
        again = analyze_ranks(ana.final_nonzero.astype(np.int64), nt)
        assert np.array_equal(again.final_nonzero, ana.final_nonzero)

    @given(pattern=rank_patterns())
    @settings(max_examples=60, deadline=None)
    def test_adding_tiles_never_removes_tasks(self, pattern):
        """Monotonicity: growing the input pattern grows the task set."""
        nt, r = pattern
        base = analyze_ranks(r, nt)
        r2 = r.copy()
        # add one extra tile in the lower triangle if possible
        added = False
        for k in range(nt):
            for m in range(k + 1, nt):
                if r2[m, k] == 0:
                    r2[m, k] = 1
                    added = True
                    break
            if added:
                break
        more = analyze_ranks(r2, nt)
        c0, c1 = base.task_counts(), more.task_counts()
        for klass in c0:
            assert c1[klass] >= c0[klass]
        assert np.all(more.final_nonzero | ~base.final_nonzero)
