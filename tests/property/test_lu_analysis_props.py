"""Property-based tests for the LU symbolic analysis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tlr_lu import analyze_ranks_lu


@st.composite
def patterns(draw):
    nt = draw(st.integers(2, 12))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    r = (rng.random((nt, nt)) < density).astype(np.int64)
    np.fill_diagonal(r, 1)
    return nt, r


class TestLUAnalysisProperties:
    @given(pattern=patterns())
    @settings(max_examples=80, deadline=None)
    def test_fill_monotone(self, pattern):
        nt, r = pattern
        ana = analyze_ranks_lu(r, nt)
        assert np.all(ana.final_nonzero | ~ana.initial_nonzero)

    @given(pattern=patterns())
    @settings(max_examples=60, deadline=None)
    def test_idempotent_closure(self, pattern):
        nt, r = pattern
        ana = analyze_ranks_lu(r, nt)
        again = analyze_ranks_lu(ana.final_nonzero.astype(np.int64), nt)
        assert np.array_equal(again.final_nonzero, ana.final_nonzero)

    @given(pattern=patterns())
    @settings(max_examples=60, deadline=None)
    def test_symmetric_pattern_matches_cholesky_analysis(self, pattern):
        """For a symmetric pattern, the LU fill on the lower triangle
        equals the Cholesky (Algorithm 1) fill."""
        from repro.core.analysis import analyze_ranks

        nt, r = pattern
        sym = ((r + r.T) > 0).astype(np.int64)
        np.fill_diagonal(sym, 1)
        lu = analyze_ranks_lu(sym, nt)
        chol = analyze_ranks(np.tril(sym), nt)
        lower_lu = np.tril(lu.final_nonzero)
        assert np.array_equal(lower_lu, chol.final_nonzero)

    @given(pattern=patterns())
    @settings(max_examples=40, deadline=None)
    def test_task_counts_consistent_with_lists(self, pattern):
        nt, r = pattern
        ana = analyze_ranks_lu(r, nt)
        counts = ana.task_counts()
        assert counts["GETRF"] == nt
        assert counts["TRSM_L"] == sum(len(v) for v in ana.left)
        assert counts["TRSM_U"] == sum(len(v) for v in ana.top)
        assert counts["GEMM"] == sum(
            len(ana.left[k]) * len(ana.top[k]) for k in range(nt)
        )
